"""Pareto trade-off sweep: the continuous front FLightNNs unlock (Fig. 1/6).

Trains LightNN-1, LightNN-2 and a ladder of FLightNNs with increasing
regularization strength on one network, then prints the accuracy vs
storage/energy operating points and the resulting Pareto front.

Run:
    python examples/pareto_sweep.py
"""

from __future__ import annotations

from repro.analysis import format_table, pareto_front
from repro.data import make_cifar10_like
from repro.hw import AsicEnergyModel, network_largest_layer_ops
from repro.models import build_network
from repro.quant import scheme_flightnn, scheme_lightnn
from repro.train import TrainConfig, Trainer

LAMBDA_LADDER = (0.0005, 0.002, 0.01, 0.03)


def train_point(scheme, split, rng=1):
    """Train one scheme and return its (storage, energy, accuracy, k) point."""
    model = build_network(
        1, scheme, num_classes=split.num_classes,
        image_size=split.image_shape[1], width_scale=0.25, rng=rng,
    )
    config = TrainConfig(
        epochs=8, batch_size=64, lr=3e-3,
        lambda_warmup_epochs=2, threshold_freeze_epoch=5, threshold_lr_scale=10.0,
    )
    history = Trainer(model, config).fit(split)
    energy = AsicEnergyModel().layer_energy_uj(network_largest_layer_ops(model))
    return {
        "label": scheme.name,
        "storage_kb": model.storage_mb() * 1024,
        "energy_uj": energy,
        "accuracy": 100 * history.final.test_accuracy,
        "mean_k": model.mean_filter_k(),
    }


def main() -> None:
    split = make_cifar10_like(size_scale=0.5, samples=512)

    points = [
        train_point(scheme_lightnn(1), split),
        train_point(scheme_lightnn(2), split),
    ]
    for lam in LAMBDA_LADDER:
        points.append(train_point(scheme_flightnn((0.0, lam), label=f"FL(l={lam:g})"), split))

    rows = [
        [p["label"], f"{p['storage_kb']:.2f}", f"{p['energy_uj']:.4f}",
         f"{p['accuracy']:.1f}", f"{p['mean_k']:.2f}"]
        for p in sorted(points, key=lambda p: p["storage_kb"])
    ]
    print(format_table(
        ["Model", "Storage(KB)", "Energy(uJ)", "Accuracy(%)", "mean k"],
        rows, title="Accuracy / cost operating points (network 1)",
    ))

    front = pareto_front([(p["storage_kb"], p["accuracy"]) for p in points])
    print("\nPareto front (storage KB, accuracy %):")
    for cost, value in front:
        print(f"  {cost:8.2f}  {value:5.1f}")
    fl_between = [
        p for p in points
        if p["label"].startswith("FL") and 1.05 < p["mean_k"] < 1.95
    ]
    print(f"\n{len(fl_between)} FLightNN points landed strictly between "
          "LightNN-1 (k=1) and LightNN-2 (k=2) — the gap of the paper's Fig. 1.")


if __name__ == "__main__":
    main()
