"""Quickstart: train a FLightNN and inspect what the quantizer learned.

Trains the paper's network 1 (VGG-7) on a synthetic CIFAR-10 stand-in under
the FLightNN scheme, then reports per-filter shift counts, model storage,
and the FPGA/ASIC cost of the largest layer.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.data import make_cifar10_like
from repro.hw import AsicEnergyModel, FPGAModel, network_largest_layer_ops
from repro.models import build_network
from repro.quant import scheme_flightnn
from repro.train import TrainConfig, Trainer


def main() -> None:
    # 1. A 10-class synthetic stand-in for CIFAR-10 (no downloads needed).
    split = make_cifar10_like(size_scale=0.5, samples=512)
    print(f"dataset: {split.name}, images {split.image_shape}, "
          f"{len(split.train)} train / {len(split.test)} test")

    # 2. Network 1 (VGG-7) under FLightNN with k_max = 2.  lambda controls
    #    the accuracy/cost trade-off: larger -> more filters drop to 1 shift.
    scheme = scheme_flightnn(lambdas=(0.0, 0.01), label="FL")
    model = build_network(
        network_id=1,
        scheme=scheme,
        num_classes=split.num_classes,
        image_size=split.image_shape[1],
        width_scale=0.25,  # scaled-down profile for a fast demo
        rng=0,
    )
    print(f"model: {model} ({model.num_parameters():,} parameters)")

    # 3. Train with Algorithm 1: STE weight gradients, sigmoid-relaxed
    #    threshold gradients, group-lasso residual regularization.
    config = TrainConfig(
        epochs=8, batch_size=64, lr=3e-3,
        lambda_warmup_epochs=2,      # gradual quantization
        threshold_freeze_epoch=5,    # settle gates, then fine-tune
        threshold_lr_scale=10.0,
    )
    history = Trainer(model, config).fit(split)
    for epoch in history.epochs:
        print(f"  epoch {epoch.epoch}: test acc {100 * epoch.test_accuracy:.1f}%  "
              f"mean k {epoch.mean_filter_k:.2f}  storage {epoch.storage_mb * 1024:.1f} KB")

    # 4. What did the quantizer learn?  Per-filter shift counts per layer.
    print("\nper-layer filter k histogram (0 = pruned, 1 = one shift, 2 = two):")
    for i, ks in enumerate(model.filter_k_per_layer()):
        histogram = np.bincount(ks, minlength=3)
        print(f"  conv{i}: {dict(enumerate(histogram))}")

    # 5. Hardware cost of the largest conv layer.
    ops = network_largest_layer_ops(model)
    design = FPGAModel().map_layer(ops)
    energy = AsicEnergyModel().layer_energy_uj(ops)
    print(f"\nlargest layer: {ops.out_channels} filters, {ops.macs / 1e6:.2f}M MACs, "
          f"mean k {ops.mean_k:.2f}")
    print(f"FPGA (ZC706 @100MHz): {design.throughput:,.0f} img/s, "
          f"batch {design.batch_size}, bound by {design.bound_by or ('nothing',)}")
    print(f"ASIC (65nm): {energy:.4f} uJ per inference of this layer")


if __name__ == "__main__":
    main()
