"""Using your own dataset: .npz loading + activation calibration.

The benchmark experiments run on synthetic stand-ins, but the pipeline
accepts any dataset stored as an ``.npz`` archive (``train_images`` /
``train_labels`` / ``test_images`` / ``test_labels``, NCHW or NHWC).  This
example fabricates such an archive, loads it through the real-file path,
calibrates the 8-bit activation quantizers on sample batches, and trains a
FLightNN on it.

Run:
    python examples/custom_dataset.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.data import DataLoader, load_npz_split, make_svhn_like, save_npz_split
from repro.models import build_network
from repro.quant import calibrate_activations, scheme_flightnn
from repro.train import TrainConfig, Trainer


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="flightnn_dataset_"))

    # 1. Stand in for "your dataset on disk": write an .npz archive.
    #    (Swap this step for your own CIFAR/SVHN export.)
    archive = save_npz_split(
        make_svhn_like(size_scale=0.5, samples=384), workdir / "my_dataset.npz"
    )
    print(f"wrote {archive}")

    # 2. Load through the real-file path (layout detection + normalization).
    split = load_npz_split(archive)
    print(f"loaded: {split.name} {split.image_shape}, {split.num_classes} classes, "
          f"{len(split.train)} train / {len(split.test)} test")

    # 3. Build the model and calibrate activation ranges on a few batches
    #    before training (power-of-two ranges fitted to the observed
    #    99.9th-percentile magnitudes).
    scheme = scheme_flightnn((0.0, 0.01), label="FL")
    model = build_network(1, scheme, num_classes=split.num_classes,
                          image_size=split.image_shape[1], width_scale=0.25, rng=0)
    batches = [images for images, _ in DataLoader(split.train, 64, shuffle=True, rng=0)][:3]
    ranges = calibrate_activations(model, batches)
    print(f"calibrated {len(ranges)} activation quantizers; "
          f"ranges: {sorted(set(ranges.values()))}")

    # 4. Train as usual.
    config = TrainConfig(epochs=6, batch_size=64, lr=3e-3, lambda_warmup_epochs=2,
                         threshold_freeze_epoch=4, threshold_lr_scale=10.0)
    history = Trainer(model, config).fit(split)
    print(f"final test accuracy {100 * history.final.test_accuracy:.1f}%, "
          f"mean k {model.mean_filter_k():.2f}")


if __name__ == "__main__":
    main()
