"""Serving a FLightNN over HTTP with dynamic micro-batching.

Starts a :class:`~repro.serve.ModelServer` on a Table-1 config-4 network,
fires concurrent single-image requests from closed-loop client threads (the
micro-batcher coalesces them into engine-sized batches), demonstrates
explicit load shedding and a hot weight refresh, and prints the server's
own latency/batch metrics at the end.

Run:
    PYTHONPATH=src python examples/serving.py

While it runs the server is plain HTTP — from another shell you could:
    curl http://127.0.0.1:<port>/healthz
"""

from __future__ import annotations

import threading

import numpy as np

from repro.models import build_network
from repro.quant import scheme_flightnn
from repro.serve import (
    BatcherConfig,
    ModelRegistry,
    ModelServer,
    PredictClient,
    ServeHTTPError,
    ServerConfig,
)
from repro.utils.logging import configure

CLIENTS = 8
REQUESTS_PER_CLIENT = 12
IMAGE_SIZE = 16


def main() -> None:
    configure()  # INFO-level server lifecycle logs on stderr

    # 1. A trained-looking model -> registry with a warm compiled plan.
    model = build_network(
        4,
        scheme_flightnn((0.0, 0.01), label="FL"),
        num_classes=10,
        image_size=IMAGE_SIZE,
        width_scale=0.5,
        rng=0,
    )
    model.eval()
    registry = ModelRegistry(
        BatcherConfig(max_batch_size=16, max_wait_s=0.002, queue_depth=64)
    )
    registry.register("net4", model)

    rng = np.random.default_rng(0)
    images = rng.normal(0.0, 1.0, (32, 3, IMAGE_SIZE, IMAGE_SIZE))

    with ModelServer(registry, ServerConfig(port=0)) as server:
        print(f"serving at {server.url}  (try: curl {server.url}/healthz)")
        client = PredictClient(server.url)
        print(f"healthz: {client.healthz()}")

        # 2. Concurrent closed-loop clients; the batcher coalesces their
        #    single-image requests into shared engine batches.
        def run_client(cid: int) -> None:
            for j in range(REQUESTS_PER_CLIENT):
                try:
                    result = client.predict(images[(cid + j) % len(images)])
                    if j == 0:
                        print(f"client {cid}: first prediction = {result.predictions}")
                except ServeHTTPError as exc:
                    print(f"client {cid}: shed={exc.shed} ({exc})")

        threads = [threading.Thread(target=run_client, args=(c,)) for c in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # 3. Hot weight update: mutate in place, then quiesce-and-refresh.
        #    In-flight requests finish on the old weights; later ones see new.
        first_conv = next(p for p in model.parameters() if p.data.ndim == 4)
        first_conv.data[...] *= 1.01
        rebuilt = registry.refresh("net4")
        print(f"hot refresh rebuilt {rebuilt} cached op(s)")
        print(f"post-refresh prediction: {client.predict(images[0]).predictions}")

        # 4. The server's own view of the run.
        snapshot = client.metrics()["models"]["net4"]
        req, lat = snapshot["requests"], snapshot["latency_s"]
        print(
            f"served {req['completed']} requests "
            f"(offered={req['offered']}, shed={req['shed']}) in "
            f"{snapshot['batches']['count']} batches "
            f"(mean size {snapshot['batches']['mean_size']:.1f})"
        )
        print(
            f"latency p50={lat['p50'] * 1e3:.2f}ms "
            f"p95={lat['p95'] * 1e3:.2f}ms p99={lat['p99'] * 1e3:.2f}ms"
        )
    print("server drained and stopped")


if __name__ == "__main__":
    main()
