"""Fig. 3 demo: a flexible-k convolution as a sum of single-shift convolutions.

Quantizes a filter bank with mixed per-filter k, decomposes it into k=1
single-shift banks, and verifies numerically that the convolution outputs
match — the transformation that lets FLightNN hardware reuse a LightNN-1
datapath with one extra feature-map summation per layer.

Run:
    python examples/filter_decomposition.py
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.quant import (
    FLightNNConfig,
    FLightNNQuantizer,
    decompose_filter_bank,
    is_power_of_two_value,
)


def main() -> None:
    rng = np.random.default_rng(42)

    # The exact example filter of the paper's Fig. 3.
    fig3_filter = np.array(
        [[[[0.75, 0.5, 0.375], [0.625, 0.75, 0.5], [1.25, 0.625, 0.25]]]]
    )
    quantizer = FLightNNQuantizer(FLightNNConfig(k_max=2))
    bank = decompose_filter_bank(fig3_filter, np.zeros(2), quantizer)
    print("Fig. 3 example filter (k_i = %d):" % bank.filter_k[0])
    print("  level-0 single-shift term:\n", bank.terms[0][0, 0])
    print("  level-1 single-shift term:\n", bank.terms[1][0, 0])
    print("  sum reconstructs Q_2(w):",
          np.allclose(bank.reconstruct(), quantizer.quantize(fig3_filter, np.zeros(2)).quantized))

    # A realistic mixed-k bank: threshold level 1 at the median residual.
    weights = rng.normal(scale=0.4, size=(8, 3, 3, 3))
    norms = quantizer.residual_norms(weights, np.zeros(2))
    thresholds = np.array([0.0, float(np.median(norms[1]))])
    bank = decompose_filter_bank(weights, thresholds, quantizer)
    print(f"\nmixed bank: per-filter k = {bank.filter_k.tolist()}")
    print(f"single-shift filter passes needed: {bank.total_single_shift_filters} "
          f"(vs {2 * len(weights)} for LightNN-2)")
    for j, term in enumerate(bank.terms):
        assert is_power_of_two_value(term).all()
        print(f"  level {j}: {np.count_nonzero((term.reshape(8, -1) != 0).any(axis=1))} "
              "filters contribute")

    # Numerical conv equivalence: conv(x, Q(w)) == sum_j conv(x, term_j).
    x = Tensor(rng.normal(size=(2, 3, 16, 16)))
    combined = F.conv2d(x, Tensor(quantizer.quantize(weights, thresholds).quantized), padding=1)
    summed = sum(F.conv2d(x, Tensor(t), padding=1).numpy() for t in bank.terms)
    max_err = np.abs(combined.numpy() - summed).max()
    print(f"\nconvolution equivalence max |error|: {max_err:.2e}")
    assert max_err < 1e-10


if __name__ == "__main__":
    main()
