"""FPGA deployment study: map every quantized model onto the Zynq ZC706.

Builds the paper's network 7 (ResNet-18, width 256) at full Table-1 scale
under each quantization scheme, maps the largest convolutional layer onto
the ZC706 with the analytical accelerator model, and prints a Table-6-style
resource/throughput report — no training required (resource usage depends
only on geometry and scheme).

Run:
    python examples/fpga_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.hw import FPGA_ZC706, FPGAModel, network_largest_layer_ops
from repro.models import build_network
from repro.quant import (
    paper_schemes,
)


def main() -> None:
    schemes = paper_schemes()
    model = FPGAModel()
    rows = []
    baseline = None
    for key in ("Full", "L-2", "L-1", "FP", "FL_a", "FL_b"):
        scheme = schemes[key]
        net = build_network(7, scheme, num_classes=100, image_size=32, rng=0)
        if scheme.is_flightnn:
            # Emulate a trained FLightNN operating point: threshold the
            # level-1 residual norms at a percentile (FL_a aggressive,
            # FL_b mild), as a trained model's thresholds would.
            layer = net.largest_conv_layer()
            norms = layer.strategy.quantizer.residual_norms(
                layer.weight.data, layer.thresholds.data
            )
            pct = 90.0 if key == "FL_a" else 40.0
            layer.thresholds.data[1] = float(np.percentile(norms[1], pct))
        ops = network_largest_layer_ops(net)
        point = model.map_layer(ops)
        if baseline is None:
            baseline = point.throughput
        rows.append([
            scheme.name,
            f"{ops.mean_k:.2f}",
            point.usage.bram,
            point.usage.dsp,
            f"{point.usage.ff:,}",
            f"{point.usage.lut:,}",
            point.batch_size,
            f"{point.throughput:,.0f}",
            f"{point.throughput / baseline:.2f}x",
            ",".join(point.bound_by) or "-",
            "on-chip" if point.weights_on_chip else "streamed",
        ])
    rows.append([
        "Available", "", FPGA_ZC706.bram, FPGA_ZC706.dsp,
        f"{FPGA_ZC706.ff:,}", f"{FPGA_ZC706.lut:,}", "", "", "", "", "",
    ])
    print(format_table(
        ["Model", "mean k", "BRAM", "DSP", "FF", "LUT", "Batch",
         "img/s", "Speedup", "Bound", "Weights"],
        rows,
        title="Network 7 largest conv layer on Xilinx Zynq ZC706 @ 100 MHz",
    ))
    print(
        "\nKey mechanisms (paper Sec. 5.2):\n"
        "  * Full/fixed-point multipliers consume DSP slices; (F)LightNN\n"
        "    shifts live in LUTs, leaving DSP nearly free.\n"
        "  * BRAM capacity bounds the batch size, and with it throughput,\n"
        "    for the shift-based models.\n"
        "  * LightNN-1 does half the shift work of LightNN-2 per MAC;\n"
        "    FLightNN interpolates according to its mean k."
    )


if __name__ == "__main__":
    main()
