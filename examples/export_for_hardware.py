"""Deployment pipeline: train, checkpoint, decompose, and pack for hardware.

Walks the full path from a trained FLightNN to the integer artifacts an
FPGA weight memory holds: per-layer single-shift filter banks (Fig. 3) and
their sign/exponent code planes, plus a checkpoint for later fine-tuning.

Run:
    python examples/export_for_hardware.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.data import make_cifar10_like
from repro.models import build_network
from repro.quant import (
    decode_terms,
    decompose_filter_bank,
    encode_terms,
    scheme_flightnn,
)
from repro.train import TrainConfig, Trainer, load_checkpoint, save_checkpoint


def main() -> None:
    split = make_cifar10_like(size_scale=0.5, samples=384)
    scheme = scheme_flightnn((0.0, 0.01), label="FL")
    model = build_network(1, scheme, num_classes=split.num_classes,
                          image_size=split.image_shape[1], width_scale=0.25, rng=0)
    config = TrainConfig(epochs=6, batch_size=64, lr=3e-3, lambda_warmup_epochs=2,
                         threshold_freeze_epoch=4, threshold_lr_scale=10.0)
    history = Trainer(model, config).fit(split)
    print(f"trained: test acc {100 * history.final.test_accuracy:.1f}%, "
          f"mean k {model.mean_filter_k():.2f}")

    workdir = Path(tempfile.mkdtemp(prefix="flightnn_export_"))

    # 1. Checkpoint the trained model (master weights + thresholds + BN).
    ckpt = save_checkpoint(model, workdir / "model.npz", metadata={
        "scheme": scheme.name,
        "test_accuracy": history.final.test_accuracy,
    })
    print(f"checkpoint: {ckpt}")

    # 2. Export every conv layer: decompose to single-shift banks and pack
    #    into sign/exponent code planes.
    total_bits = 0
    for i, layer in enumerate(model.conv_layers()):
        quantizer = layer.strategy.quantizer
        bank = decompose_filter_bank(layer.weight.data, layer.thresholds.data, quantizer)
        encoded = encode_terms(bank, quantizer.config.pow2)
        np.savez(
            workdir / f"conv{i}_codes.npz",
            signs=encoded.signs,
            exponents=encoded.exponent_codes,
            filter_k=encoded.filter_k,
        )
        # Bit-exact check: the codes reconstruct the deployed weights.
        assert np.array_equal(decode_terms(encoded), layer.quantized_weight())
        total_bits += encoded.total_bits
        print(f"  conv{i}: filters k={encoded.filter_k.tolist()}, "
              f"{encoded.total_bits / 8 / 1024:.2f} KB of codes")
    print(f"total packed weight storage: {total_bits / 8 / 1024:.2f} KB "
          f"({encoded.bits_per_code} bits per shift code)")

    # 3. Round-trip the checkpoint into a fresh model.
    fresh = build_network(1, scheme, num_classes=split.num_classes,
                          image_size=split.image_shape[1], width_scale=0.25, rng=99)
    meta = load_checkpoint(fresh, ckpt)
    evaluation = Trainer(fresh, TrainConfig(epochs=1)).evaluate(split.test)
    print(f"restored checkpoint ({meta['scheme']}): "
          f"test acc {100 * evaluation['accuracy']:.1f}% "
          f"(saved at {100 * meta['test_accuracy']:.1f}%)")


if __name__ == "__main__":
    main()
