"""Ablation studies for the reproduction's design choices.

Library entry points behind ``benchmarks/bench_ablations.py`` (see
DESIGN.md "Training-dynamics adaptations"): each returns a small dict of
measurements so callers can render or assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import DataSplit
from repro.models import build_network
from repro.quant.power_of_two import PowerOfTwoConfig
from repro.quant.schemes import QuantizationScheme, scheme_flightnn, scheme_lightnn
from repro.train import TrainConfig, Trainer

__all__ = [
    "AblationPoint",
    "train_point",
    "ablate_gradual_quantization",
    "ablate_threshold_freeze",
    "ablate_exponent_window",
    "ablate_regularization_mode",
]


@dataclass(frozen=True)
class AblationPoint:
    """One trained configuration in an ablation study."""

    label: str
    accuracy: float       # best test accuracy, percent
    mean_filter_k: float
    storage_mb: float


def train_point(
    label: str,
    scheme: QuantizationScheme,
    split: DataSplit,
    config: TrainConfig,
    network_id: int = 1,
    width_scale: float = 0.25,
    rng: int = 1,
) -> AblationPoint:
    """Train one (scheme, config) pair and summarise it."""
    model = build_network(
        network_id, scheme, num_classes=split.num_classes,
        image_size=split.image_shape[1], width_scale=width_scale, rng=rng,
    )
    history = Trainer(model, config).fit(split)
    return AblationPoint(
        label=label,
        accuracy=100.0 * history.best_test_accuracy,
        mean_filter_k=model.mean_filter_k(),
        storage_mb=model.storage_mb(),
    )


def _base_config(epochs: int = 8, **overrides) -> TrainConfig:
    defaults = dict(
        epochs=epochs, batch_size=64, lr=3e-3,
        lambda_warmup_epochs=2, threshold_freeze_epoch=epochs - 3,
        threshold_lr_scale=10.0,
    )
    defaults.update(overrides)
    return TrainConfig(**defaults)


def ablate_gradual_quantization(split: DataSplit, epochs: int = 8) -> dict[str, AblationPoint]:
    """Paper Sec. 5.2: lambda warm-up (gradual) vs constraints from step 0."""
    scheme = scheme_flightnn((0.0, 0.02), label="FL")
    return {
        "gradual": train_point("gradual", scheme, split,
                               _base_config(epochs, lambda_warmup_epochs=2)),
        "immediate": train_point("immediate", scheme, split,
                                 _base_config(epochs, lambda_warmup_epochs=0)),
    }


def ablate_threshold_freeze(split: DataSplit, epochs: int = 8) -> dict[str, AblationPoint]:
    """Gate churn to the end vs a frozen fine-tuning phase."""
    scheme = scheme_flightnn((0.0, 0.002), label="FL")
    return {
        "frozen": train_point("frozen", scheme, split,
                              _base_config(epochs, threshold_freeze_epoch=epochs - 3)),
        "churning": train_point("churning", scheme, split,
                                _base_config(epochs, threshold_freeze_epoch=None)),
    }


def ablate_exponent_window(split: DataSplit, epochs: int = 8) -> dict[str, AblationPoint]:
    """LightNN-1 with the 4-bit exponent window vs a 2-level code."""
    config = TrainConfig(epochs=epochs, batch_size=64, lr=3e-3)
    return {
        "wide": train_point(
            "wide [-6,1]",
            scheme_lightnn(1, pow2=PowerOfTwoConfig(exp_min=-6, exp_max=1)),
            split, config,
        ),
        "narrow": train_point(
            "narrow [-1,0]",
            scheme_lightnn(1, pow2=PowerOfTwoConfig(exp_min=-1, exp_max=0)),
            split, config,
        ),
    }


def ablate_regularization_mode(split: DataSplit, epochs: int = 8) -> dict[str, AblationPoint]:
    """Proximal group lasso (default) vs the paper's literal loss term."""
    scheme = scheme_flightnn((0.0, 0.02), label="FL")
    return {
        "proximal": train_point(
            "proximal", scheme, split,
            _base_config(epochs, regularization_mode="proximal"),
        ),
        "gradient": train_point(
            "gradient", scheme, split,
            _base_config(epochs, regularization_mode="gradient"),
        ),
    }
