"""Reproduce every paper table and figure in one run.

Usage:
    python -m repro.experiments.reproduce [--profile small|medium|paper]
                                          [--output results/report.txt]

Trains (or loads from cache) all 46 table models plus the Fig. 6 width
sweep, prints each reproduced table/figure, and writes the combined report.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.accuracy_tables import run_accuracy_table
from repro.experiments.figures import run_fig1, run_fig4, run_fig5, run_fig6
from repro.experiments.common import default_cache_dir, get_profile
from repro.experiments.table6 import render_table6, run_table6

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Run the full reproduction suite; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default=None,
                        help="scale profile (default: REPRO_PROFILE or 'small')")
    parser.add_argument("--output", default=None,
                        help="report file (default: <cache>/report_<profile>.txt)")
    args = parser.parse_args(argv)

    profile = get_profile(args.profile)
    sections: list[str] = [f"FLightNN reproduction report — profile '{profile.name}'"]
    start = time.time()

    def section(title: str, body: str) -> None:
        sections.append(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}")
        print(sections[-1], flush=True)

    for table_id in ("table2", "table3", "table4", "table5"):
        table = run_accuracy_table(table_id, profile)
        section(f"{table_id} ({table.dataset})", table.render())

    section("table6 (FPGA resources)", render_table6(run_table6(profile)))

    fig1 = run_fig1(profile)
    fig1_lines = [f"  {k:5s} energy={e:.4f} uJ  error={err:.2f}%"
                  for k, (e, err) in fig1.items()]
    section("fig1 (LightNN Pareto gap)", "\n".join(fig1_lines))

    fig4 = run_fig4()
    fig4_lines = ["  w      term0      term1      total"]
    for i in range(0, len(fig4["weight"]), len(fig4["weight"]) // 10):
        fig4_lines.append(
            f"  {fig4['weight'][i]:4.2f}  {fig4['first_term'][i]:.2e}  "
            f"{fig4['second_term'][i]:.2e}  {fig4['total'][i]:.2e}"
        )
    section("fig4 (regularization curve)", "\n".join(fig4_lines))

    panels = run_fig5(profile)
    section("fig5 (accuracy vs ASIC energy)",
            "\n\n".join(panel.render() for panel in panels))

    fig6 = run_fig6(profile)
    dominance = ("FLightNN front DOMINATES the LightNN front (paper's claim holds)"
                 if fig6.flightnn_is_upper_bound()
                 else "WARNING: FLightNN front does not dominate at this scale/seed")
    section("fig6 (accuracy-storage fronts)", fig6.render() + "\n\n" + dominance)

    sections.append(f"\ncompleted in {time.time() - start:.0f}s")
    output = Path(args.output) if args.output else (
        default_cache_dir() / f"report_{profile.name}.txt"
    )
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text("\n".join(sections), encoding="utf-8")
    print(f"\nreport written to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
