"""Table 6: FPGA resource utilisation for networks 7 and 8.

The paper reports BRAM/DSP/FF/LUT usage of each quantized model's largest-
layer accelerator at full network scale.  Resource usage depends only on
the layer geometry and the scheme (plus, for FLightNN, the trained
per-filter k mix), so this experiment builds the full-scale networks
without training and — for the two FLightNN rows — emulates the trained
operating points by setting the level-1 threshold at a percentile of the
level-1 residual norms: FL_a at the 90th percentile (mean k close to 1,
the paper's FL7a/FL8a) and FL_b at the 40th (mixed k, FL7b/FL8b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentProfile, build_scheme, get_profile
from repro.hw.fpga import FPGA_ZC706, FPGADesignPoint, FPGAModel
from repro.hw.ops import network_largest_layer_ops
from repro.models import build_network

__all__ = ["Table6Row", "run_table6", "FL_EMULATION_PERCENTILES"]

#: Level-1 residual-norm percentile used to emulate each trained FLightNN.
FL_EMULATION_PERCENTILES = {"FL_a": 90.0, "FL_b": 40.0}

#: Paper rows: network 7 includes the Full/FP baselines, network 8 (like
#: Table 5) only the shift families.
TABLE6_SPECS: dict[int, tuple[str, ...]] = {
    7: ("Full", "L-2", "L-1", "FP", "FL_a", "FL_b"),
    8: ("L-2", "L-1", "FL_a", "FL_b"),
}


@dataclass
class Table6Row:
    """One utilisation row."""

    network_id: int
    scheme_name: str
    mean_k: float
    design: FPGADesignPoint

    @property
    def speedup_base(self) -> float:
        """Raw throughput (speedups are computed against the first row)."""
        return self.design.throughput


def _emulate_trained_flightnn(layer, percentile: float) -> None:
    """Set the layer's level-1 threshold at a residual-norm percentile."""
    quantizer = layer.strategy.quantizer
    norms = quantizer.residual_norms(layer.weight.data, layer.thresholds.data)
    layer.thresholds.data[1] = float(np.percentile(norms[1], percentile))


def run_table6(
    profile: ExperimentProfile | None = None,
    image_size: int = 32,
) -> list[Table6Row]:
    """Reproduce Table 6 at full Table-1 network scale."""
    profile = profile or get_profile()
    model = FPGAModel()
    rows: list[Table6Row] = []
    for network_id, scheme_keys in TABLE6_SPECS.items():
        for scheme_key in scheme_keys:
            scheme = build_scheme(scheme_key, profile)
            net = build_network(
                network_id, scheme, num_classes=10, image_size=image_size,
                width_scale=1.0, rng=profile.seed + network_id,
            )
            if scheme.is_flightnn:
                layer = net.largest_conv_layer()
                if layer.strategy.quantizer.config.k_max < 2:
                    raise ConfigurationError("Table 6 FLightNN rows need k_max >= 2")
                _emulate_trained_flightnn(layer, FL_EMULATION_PERCENTILES[scheme_key])
            ops = network_largest_layer_ops(net)
            rows.append(
                Table6Row(
                    network_id=network_id,
                    scheme_name=scheme.name,
                    mean_k=ops.mean_k,
                    design=model.map_layer(ops),
                )
            )
    return rows


def render_table6(rows: list[Table6Row]) -> str:
    """Paper-style plain-text rendering with the Available row."""
    headers = ["ID", "Model", "BRAM", "DSP", "FF", "LUT", "Speedup", "bound by"]
    cells = []
    baselines: dict[int, float] = {}
    for row in rows:
        baselines.setdefault(row.network_id, row.design.throughput)
        cells.append([
            row.network_id,
            row.scheme_name,
            row.design.usage.bram,
            row.design.usage.dsp,
            f"{row.design.usage.ff:,}",
            f"{row.design.usage.lut:,}",
            f"{row.design.throughput / baselines[row.network_id]:.2f}x",
            ",".join(row.design.bound_by) or "-",
        ])
    cells.append([
        "", "Available", FPGA_ZC706.bram, FPGA_ZC706.dsp,
        f"{FPGA_ZC706.ff:,}", f"{FPGA_ZC706.lut:,}", "", "",
    ])
    return format_table(headers, cells, title="Table 6 (FPGA resource utilisation)")
