"""Shared experiment infrastructure: profiles, runner, result cache.

Every table/figure experiment trains some subset of (network, scheme) pairs
and measures accuracy (software), throughput (FPGA model) and energy (ASIC
model).  This module provides:

* :class:`ExperimentProfile` — the scale knobs.  The default ``small``
  profile shrinks widths/resolutions/epochs so the full 46-model suite runs
  on one CPU in minutes; ``paper`` uses Table-1 scale (hours-days on CPU).
  Select with the ``REPRO_PROFILE`` environment variable.
* :func:`run_scheme` — train one (network, scheme) pair end-to-end and
  measure it on both hardware models.
* A JSON result cache so benchmarks that share trainings (e.g. Table 4 and
  Fig. 5) do not retrain.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

from repro.data.benchmarks import DATASET_BUILDERS
from repro.data.dataset import DataSplit
from repro.errors import ConfigurationError
from repro.hw.asic import AsicEnergyModel
from repro.hw.fpga import FPGAModel
from repro.hw.ops import network_largest_layer_ops
from repro.models import build_network
from repro.quant.schemes import (
    QuantizationScheme,
    scheme_fixed_point,
    scheme_flightnn,
    scheme_full,
    scheme_lightnn,
)
from repro.train import TrainConfig, Trainer
from repro.utils.logging import get_logger
from repro.utils.serialization import load_json, save_json

__all__ = [
    "ExperimentProfile",
    "PROFILES",
    "get_profile",
    "ModelResult",
    "build_scheme",
    "make_split",
    "run_scheme",
    "default_cache_dir",
]

_LOGGER = get_logger("experiments.common")


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale knobs for one experiment suite run.

    Attributes:
        name: Profile label (used in cache keys).
        size_scale: Dataset resolution multiplier (1.0 = 32x32).
        train_samples: Training samples per dataset.
        width_scale: Network channel-count multiplier (1.0 = Table 1).
        epochs / batch_size / lr: Training schedule.
        lambda_warmup_epochs: Gradual-quantization ramp for FLightNNs.
        threshold_lr_scale: Threshold SGD step multiplier.
        fl_lambdas_a / fl_lambdas_b: The two FLightNN operating points the
            paper trains per network (``a`` = stronger regularization =
            cheaper model).  ``lambda_0`` is kept at 0: the paper's FL rows
            show no whole-filter pruning (FL_a storage equals LightNN-1's).
        seed: Master seed.
        data_rev: Bumped whenever the dataset builders' difficulty defaults
            change, so cached results are invalidated.
    """

    name: str
    size_scale: float
    train_samples: int
    width_scale: float
    epochs: int
    batch_size: int
    lr: float
    lambda_warmup_epochs: int
    threshold_freeze_epoch: int
    threshold_lr_scale: float
    fl_lambdas_a: tuple[float, float]
    fl_lambdas_b: tuple[float, float]
    seed: int = 0
    data_rev: int = 3

    def train_config(self) -> TrainConfig:
        """Build the trainer configuration for this profile."""
        return TrainConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            lambda_warmup_epochs=self.lambda_warmup_epochs,
            threshold_freeze_epoch=self.threshold_freeze_epoch,
            threshold_lr_scale=self.threshold_lr_scale,
            seed=self.seed,
        )

    def fingerprint(self) -> str:
        """Short hash of every profile field (cache invalidation)."""
        payload = repr(dataclasses.astuple(self)).encode()
        return hashlib.sha256(payload).hexdigest()[:12]


PROFILES: dict[str, ExperimentProfile] = {
    "small": ExperimentProfile(
        name="small",
        size_scale=0.5,
        train_samples=512,
        width_scale=0.25,
        epochs=8,
        batch_size=64,
        lr=3e-3,
        lambda_warmup_epochs=2,
        threshold_freeze_epoch=5,
        threshold_lr_scale=10.0,
        fl_lambdas_a=(0.0, 0.02),
        fl_lambdas_b=(0.0, 0.002),
    ),
    "medium": ExperimentProfile(
        name="medium",
        size_scale=0.5,
        train_samples=1536,
        width_scale=0.5,
        epochs=12,
        batch_size=64,
        lr=2e-3,
        lambda_warmup_epochs=3,
        threshold_freeze_epoch=8,
        threshold_lr_scale=10.0,
        fl_lambdas_a=(0.0, 0.02),
        fl_lambdas_b=(0.0, 0.002),
    ),
    "paper": ExperimentProfile(
        name="paper",
        size_scale=1.0,
        train_samples=8192,
        width_scale=1.0,
        epochs=60,
        batch_size=128,
        lr=1e-3,
        lambda_warmup_epochs=15,
        threshold_freeze_epoch=45,
        threshold_lr_scale=10.0,
        fl_lambdas_a=(0.0, 0.02),
        fl_lambdas_b=(0.0, 0.002),
    ),
}


def get_profile(name: str | None = None) -> ExperimentProfile:
    """Resolve a profile by name, argument over ``REPRO_PROFILE`` over small."""
    name = name or os.environ.get("REPRO_PROFILE", "small")
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        )


def default_cache_dir() -> Path:
    """Result-cache directory (override with ``REPRO_CACHE_DIR``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", "results"))


@dataclass
class ModelResult:
    """Measurements for one trained (network, scheme) pair — one table row."""

    network_id: int
    scheme_key: str
    scheme_name: str
    accuracy: float          # top-1, percent (best eligible epoch)
    top5: float              # top-5, percent (same epoch as accuracy)
    accuracy_final: float    # top-1 at the last epoch
    storage_mb: float
    mean_filter_k: float
    throughput: float        # images/s from the FPGA model
    batch_size: int          # FPGA batch lanes
    fpga_lut: int
    fpga_ff: int
    fpga_dsp: int
    fpga_bram: int
    fpga_bound_by: tuple[str, ...]
    energy_uj: float         # ASIC computational energy, largest layer
    train_epochs: int
    fingerprint: str = ""

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        d = dataclasses.asdict(self)
        d["fpga_bound_by"] = list(self.fpga_bound_by)
        return d

    @staticmethod
    def from_dict(d: dict) -> "ModelResult":
        d = dict(d)
        d["fpga_bound_by"] = tuple(d.get("fpga_bound_by", ()))
        d.setdefault("accuracy_final", d.get("accuracy", 0.0))
        return ModelResult(**d)


def build_scheme(scheme_key: str, profile: ExperimentProfile) -> QuantizationScheme:
    """Instantiate one of the paper's scheme families for this profile."""
    if scheme_key == "Full":
        return scheme_full()
    if scheme_key == "L-2":
        return scheme_lightnn(2)
    if scheme_key == "L-1":
        return scheme_lightnn(1)
    if scheme_key == "FP":
        return scheme_fixed_point()
    if scheme_key == "FL_a":
        return scheme_flightnn(profile.fl_lambdas_a, label="FL_a")
    if scheme_key == "FL_b":
        return scheme_flightnn(profile.fl_lambdas_b, label="FL_b")
    raise ConfigurationError(f"unknown scheme key {scheme_key!r}")


def make_split(dataset_key: str, profile: ExperimentProfile) -> DataSplit:
    """Build the profile-scaled synthetic stand-in for ``dataset_key``."""
    try:
        builder = DATASET_BUILDERS[dataset_key]
    except KeyError:
        raise ConfigurationError(f"unknown dataset {dataset_key!r}")
    return builder(size_scale=profile.size_scale, samples=profile.train_samples)


def run_scheme(
    network_id: int,
    scheme_key: str,
    split: DataSplit,
    profile: ExperimentProfile,
    cache_dir: Path | None = None,
    use_cache: bool = True,
    width_scale: float | None = None,
    cache_tag: str = "",
) -> ModelResult:
    """Train + measure one (network, scheme) pair, with JSON caching.

    Args:
        network_id: Table-1 network ID.
        scheme_key: One of ``Full | L-2 | L-1 | FP | FL_a | FL_b``.
        split: Dataset to train/evaluate on.
        profile: Scale profile.
        cache_dir: Cache root (default: :func:`default_cache_dir`).
        use_cache: Read/write the JSON result cache.
        width_scale: Override the profile's width scale (Fig. 6 sweep).
        cache_tag: Extra cache-key suffix for non-default variants.
    """
    cache_dir = default_cache_dir() if cache_dir is None else Path(cache_dir)
    fingerprint = profile.fingerprint()
    suffix = f"_{cache_tag}" if cache_tag else ""
    cache_path = cache_dir / profile.name / f"net{network_id}_{scheme_key}{suffix}.json"
    if use_cache and cache_path.exists():
        cached = ModelResult.from_dict(load_json(cache_path))
        if cached.fingerprint == fingerprint:
            return cached
        _LOGGER.info("stale cache for %s (profile changed); recomputing", cache_path)

    scheme = build_scheme(scheme_key, profile)
    model = build_network(
        network_id,
        scheme,
        num_classes=split.num_classes,
        image_size=split.image_shape[1],
        width_scale=profile.width_scale if width_scale is None else width_scale,
        rng=profile.seed + network_id,
    )
    trainer = Trainer(model, profile.train_config())
    history = trainer.fit(split)

    # Report the best checkpoint, as the paper's tables do.  For FLightNNs
    # only post-freeze epochs are eligible so the accuracy pairs with the
    # settled per-filter k assignment (storage/throughput columns).
    eligible = history.epochs
    if scheme.is_flightnn:
        frozen = [e for e in history.epochs if e.epoch >= profile.threshold_freeze_epoch]
        eligible = frozen or history.epochs
    best = max(eligible, key=lambda e: e.test_accuracy)

    ops = network_largest_layer_ops(model)
    design = FPGAModel().map_layer(ops)
    energy = AsicEnergyModel().layer_energy_uj(ops)

    result = ModelResult(
        network_id=network_id,
        scheme_key=scheme_key,
        scheme_name=scheme.name,
        accuracy=100.0 * best.test_accuracy,
        top5=100.0 * best.test_top5,
        accuracy_final=100.0 * history.final.test_accuracy,
        storage_mb=model.storage_mb(),
        mean_filter_k=model.mean_filter_k(),
        throughput=design.throughput,
        batch_size=design.batch_size,
        fpga_lut=design.usage.lut,
        fpga_ff=design.usage.ff,
        fpga_dsp=design.usage.dsp,
        fpga_bram=design.usage.bram,
        fpga_bound_by=design.bound_by,
        energy_uj=energy,
        train_epochs=profile.epochs,
        fingerprint=fingerprint,
    )
    if use_cache:
        save_json(cache_path, result.as_dict())
    return result
