"""Figure experiments: Fig. 1 (motivation), Fig. 4 (regularizer curve),
Fig. 5 (accuracy vs ASIC energy) and Fig. 6 (accuracy-storage fronts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.pareto import front_dominates, pareto_front
from repro.analysis.tables import format_table
from repro.experiments.accuracy_tables import TABLE_SPECS, run_accuracy_table
from repro.experiments.common import (
    ExperimentProfile,
    ModelResult,
    get_profile,
    make_split,
    run_scheme,
)
from repro.quant.flightnn import FLightNNConfig, FLightNNQuantizer
from repro.quant.regularization import regularization_curve

__all__ = [
    "run_fig1",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "Fig5Panel",
    "Fig6Result",
]


# -- Fig. 1: the LightNN Pareto gap FLightNN fills ---------------------------------


def run_fig1(
    profile: ExperimentProfile | None = None,
    cache_dir: Path | None = None,
) -> dict[str, tuple[float, float]]:
    """Fig. 1 data: (energy, test-error) of L-1/L-2 and the FL points between.

    Reuses the network-1 rows of Table 2.  The motivating claim: L-1 and
    L-2 are two isolated points with a gap in both error and energy, and
    FLightNNs populate the gap.
    """
    table = run_accuracy_table("table2", profile, cache_dir)
    points = {}
    for row in table.network_rows(1):
        if row.scheme_key in ("L-1", "L-2", "FL_a", "FL_b"):
            points[row.scheme_key] = (row.energy_uj, 100.0 - row.accuracy)
    return points


# -- Fig. 4: regularization loss vs weight value -----------------------------------


def run_fig4(
    lambdas: tuple[float, float] = (1e-5, 3e-5),
    weight_range: tuple[float, float] = (0.0, 2.0),
    samples: int = 401,
) -> dict[str, np.ndarray]:
    """Fig. 4 series: the two ``L_reg,2`` terms and their sum over weight value.

    Uses the paper's exact coefficients (lambda_0 = 1e-5, lambda_1 = 3e-5)
    and an unbounded exponent window (the figure plots the ideal curve).
    """
    quantizer = FLightNNQuantizer(
        FLightNNConfig(k_max=2, norm_per_element=False)
    )
    weights = np.linspace(weight_range[0], weight_range[1], samples)
    rows = regularization_curve(weights, lambdas, quantizer)
    return {
        "weight": weights,
        "first_term": rows[0],
        "second_term": rows[1],
        "total": rows[2],
    }


# -- Fig. 5: accuracy vs ASIC computational energy ---------------------------------


@dataclass
class Fig5Panel:
    """One per-network panel of Fig. 5."""

    network_id: int
    dataset: str
    metric: str
    points: list[ModelResult] = field(default_factory=list)

    def series(self) -> list[tuple[str, float, float]]:
        """(label, energy_uJ, accuracy%) per quantized model."""
        out = []
        for row in self.points:
            acc = row.top5 if self.metric == "top5" else row.accuracy
            out.append((row.scheme_key, row.energy_uj, acc))
        return out

    def render(self) -> str:
        headers = ["Model", "Energy(uJ)", "Accuracy(%)"]
        cells = [[l, f"{e:.4f}", f"{a:.2f}"] for l, e, a in self.series()]
        return format_table(headers, cells,
                            title=f"Fig 5 panel: network {self.network_id} ({self.dataset})")


def run_fig5(
    profile: ExperimentProfile | None = None,
    cache_dir: Path | None = None,
) -> list[Fig5Panel]:
    """Fig. 5: one accuracy-vs-energy panel per Table-1 network.

    Quantized models only (the paper's panels omit the FP32 point, which
    is off-scale).  Reuses the Table 2-5 trainings via the shared cache.
    """
    panels: list[Fig5Panel] = []
    for table_id, (networks, dataset, schemes, metric) in TABLE_SPECS.items():
        table = run_accuracy_table(table_id, profile, cache_dir)
        for network_id in networks:
            panel = Fig5Panel(network_id=network_id, dataset=dataset, metric=metric)
            panel.points = [
                row for row in table.network_rows(network_id) if row.scheme_key != "Full"
            ]
            panels.append(panel)
    panels.sort(key=lambda p: p.network_id)
    return panels


# -- Fig. 6: accuracy-storage Pareto fronts under width scaling ---------------------


@dataclass
class Fig6Result:
    """Width-sweep study on CIFAR-100 (network 6).

    Attributes:
        lightnn_points: (storage_mb, accuracy%) of every L-1/L-2 model.
        flightnn_points: Same for the FLightNN models.
    """

    lightnn_points: list[tuple[float, float]]
    flightnn_points: list[tuple[float, float]]

    @property
    def lightnn_front(self) -> list[tuple[float, float]]:
        """Pareto front of the combined L-1/L-2 family."""
        return pareto_front(self.lightnn_points)

    @property
    def flightnn_front(self) -> list[tuple[float, float]]:
        """Pareto front of the FLightNN family."""
        return pareto_front(self.flightnn_points)

    def flightnn_is_upper_bound(
        self, tolerance: float = 2.5, cost_rtol: float = 0.05
    ) -> bool:
        """The paper's Fig. 6 claim: the FL front dominates the LightNN front.

        ``tolerance`` (accuracy percentage points) absorbs single-seed
        training noise at the scaled-down profiles, and ``cost_rtol``
        matches points whose storage differs by measurement granularity
        (an FL_a model's storage sits a couple of percent above pure
        LightNN-1).  Pass zeros for the strict check at paper scale.
        """
        return front_dominates(self.flightnn_front, self.lightnn_front,
                               tolerance=tolerance, cost_rtol=cost_rtol)

    def render(self) -> str:
        headers = ["Family", "Storage(MB)", "Accuracy(%)"]
        cells = [["LightNN", f"{s:.4f}", f"{a:.2f}"] for s, a in sorted(self.lightnn_points)]
        cells += [["FLightNN", f"{s:.4f}", f"{a:.2f}"] for s, a in sorted(self.flightnn_points)]
        return format_table(headers, cells, title="Fig 6 (accuracy-storage front, network 6)")


def run_fig6(
    profile: ExperimentProfile | None = None,
    cache_dir: Path | None = None,
    width_multipliers: tuple[float, ...] = (0.6, 1.0, 1.6),
) -> Fig6Result:
    """Fig. 6: sweep network-6 width; compare LightNN vs FLightNN fronts.

    For each width multiplier (relative to the profile width) trains L-1,
    L-2, FL_a and FL_b; the FL family contributes two operating points per
    width versus the LightNN family's fixed pair.
    """
    profile = profile or get_profile()
    split = make_split("cifar100", profile)
    lightnn: list[tuple[float, float]] = []
    flightnn: list[tuple[float, float]] = []
    for mult in width_multipliers:
        width = profile.width_scale * mult
        tag = f"w{mult:g}"
        for scheme_key in ("L-1", "L-2", "FL_a", "FL_b"):
            row = run_scheme(
                6, scheme_key, split, profile,
                cache_dir=cache_dir, width_scale=width, cache_tag=tag,
            )
            point = (row.storage_mb, row.accuracy)
            (flightnn if scheme_key.startswith("FL") else lightnn).append(point)
    return Fig6Result(lightnn_points=lightnn, flightnn_points=flightnn)
