"""Tables 2-5: accuracy / storage / FPGA throughput per quantized model.

One generic runner parameterised by (table id, networks, dataset, schemes,
metric); the paper's four accuracy tables are thin wrappers:

* Table 2 — CIFAR-10, networks 1-3, all six model families.
* Table 3 — SVHN, networks 4-5.
* Table 4 — CIFAR-100, networks 6-7.
* Table 5 — ImageNet (top-5), network 8, shift families only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.tables import format_table, format_throughput_value
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentProfile,
    ModelResult,
    get_profile,
    make_split,
    run_scheme,
)

__all__ = [
    "AccuracyTable",
    "run_accuracy_table",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "TABLE_SPECS",
]

SCHEME_ORDER = ("Full", "L-2", "L-1", "FP", "FL_a", "FL_b")
TABLE5_SCHEMES = ("L-2", "L-1", "FL_a", "FL_b")

#: (networks, dataset, schemes, metric) per paper table.
TABLE_SPECS: dict[str, tuple[tuple[int, ...], str, tuple[str, ...], str]] = {
    "table2": ((1, 2, 3), "cifar10", SCHEME_ORDER, "top1"),
    "table3": ((4, 5), "svhn", SCHEME_ORDER, "top1"),
    "table4": ((6, 7), "cifar100", SCHEME_ORDER, "top1"),
    "table5": ((8,), "imagenet", TABLE5_SCHEMES, "top5"),
}


@dataclass
class AccuracyTable:
    """One reproduced accuracy/throughput table.

    Attributes:
        table_id: ``table2`` .. ``table5``.
        dataset: Dataset key.
        metric: ``top1`` or ``top5`` (Table 5 reports top-5).
        rows: One :class:`ModelResult` per (network, scheme), in table order.
    """

    table_id: str
    dataset: str
    metric: str
    rows: list[ModelResult] = field(default_factory=list)

    def accuracy_of(self, row: ModelResult) -> float:
        """The accuracy column value for ``row`` under this table's metric."""
        return row.top5 if self.metric == "top5" else row.accuracy

    def baseline_throughput(self, network_id: int) -> float:
        """Throughput of the network's reference row (first scheme listed)."""
        for row in self.rows:
            if row.network_id == network_id:
                return row.throughput
        raise ConfigurationError(f"no rows for network {network_id}")

    def speedup_of(self, row: ModelResult) -> float:
        """Speedup over the network's reference row (``1x`` for the first)."""
        return row.throughput / self.baseline_throughput(row.network_id)

    def network_rows(self, network_id: int) -> list[ModelResult]:
        """All rows of one network, in scheme order."""
        return [r for r in self.rows if r.network_id == network_id]

    def render(self) -> str:
        """Paper-style plain-text rendering."""
        headers = ["ID", "Model", "Accuracy(%)", "Storage(MB)",
                   "Throughput(img/s)", "Speedup", "mean k"]
        cells = []
        for row in self.rows:
            cells.append([
                row.network_id,
                row.scheme_name,
                f"{self.accuracy_of(row):.2f}",
                f"{row.storage_mb:.4f}",
                format_throughput_value(row.throughput),
                f"{self.speedup_of(row):.2f}x",
                f"{row.mean_filter_k:.2f}",
            ])
        label = {"table2": "Table 2 (CIFAR-10)", "table3": "Table 3 (SVHN)",
                 "table4": "Table 4 (CIFAR-100)", "table5": "Table 5 (ImageNet, top-5)"}
        return format_table(headers, cells, title=label.get(self.table_id, self.table_id))


def run_accuracy_table(
    table_id: str,
    profile: ExperimentProfile | None = None,
    cache_dir: Path | None = None,
) -> AccuracyTable:
    """Reproduce one of Tables 2-5 end to end (train + measure all rows)."""
    if table_id not in TABLE_SPECS:
        raise ConfigurationError(f"unknown table {table_id!r}; known: {sorted(TABLE_SPECS)}")
    networks, dataset, schemes, metric = TABLE_SPECS[table_id]
    profile = profile or get_profile()
    table = AccuracyTable(table_id=table_id, dataset=dataset, metric=metric)
    split = make_split(dataset, profile)
    for network_id in networks:
        for scheme_key in schemes:
            table.rows.append(
                run_scheme(network_id, scheme_key, split, profile, cache_dir=cache_dir)
            )
    return table


def run_table2(profile: ExperimentProfile | None = None, cache_dir: Path | None = None) -> AccuracyTable:
    """Table 2: CIFAR-10 accuracy and FPGA throughput (networks 1-3)."""
    return run_accuracy_table("table2", profile, cache_dir)


def run_table3(profile: ExperimentProfile | None = None, cache_dir: Path | None = None) -> AccuracyTable:
    """Table 3: SVHN accuracy and FPGA throughput (networks 4-5)."""
    return run_accuracy_table("table3", profile, cache_dir)


def run_table4(profile: ExperimentProfile | None = None, cache_dir: Path | None = None) -> AccuracyTable:
    """Table 4: CIFAR-100 accuracy and FPGA throughput (networks 6-7)."""
    return run_accuracy_table("table4", profile, cache_dir)


def run_table5(profile: ExperimentProfile | None = None, cache_dir: Path | None = None) -> AccuracyTable:
    """Table 5: ImageNet top-5 accuracy and FPGA throughput (network 8)."""
    return run_accuracy_table("table5", profile, cache_dir)
