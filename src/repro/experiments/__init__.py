"""Experiment entry points — one per paper table/figure.

See DESIGN.md's per-experiment index for the mapping to paper content.
"""

from repro.experiments.common import (
    PROFILES,
    ExperimentProfile,
    ModelResult,
    build_scheme,
    default_cache_dir,
    get_profile,
    make_split,
    run_scheme,
)
from repro.experiments.accuracy_tables import (
    TABLE_SPECS,
    AccuracyTable,
    run_accuracy_table,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.table6 import Table6Row, render_table6, run_table6
from repro.experiments.ablations import (
    AblationPoint,
    ablate_exponent_window,
    ablate_gradual_quantization,
    ablate_regularization_mode,
    ablate_threshold_freeze,
)
from repro.experiments.figures import (
    Fig5Panel,
    Fig6Result,
    run_fig1,
    run_fig4,
    run_fig5,
    run_fig6,
)

__all__ = [
    "ExperimentProfile",
    "PROFILES",
    "get_profile",
    "ModelResult",
    "build_scheme",
    "make_split",
    "run_scheme",
    "default_cache_dir",
    "AccuracyTable",
    "TABLE_SPECS",
    "run_accuracy_table",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "Table6Row",
    "run_table6",
    "render_table6",
    "run_fig1",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "Fig5Panel",
    "Fig6Result",
    "AblationPoint",
    "ablate_gradual_quantization",
    "ablate_threshold_freeze",
    "ablate_exponent_window",
    "ablate_regularization_mode",
]
