"""Deterministic test harnesses: fault injection and integer-parity checks."""

from repro.testing.faults import (
    ConnectionDropFault,
    FailingWriteFault,
    NaNGradientFault,
    SharedMemoryCorruptionFault,
    TornWriteFault,
    WorkerCrashFault,
    WorkerHangFault,
)
from repro.testing.intq_parity import build_parity_network, run_intq_parity, sample_images

__all__ = [
    "TornWriteFault",
    "FailingWriteFault",
    "NaNGradientFault",
    "ConnectionDropFault",
    "WorkerCrashFault",
    "WorkerHangFault",
    "SharedMemoryCorruptionFault",
    "build_parity_network",
    "run_intq_parity",
    "sample_images",
]
