"""Deterministic test harnesses: fault injection and integer-parity checks."""

from repro.testing.faults import (
    ConnectionDropFault,
    FailingWriteFault,
    NaNGradientFault,
    TornWriteFault,
)
from repro.testing.intq_parity import build_parity_network, run_intq_parity, sample_images

__all__ = [
    "TornWriteFault",
    "FailingWriteFault",
    "NaNGradientFault",
    "ConnectionDropFault",
    "build_parity_network",
    "run_intq_parity",
    "sample_images",
]
