"""Deterministic fault-injection harness for resilience testing."""

from repro.testing.faults import (
    ConnectionDropFault,
    FailingWriteFault,
    NaNGradientFault,
    TornWriteFault,
)

__all__ = [
    "TornWriteFault",
    "FailingWriteFault",
    "NaNGradientFault",
    "ConnectionDropFault",
]
