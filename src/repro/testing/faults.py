"""Deterministic fault injectors for the resilience test suites.

Every injector is counter-based: it fires at an exact, caller-chosen point
(the Nth checkpoint save, a specific global training step, the first K
connection attempts) and then disarms, so a test that provokes a recovery
path reproduces bit-for-bit on every run.  Each records how often it fired
so tests can assert the fault actually struck.

Attachment points (all production seams, no monkeypatching needed):

* :class:`TornWriteFault` / :class:`FailingWriteFault` — pass as
  ``write_hook`` to :class:`~repro.train.checkpoint.TrainingCheckpoint`.
* :class:`NaNGradientFault` — append to
  :attr:`~repro.train.trainer.Trainer.grad_hooks`.
* :class:`ConnectionDropFault` — assign to
  :attr:`~repro.serve.client.PredictClient.pre_request_hook`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor

__all__ = [
    "TornWriteFault",
    "FailingWriteFault",
    "NaNGradientFault",
    "ConnectionDropFault",
]


class TornWriteFault:
    """Truncate the Nth checkpoint payload mid-stream (SIGKILL-style).

    The :class:`~repro.train.checkpoint.TrainingCheckpoint` manifest records
    the sha256 of the *intended* bytes while this hook hands a prefix to the
    disk — exactly the signature of a write torn by a kill or power loss.
    The loader must detect the checksum mismatch and fall back a generation.

    Args:
        fire_on_save: 1-based index of the save to corrupt.
        keep_fraction: Fraction of the payload that "reaches disk".
    """

    def __init__(self, fire_on_save: int, keep_fraction: float = 0.5) -> None:
        if fire_on_save < 1:
            raise ConfigurationError(f"fire_on_save must be >= 1, got {fire_on_save}")
        if not 0.0 <= keep_fraction < 1.0:
            raise ConfigurationError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
        self.fire_on_save = fire_on_save
        self.keep_fraction = keep_fraction
        self.calls = 0
        self.fired = 0

    def __call__(self, data: bytes, path: Path) -> bytes:
        self.calls += 1
        if self.calls == self.fire_on_save:
            self.fired += 1
            return data[: int(len(data) * self.keep_fraction)]
        return data


class FailingWriteFault:
    """Raise from the Nth checkpoint write (disk full / I/O error).

    Args:
        fire_on_save: 1-based index of the save to fail.
        exc_type: Exception class to raise (default :class:`OSError`).
    """

    def __init__(self, fire_on_save: int, exc_type: type[Exception] = OSError) -> None:
        if fire_on_save < 1:
            raise ConfigurationError(f"fire_on_save must be >= 1, got {fire_on_save}")
        self.fire_on_save = fire_on_save
        self.exc_type = exc_type
        self.calls = 0
        self.fired = 0

    def __call__(self, data: bytes, path: Path) -> bytes:
        self.calls += 1
        if self.calls == self.fire_on_save:
            self.fired += 1
            raise self.exc_type(f"injected checkpoint write failure (save #{self.calls})")
        return data


class NaNGradientFault:
    """Poison one parameter's gradient with NaN at chosen training steps.

    Fires on every global step ``>= fire_at_step`` until it has fired
    ``fires`` times, then disarms permanently.  The budget matters for
    rollback tests: a rollback rewinds the step counter, and a disarmed
    fault models the transient numerical blow-up the guardrails exist for
    (a permanently faulting step would rightly exhaust ``max_rollbacks``).

    Args:
        param: The parameter (e.g. ``net.conv_layers()[0].weight``).
        fire_at_step: First global step to poison.
        fires: Total poisonings before disarming (default: 1).
        value: Poison value (default NaN; use ``float("inf")`` for Inf).
    """

    def __init__(
        self,
        param: Tensor,
        fire_at_step: int,
        fires: int = 1,
        value: float = float("nan"),
    ) -> None:
        if fire_at_step < 0:
            raise ConfigurationError(f"fire_at_step must be >= 0, got {fire_at_step}")
        if fires < 1:
            raise ConfigurationError(f"fires must be >= 1, got {fires}")
        self.param = param
        self.fire_at_step = fire_at_step
        self.fires = fires
        self.value = value
        self.fired = 0

    def __call__(self, step: int) -> None:
        if self.fired >= self.fires or step < self.fire_at_step:
            return
        if self.param.grad is None:
            self.param.grad = np.full_like(self.param.data, self.value)
        else:
            self.param.grad[...] = self.value
        self.fired += 1


class ConnectionDropFault:
    """Drop the first ``drops`` connection attempts of a client.

    Assign to :attr:`PredictClient.pre_request_hook`; each raise counts as a
    transport failure, exercising the retry/backoff path without a flaky
    network.

    Args:
        drops: Attempts to fail before letting traffic through.
        exc_type: Exception class to raise (default :class:`ConnectionError`).
    """

    def __init__(self, drops: int, exc_type: type[Exception] = ConnectionError) -> None:
        if drops < 0:
            raise ConfigurationError(f"drops must be non-negative, got {drops}")
        self.drops = drops
        self.exc_type = exc_type
        self.calls = 0
        self.dropped = 0

    def __call__(self) -> None:
        self.calls += 1
        if self.dropped < self.drops:
            self.dropped += 1
            raise self.exc_type(f"injected connection drop ({self.dropped}/{self.drops})")
