"""Deterministic fault injectors for the resilience test suites.

Every injector is counter-based: it fires at an exact, caller-chosen point
(the Nth checkpoint save, a specific global training step, the first K
connection attempts) and then disarms, so a test that provokes a recovery
path reproduces bit-for-bit on every run.  Each records how often it fired
so tests can assert the fault actually struck.

Attachment points (all production seams, no monkeypatching needed):

* :class:`TornWriteFault` / :class:`FailingWriteFault` — pass as
  ``write_hook`` to :class:`~repro.train.checkpoint.TrainingCheckpoint`.
* :class:`NaNGradientFault` — append to
  :attr:`~repro.train.trainer.Trainer.grad_hooks`.
* :class:`ConnectionDropFault` — assign to
  :attr:`~repro.serve.client.PredictClient.pre_request_hook`.
* :class:`WorkerCrashFault` / :class:`WorkerHangFault` — pass in
  :attr:`~repro.serve.cluster.config.ClusterConfig.chaos`; the supervisor
  arms them at each worker spawn and the armed *directive* (a plain dict)
  rides into the worker process, so schedules survive ``fork``/``spawn``.
* :class:`SharedMemoryCorruptionFault` — call :meth:`~SharedMemoryCorruptionFault.apply`
  on a published :class:`~repro.utils.shm.ShmHandle`.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor

__all__ = [
    "TornWriteFault",
    "FailingWriteFault",
    "NaNGradientFault",
    "ConnectionDropFault",
    "WorkerCrashFault",
    "WorkerHangFault",
    "SharedMemoryCorruptionFault",
]


class TornWriteFault:
    """Truncate the Nth checkpoint payload mid-stream (SIGKILL-style).

    The :class:`~repro.train.checkpoint.TrainingCheckpoint` manifest records
    the sha256 of the *intended* bytes while this hook hands a prefix to the
    disk — exactly the signature of a write torn by a kill or power loss.
    The loader must detect the checksum mismatch and fall back a generation.

    Args:
        fire_on_save: 1-based index of the save to corrupt.
        keep_fraction: Fraction of the payload that "reaches disk".
    """

    def __init__(self, fire_on_save: int, keep_fraction: float = 0.5) -> None:
        if fire_on_save < 1:
            raise ConfigurationError(f"fire_on_save must be >= 1, got {fire_on_save}")
        if not 0.0 <= keep_fraction < 1.0:
            raise ConfigurationError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
        self.fire_on_save = fire_on_save
        self.keep_fraction = keep_fraction
        self.calls = 0
        self.fired = 0

    def __call__(self, data: bytes, path: Path) -> bytes:
        self.calls += 1
        if self.calls == self.fire_on_save:
            self.fired += 1
            return data[: int(len(data) * self.keep_fraction)]
        return data


class FailingWriteFault:
    """Raise from the Nth checkpoint write (disk full / I/O error).

    Args:
        fire_on_save: 1-based index of the save to fail.
        exc_type: Exception class to raise (default :class:`OSError`).
    """

    def __init__(self, fire_on_save: int, exc_type: type[Exception] = OSError) -> None:
        if fire_on_save < 1:
            raise ConfigurationError(f"fire_on_save must be >= 1, got {fire_on_save}")
        self.fire_on_save = fire_on_save
        self.exc_type = exc_type
        self.calls = 0
        self.fired = 0

    def __call__(self, data: bytes, path: Path) -> bytes:
        self.calls += 1
        if self.calls == self.fire_on_save:
            self.fired += 1
            raise self.exc_type(f"injected checkpoint write failure (save #{self.calls})")
        return data


class NaNGradientFault:
    """Poison one parameter's gradient with NaN at chosen training steps.

    Fires on every global step ``>= fire_at_step`` until it has fired
    ``fires`` times, then disarms permanently.  The budget matters for
    rollback tests: a rollback rewinds the step counter, and a disarmed
    fault models the transient numerical blow-up the guardrails exist for
    (a permanently faulting step would rightly exhaust ``max_rollbacks``).

    Args:
        param: The parameter (e.g. ``net.conv_layers()[0].weight``).
        fire_at_step: First global step to poison.
        fires: Total poisonings before disarming (default: 1).
        value: Poison value (default NaN; use ``float("inf")`` for Inf).
    """

    def __init__(
        self,
        param: Tensor,
        fire_at_step: int,
        fires: int = 1,
        value: float = float("nan"),
    ) -> None:
        if fire_at_step < 0:
            raise ConfigurationError(f"fire_at_step must be >= 0, got {fire_at_step}")
        if fires < 1:
            raise ConfigurationError(f"fires must be >= 1, got {fires}")
        self.param = param
        self.fire_at_step = fire_at_step
        self.fires = fires
        self.value = value
        self.fired = 0

    def __call__(self, step: int) -> None:
        if self.fired >= self.fires or step < self.fire_at_step:
            return
        if self.param.grad is None:
            self.param.grad = np.full_like(self.param.data, self.value)
        else:
            self.param.grad[...] = self.value
        self.fired += 1


class ConnectionDropFault:
    """Drop the first ``drops`` connection attempts of a client.

    Assign to :attr:`PredictClient.pre_request_hook`; each raise counts as a
    transport failure, exercising the retry/backoff path without a flaky
    network.

    Args:
        drops: Attempts to fail before letting traffic through.
        exc_type: Exception class to raise (default :class:`ConnectionError`).
    """

    def __init__(self, drops: int, exc_type: type[Exception] = ConnectionError) -> None:
        if drops < 0:
            raise ConfigurationError(f"drops must be non-negative, got {drops}")
        self.drops = drops
        self.exc_type = exc_type
        self.calls = 0
        self.dropped = 0

    def __call__(self) -> None:
        self.calls += 1
        if self.dropped < self.drops:
            self.dropped += 1
            raise self.exc_type(f"injected connection drop ({self.dropped}/{self.drops})")


class _WorkerFault:
    """Shared arming logic for cluster worker chaos faults.

    The supervisor calls :meth:`arm` once per worker spawn; while the
    ``fires`` budget lasts (and the spawn's slot matches ``slots``, if
    given), it returns a picklable *directive* dict that
    :func:`~repro.serve.cluster.worker.worker_main` evaluates at each
    predict.  A replacement worker spawned after the budget is exhausted
    gets no directive — which is exactly how a test proves recovery.
    ``arm`` is thread-safe: the supervisor's monitor thread respawns
    concurrently with request traffic.
    """

    def __init__(self, on_request: int, fires: int, slots: "tuple[int, ...] | None") -> None:
        if on_request < 1:
            raise ConfigurationError(f"on_request must be >= 1, got {on_request}")
        if fires < 1:
            raise ConfigurationError(f"fires must be >= 1, got {fires}")
        self.on_request = on_request
        self.fires = fires
        self.slots = None if slots is None else tuple(slots)
        self.armed = 0
        self._lock = threading.Lock()

    def _directive(self) -> dict:
        raise NotImplementedError

    def arm(self, slot: int) -> "dict | None":
        """One armed directive for a worker spawning on ``slot`` (or None)."""
        with self._lock:
            if self.armed >= self.fires:
                return None
            if self.slots is not None and slot not in self.slots:
                return None
            self.armed += 1
            return self._directive()


class WorkerCrashFault(_WorkerFault):
    """Hard-kill a cluster worker on its Nth predict (``os._exit``).

    Models a segfault/OOM: no cleanup, no goodbye on the pipe — the
    supervisor must detect the death, re-queue the in-flight request, and
    restart the slot.

    Args:
        on_request: 1-based predict count at which the worker dies.
        fires: Worker spawns to arm before the fault is spent (each armed
            worker dies once; a respawn after exhaustion serves normally).
        slots: Restrict arming to these pool slots (default: any slot).
        exit_code: Process exit code of the "crash".
    """

    def __init__(
        self,
        on_request: int = 1,
        fires: int = 1,
        slots: "tuple[int, ...] | None" = None,
        exit_code: int = 139,
    ) -> None:
        super().__init__(on_request, fires, slots)
        self.exit_code = exit_code

    def _directive(self) -> dict:
        return {"kind": "crash", "on_request": self.on_request, "exit_code": self.exit_code}


class WorkerHangFault(_WorkerFault):
    """Wedge a cluster worker on its Nth predict (sleep, no reply).

    Models a deadlock/livelock: the process stays alive but stops
    answering, so only the heartbeat timeout can catch it.  ``hang_s``
    should comfortably exceed the pool's ``heartbeat_timeout_s``.

    Args:
        on_request: 1-based predict count at which the worker wedges.
        fires: Worker spawns to arm before the fault is spent.
        slots: Restrict arming to these pool slots (default: any slot).
        hang_s: How long the worker sleeps (it is normally SIGKILLed first).
    """

    def __init__(
        self,
        on_request: int = 1,
        fires: int = 1,
        slots: "tuple[int, ...] | None" = None,
        hang_s: float = 3600.0,
    ) -> None:
        super().__init__(on_request, fires, slots)
        if hang_s <= 0:
            raise ConfigurationError(f"hang_s must be positive, got {hang_s}")
        self.hang_s = hang_s

    def _directive(self) -> dict:
        return {"kind": "hang", "on_request": self.on_request, "hang_s": self.hang_s}


class SharedMemoryCorruptionFault:
    """Flip seeded-random bytes inside a published shared-memory segment.

    Simulates a torn or corrupted plan payload.  Because
    :func:`~repro.utils.shm.attach_segment` verifies the segment's sha256 on
    every attach, a worker spawned against the corrupted generation must
    refuse it (:class:`~repro.errors.SharedMemoryError` → worker exits
    fatal) rather than serve garbage weights.

    Args:
        flips: Number of bytes to XOR-corrupt.
        seed: RNG seed choosing byte positions and XOR masks, so the
            corruption pattern is reproducible.
    """

    def __init__(self, flips: int = 8, seed: int = 0) -> None:
        if flips < 1:
            raise ConfigurationError(f"flips must be >= 1, got {flips}")
        self.flips = flips
        self.seed = seed
        self.applied = 0

    def apply(self, handle) -> "list[int]":
        """Corrupt ``handle``'s live segment in place; returns the offsets hit."""
        from repro.utils.shm import attach_segment

        segment = attach_segment(handle, verify=False)
        try:
            rng = np.random.default_rng(self.seed)
            offsets = rng.integers(0, handle.total_bytes, size=self.flips)
            masks = rng.integers(1, 256, size=self.flips)
            for offset, mask in zip(offsets, masks):
                segment.buf[int(offset)] ^= int(mask)
            self.applied += 1
            return [int(o) for o in offsets]
        finally:
            segment.close()
