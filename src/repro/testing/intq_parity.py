"""Integer-only inference parity harness.

Runs the eight standard test network structures (Table 1 at reduced width,
the same builders the test suite uses) through both the float64 compiled
plan and the integer-only program (``PlanConfig(dtype="int8")``) and
reports, per configuration:

* the max-abs logit deviation from the float64 reference,
* the argmax (top-1) agreement rate, and
* whether two repeated integer runs are bitwise identical (they must be —
  the integer pipeline is deterministic by construction).

Used by the ``infer-intq`` CI job and by ``tests/infer/test_intq.py``; the
module lives in ``src`` so the bench harness and external callers can reach
it without importing the test tree.
"""

from __future__ import annotations

import numpy as np

from repro.infer.engine import InferenceEngine
from repro.infer.plan import PlanConfig
from repro.models.registry import build_network
from repro.nn.layers.norm import BatchNorm2d
from repro.quant.schemes import paper_schemes

__all__ = [
    "IMAGE_SIZE",
    "NUM_CLASSES",
    "WIDTH_SCALE",
    "build_parity_network",
    "run_intq_parity",
    "sample_images",
]

#: Per-network width multipliers keeping each Table-1 structure test-sized
#: (mirrors the inference test suite's fixtures).
WIDTH_SCALE = {1: 0.25, 2: 0.125, 3: 0.0625, 4: 0.5, 5: 0.25, 6: 0.125, 7: 0.0625, 8: 0.125}

IMAGE_SIZE = 16
NUM_CLASSES = 10


def _randomize_bn_stats(model, rng: np.random.Generator) -> None:
    """Give every BN layer non-trivial affine params and running stats.

    Freshly initialised BN folds into an identity affine, which would let a
    broken scale/requant fold pass parity unnoticed.
    """
    for module in model.modules():
        if isinstance(module, BatchNorm2d):
            c = module.gamma.data.shape[0]
            module.gamma.data[:] = rng.uniform(0.5, 1.5, c)
            module.beta.data[:] = rng.normal(0.0, 0.2, c)
            module.running_mean[:] = rng.normal(0.0, 0.5, c)
            module.running_var[:] = rng.uniform(0.5, 2.0, c)


def build_parity_network(network_id: int, scheme_key: str = "FL_a", seed: int = 0):
    """One Table-1 structure at test width, eval mode, randomized BN stats."""
    model = build_network(
        network_id,
        paper_schemes()[scheme_key],
        num_classes=NUM_CLASSES,
        image_size=IMAGE_SIZE,
        width_scale=WIDTH_SCALE[network_id],
        rng=seed,
    )
    _randomize_bn_stats(model, np.random.default_rng(seed + 1))
    model.eval()
    return model


def sample_images(n: int, seed: int = 7) -> np.ndarray:
    """Deterministic standard-normal NCHW image batch."""
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, (n, 3, IMAGE_SIZE, IMAGE_SIZE))


def run_intq_parity(
    network_ids: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
    scheme_key: str = "FL_a",
    batch: int = 16,
    seed: int = 0,
) -> list[dict]:
    """Float64-vs-integer parity over the standard test configurations.

    Returns one record per network id::

        {"network_id", "max_abs_delta", "argmax_agreement",
         "deterministic", "accum_dtypes", "shift_ops", "int_mult_ops"}

    ``argmax_agreement`` is in [0, 1]; ``deterministic`` compares two
    integer runs bitwise.
    """
    images = sample_images(batch, seed=seed + 7)
    results = []
    for network_id in network_ids:
        model = build_parity_network(network_id, scheme_key=scheme_key, seed=seed)
        ref = InferenceEngine(model).predict_logits(images)
        engine = InferenceEngine(model, config=PlanConfig(dtype="int8"))
        logits = engine.predict_logits(images)
        repeat = engine.predict_logits(images)
        summary = engine.plan_summary()
        layers = summary["intq"]["layers"]
        totals = summary["intq"]["totals_per_image"]
        results.append(
            {
                "network_id": network_id,
                "scheme": scheme_key,
                "max_abs_delta": float(np.abs(logits - ref).max()),
                "argmax_agreement": float(
                    (logits.argmax(axis=1) == ref.argmax(axis=1)).mean()
                ),
                "deterministic": bool(np.array_equal(logits, repeat)),
                "accum_dtypes": sorted({layer["accum_dtype"] for layer in layers}),
                "shift_ops": int(totals["shift_ops"]),
                "int_mult_ops": int(totals["int_mult_ops"]),
            }
        )
    return results
