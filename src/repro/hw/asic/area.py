"""ASIC area model (65 nm).

The paper notes that "in an ASIC implementation, shift operations are more
lightweight than multiplications, making LightNNs more energy and area
efficient than fixed-point DNNs".  This module quantifies the area side of
that claim: per-operator cell areas (square micrometres at 65 nm, scaled
from standard-cell library data) and the datapath area of a one-MAC
compute unit per scheme, mirroring the paper's one-stage-per-neuron
pipeline with a reused computation unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.ops import ConvLayerOps

__all__ = ["AreaTable65nm", "AsicAreaModel"]


@dataclass(frozen=True)
class AreaTable65nm:
    """Per-operator cell area in square micrometres at 65 nm.

    Scaled from published standard-cell synthesis results: a 32-bit FP
    multiplier is roughly an order of magnitude larger than an 8x8 integer
    multiplier, which in turn dwarfs a barrel shifter and adder.
    """

    fp32_mult: float = 12000.0
    fp32_add: float = 6000.0
    int_mult_8x8: float = 800.0
    int_mult_4x8: float = 450.0
    int_add: float = 150.0
    shift: float = 120.0
    xnor: float = 15.0

    def __post_init__(self) -> None:
        values = (
            self.fp32_mult, self.fp32_add, self.int_mult_8x8,
            self.int_mult_4x8, self.int_add, self.shift, self.xnor,
        )
        if min(values) <= 0:
            raise HardwareModelError("per-op areas must be positive")


class AsicAreaModel:
    """Datapath area of one compute unit per quantization scheme."""

    def __init__(self, table: AreaTable65nm | None = None) -> None:
        self.table = table or AreaTable65nm()

    def unit_area_um2(self, ops: ConvLayerOps) -> float:
        """Area of one MAC-equivalent compute unit for this layer's scheme.

        Full precision: FP multiplier + FP adder.  Fixed point: narrow
        multiplier + adder.  (F)LightNN: one shifter + adder per *term* up
        to ceil(mean k) (the unit is sized for the worst filter in the
        Fig. 3 decomposition, i.e. k_max terms when any filter uses them).
        Binary: XNOR cell + adder.
        """
        t = self.table
        if ops.scheme_kind == "full":
            return t.fp32_mult + t.fp32_add
        if ops.scheme_kind == "fixed":
            return t.int_mult_4x8 + t.int_add
        if ops.scheme_kind in ("lightnn", "flightnn"):
            # One shift-add stage; multi-shift weights reuse it serially
            # (the throughput cost lives in the FPGA/latency model).
            return t.shift + t.int_add
        if ops.scheme_kind == "binary":
            return t.xnor + t.int_add
        raise HardwareModelError(f"no area model for scheme kind {ops.scheme_kind!r}")

    def datapath_area_mm2(self, ops: ConvLayerOps, parallel_units: int) -> float:
        """Total datapath area in mm^2 for ``parallel_units`` compute units."""
        if parallel_units < 1:
            raise HardwareModelError("parallel_units must be >= 1")
        return self.unit_area_um2(ops) * parallel_units / 1e6
