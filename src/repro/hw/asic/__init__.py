"""Analytical 65 nm ASIC computational-energy model."""

from repro.hw.asic.energy import AsicEnergyModel, EnergyTable65nm
from repro.hw.asic.area import AreaTable65nm, AsicAreaModel

__all__ = ["AsicEnergyModel", "EnergyTable65nm", "AsicAreaModel", "AreaTable65nm"]
