"""ASIC computational-energy model (65 nm).

Replaces the paper's Synopsys DC + PrimeTime flow with a per-operation
energy table.  Values are scaled to a 65 nm commercial library from
published 45 nm measurements (Horowitz, ISSCC 2014: FP32 multiply 3.7 pJ,
FP32 add 0.9 pJ, 8-bit int multiply 0.2 pJ, 8-bit int add 0.03 pJ) using a
~2x technology factor; narrow multiplies scale with operand width and a
barrel shift costs a fraction of an 8-bit add-width datapath.

Only *computational* energy of the target layer is modelled, matching the
paper: "The energy shown in Fig. 5 only includes the computational energy
consumption for the largest layer of each network."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.ops import ConvLayerOps

__all__ = ["EnergyTable65nm", "AsicEnergyModel"]


@dataclass(frozen=True)
class EnergyTable65nm:
    """Per-operation energies in picojoules at 65 nm.

    Attributes:
        fp32_mult / fp32_add: Floating-point datapath.
        int_mult_8x8: 8x8-bit fixed-point multiply.
        int_mult_4x8: 4x8-bit fixed-point multiply (the FP_4W8A baseline).
        int_add: Accumulator-width fixed-point add.
        shift: Barrel shift of an 8-bit activation.
        xnor: Conditional sign flip of a binary-weight MAC.
    """

    fp32_mult: float = 7.4
    fp32_add: float = 1.8
    int_mult_8x8: float = 0.40
    int_mult_4x8: float = 0.22
    int_add: float = 0.06
    shift: float = 0.03
    xnor: float = 0.005

    def __post_init__(self) -> None:
        if min(
            self.fp32_mult, self.fp32_add, self.int_mult_8x8,
            self.int_mult_4x8, self.int_add, self.shift, self.xnor,
        ) <= 0:
            raise HardwareModelError("per-op energies must be positive")


class AsicEnergyModel:
    """Computational energy of one conv layer under one scheme."""

    def __init__(self, table: EnergyTable65nm | None = None) -> None:
        self.table = table or EnergyTable65nm()

    def layer_energy_uj(self, ops: ConvLayerOps) -> float:
        """Energy in microjoules to compute the layer once.

        Full precision: one FP32 multiply + add per MAC.  Fixed point: one
        narrow multiply + add per MAC.  (F)LightNN: ``k`` shifts and ``k``
        adds per MAC of a k-shift filter (k-1 combine adds + 1 accumulate).
        """
        t = self.table
        if ops.scheme_kind == "full":
            pj = ops.macs * (t.fp32_mult + t.fp32_add)
        elif ops.scheme_kind == "fixed":
            pj = ops.mult_ops * t.int_mult_4x8 + ops.add_ops * t.int_add
        elif ops.scheme_kind in ("lightnn", "flightnn"):
            pj = ops.shift_ops * t.shift + ops.add_ops * t.int_add
        elif ops.scheme_kind == "binary":
            pj = ops.macs * t.xnor + ops.add_ops * t.int_add
        else:
            raise HardwareModelError(f"no energy model for scheme kind {ops.scheme_kind!r}")
        return pj * 1e-6  # pJ -> uJ

    def energy_per_mac_pj(self, ops: ConvLayerOps) -> float:
        """Average energy per multiply-accumulate in picojoules."""
        return self.layer_energy_uj(ops) * 1e6 / ops.macs
