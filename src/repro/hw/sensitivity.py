"""Sensitivity analysis of the hardware-model conclusions.

The FPGA/ASIC cost models carry calibrated constants (per-unit LUT/DSP
costs, per-op energies).  A reproduction resting on a *particular*
calibration would be fragile; this module perturbs the constants across
wide ranges and checks whether the paper's qualitative conclusions — the
throughput and energy orderings between model families — survive.

Used by ``benchmarks/bench_sensitivity.py`` and directly as a library API
for "would the conclusion flip if my multiplier cost estimate is 50% off?"
questions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from repro.errors import HardwareModelError
from repro.hw.asic.energy import AsicEnergyModel, EnergyTable65nm
from repro.hw.fpga.design import FPGAModel
from repro.hw.fpga.resources import UNIT_COSTS, UnitCost
from repro.hw.ops import ConvLayerOps

__all__ = [
    "SensitivityOutcome",
    "ROBUST_ENERGY_PAIRS",
    "energy_ordering_sensitivity",
    "throughput_ordering_sensitivity",
]


@dataclass(frozen=True)
class SensitivityOutcome:
    """Result of one ordering check across perturbed model constants.

    Attributes:
        trials: Number of perturbed configurations evaluated.
        violations: Configurations in which the expected ordering broke,
            as human-readable descriptions.
    """

    trials: int
    violations: tuple[str, ...]

    @property
    def robust(self) -> bool:
        """Whether the ordering held in every perturbed configuration."""
        return not self.violations


#: The orderings that should survive any plausible calibration.  L-2 vs
#: FP is deliberately absent: two shifts + two adds vs one narrow multiply
#: is genuinely marginal (the paper's Fig. 5 shows them adjacent too), and
#: halving the multiply-energy estimate flips it.
ROBUST_ENERGY_PAIRS: tuple[tuple[str, str], ...] = (
    ("L-1", "L-2"),
    ("L-1", "FP"),
    ("L-2", "Full"),
    ("FP", "Full"),
)


def energy_ordering_sensitivity(
    ops_by_scheme: dict[str, ConvLayerOps],
    shift_scales: tuple[float, ...] = (0.5, 1.0, 2.0),
    mult_scales: tuple[float, ...] = (0.5, 1.0, 2.0),
) -> SensitivityOutcome:
    """Perturb per-op energies and check the robust orderings.

    Each trial scales the shift energy by a factor from ``shift_scales``
    and every multiply energy by one from ``mult_scales`` (the add energy
    is the common term and stays fixed), then checks each pair in
    :data:`ROBUST_ENERGY_PAIRS` whose profiles are present.

    Args:
        ops_by_scheme: Op profiles keyed by ``L-1 | L-2 | FP | Full`` (any
            subset of at least two).
    """
    required = [k for k in ("L-1", "L-2", "FP", "Full") if k in ops_by_scheme]
    if len(required) < 2:
        raise HardwareModelError("need at least two scheme profiles to compare")
    pairs = [
        (a, b) for a, b in ROBUST_ENERGY_PAIRS
        if a in ops_by_scheme and b in ops_by_scheme
    ]
    base = EnergyTable65nm()
    violations: list[str] = []
    trials = 0
    for shift_scale, mult_scale in itertools.product(shift_scales, mult_scales):
        table = replace(
            base,
            shift=base.shift * shift_scale,
            int_mult_4x8=base.int_mult_4x8 * mult_scale,
            int_mult_8x8=base.int_mult_8x8 * mult_scale,
            fp32_mult=base.fp32_mult * mult_scale,
        )
        model = AsicEnergyModel(table)
        energies = {k: model.layer_energy_uj(ops_by_scheme[k]) for k in required}
        trials += 1
        for cheap, costly in pairs:
            if not energies[cheap] < energies[costly]:
                violations.append(
                    f"shift x{shift_scale:g}, mult x{mult_scale:g}: "
                    f"{cheap} ({energies[cheap]:.4g} uJ) >= {costly} ({energies[costly]:.4g} uJ)"
                )
    return SensitivityOutcome(trials=trials, violations=tuple(violations))


def throughput_ordering_sensitivity(
    ops_by_scheme: dict[str, ConvLayerOps],
    lut_scales: tuple[float, ...] = (0.5, 1.0, 2.0),
    dsp_scales: tuple[float, ...] = (0.5, 1.0, 2.0),
) -> SensitivityOutcome:
    """Perturb FPGA unit costs and check L-1 > L-2 and L-1 > FP throughput.

    Scales the shift-unit LUT cost and the fixed/full DSP cost per unit;
    rounding keeps every cost at >= 1 resource.
    """
    if "L-1" not in ops_by_scheme or "L-2" not in ops_by_scheme:
        raise HardwareModelError("need L-1 and L-2 profiles")
    violations: list[str] = []
    trials = 0
    original = dict(UNIT_COSTS)
    try:
        for lut_scale, dsp_scale in itertools.product(lut_scales, dsp_scales):
            shift = original["lightnn"]
            UNIT_COSTS["lightnn"] = UnitCost(
                lut=max(1, int(shift.lut * lut_scale)), ff=shift.ff,
                dsp=shift.dsp, initiation_interval=shift.initiation_interval,
            )
            UNIT_COSTS["flightnn"] = UNIT_COSTS["lightnn"]
            fixed = original["fixed"]
            UNIT_COSTS["fixed"] = UnitCost(
                lut=fixed.lut, ff=fixed.ff,
                dsp=max(1, int(fixed.dsp * dsp_scale)),
                initiation_interval=fixed.initiation_interval,
            )
            model = FPGAModel()
            thr = {k: model.map_layer(v).throughput for k, v in ops_by_scheme.items()}
            trials += 1
            if not thr["L-1"] > thr["L-2"]:
                violations.append(f"lut x{lut_scale:g}, dsp x{dsp_scale:g}: L-1 <= L-2")
            if "FP" in thr and not thr["L-1"] > thr["FP"]:
                violations.append(f"lut x{lut_scale:g}, dsp x{dsp_scale:g}: L-1 <= FP")
    finally:
        UNIT_COSTS.clear()
        UNIT_COSTS.update(original)
    return SensitivityOutcome(trials=trials, violations=tuple(violations))
