"""Hardware cost models: FPGA (Zynq ZC706) and ASIC (65 nm).

These analytical models replace the paper's Vivado HLS flow and Synopsys
DC/PrimeTime flow (see DESIGN.md substitution table).  They encode the two
mechanisms the paper's results rest on:

* On FPGA, (F)LightNN multiplies become LUT shift units while fixed/full
  precision needs DSP slices, and BRAM capacity bounds the batch size —
  reproducing the Tables 2-6 throughput/utilisation patterns.
* On ASIC, a shift costs roughly an order of magnitude less energy than a
  fixed-point multiply and two orders less than an FP32 multiply —
  reproducing the Fig. 5 energy ordering.
"""

from repro.hw.ops import (
    ConvLayerOps,
    conv_layer_ops,
    intq_measured_ops,
    network_largest_layer_ops,
)
from repro.hw.fpga import FPGA_ZC706, FPGADesignPoint, FPGAModel, FPGAResources
from repro.hw.asic import AreaTable65nm, AsicAreaModel, AsicEnergyModel, EnergyTable65nm
from repro.hw.network_cost import NetworkCostEstimate, estimate_network_cost
from repro.hw.sensitivity import (
    SensitivityOutcome,
    energy_ordering_sensitivity,
    throughput_ordering_sensitivity,
)

__all__ = [
    "ConvLayerOps",
    "conv_layer_ops",
    "intq_measured_ops",
    "network_largest_layer_ops",
    "FPGAResources",
    "FPGA_ZC706",
    "FPGAModel",
    "FPGADesignPoint",
    "EnergyTable65nm",
    "AsicEnergyModel",
    "AreaTable65nm",
    "AsicAreaModel",
    "NetworkCostEstimate",
    "estimate_network_cost",
    "SensitivityOutcome",
    "energy_ordering_sensitivity",
    "throughput_ordering_sensitivity",
]
