"""Per-layer operation accounting.

Derives, for one convolutional layer under one quantization scheme, the
primitive-operation counts a hardware mapping needs: multiply-accumulates,
and their realisation as FP32 multiplies, fixed-point multiplies, or shifts
and adds (k per weight for LightNN-k, the trained per-filter k for
FLightNN).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareModelError
from repro.models.network import QuantizedNetwork
from repro.quant.qlayers import QConv2d
from repro.quant.schemes import QuantizationScheme

__all__ = [
    "ConvLayerOps",
    "conv_layer_ops",
    "intq_measured_ops",
    "network_largest_layer_ops",
]


@dataclass(frozen=True)
class ConvLayerOps:
    """Operation and storage profile of one conv layer under one scheme.

    Attributes:
        scheme_kind: ``full | fixed | lightnn | flightnn``.
        macs: Multiply-accumulates per image.
        shift_ops: Shift operations per image (0 for full/fixed).
        add_ops: Additions per image (accumulations; plus combine-adds for
            multi-shift weights).
        mult_ops: Real multiplies per image (0 for shift schemes).
        mean_k: Average shifts per weight (0 for full/fixed).
        weight_bits: Total weight storage of the layer in bits.
        act_bits: Activation bit width (32 for full precision).
        in_elems / out_elems: Activation tensor sizes (elements per image).
        out_channels / in_channels / kernel_size: Layer geometry.
    """

    scheme_kind: str
    macs: int
    shift_ops: float
    add_ops: float
    mult_ops: float
    mean_k: float
    weight_bits: float
    act_bits: int
    in_elems: int
    out_elems: int
    out_channels: int
    in_channels: int
    kernel_size: int

    @property
    def weight_count(self) -> int:
        """Number of weights in the layer."""
        return self.out_channels * self.in_channels * self.kernel_size**2

    @property
    def cycles_per_image_factor(self) -> float:
        """Relative serial work per MAC lane: k for shift schemes, 1 else.

        The FPGA model multiplies this into the cycle count: a LightNN-2
        multiply needs two shift-unit passes where LightNN-1 needs one.
        """
        return max(self.mean_k, 1e-9) if self.scheme_kind in ("lightnn", "flightnn") else 1.0


def conv_layer_ops(layer: QConv2d, scheme: QuantizationScheme) -> ConvLayerOps:
    """Profile ``layer`` (already probed with an input) under ``scheme``."""
    if layer.last_input_hw is None:
        raise HardwareModelError(
            "conv layer has no recorded input size; run network.probe() first"
        )
    ih, iw = layer.last_input_hw
    oh, ow = layer.output_spatial(ih, iw)
    f, c, k = layer.out_channels, layer.in_channels, layer.kernel_size
    macs = oh * ow * f * c * k * k
    macs_per_filter = oh * ow * c * k * k

    filter_k = layer.filter_k().astype(float)
    weight_bits = float(layer.bits_per_weight().sum()) * layer.weight.data[0].size
    act_bits = scheme.activation.bits if scheme.quantizes_activations else 32

    if scheme.kind in ("lightnn", "flightnn"):
        shift_ops = float((filter_k * macs_per_filter).sum())
        # k-1 combine adds plus 1 accumulate add per MAC of an active filter.
        add_ops = float((np.maximum(filter_k, 1.0) * macs_per_filter).sum())
        mult_ops = 0.0
        mean_k = float(filter_k.mean()) if filter_k.size else 0.0
    elif scheme.kind == "binary":
        # XNOR-style MAC: a sign flip folded into the accumulate add.
        shift_ops = 0.0
        add_ops = float(macs)
        mult_ops = 0.0
        mean_k = 0.0
    else:
        shift_ops = 0.0
        add_ops = float(macs)
        mult_ops = float(macs)
        mean_k = 0.0

    return ConvLayerOps(
        scheme_kind=scheme.kind,
        macs=macs,
        shift_ops=shift_ops,
        add_ops=add_ops,
        mult_ops=mult_ops,
        mean_k=mean_k,
        weight_bits=weight_bits,
        act_bits=act_bits,
        in_elems=c * ih * iw,
        out_elems=f * oh * ow,
        out_channels=f,
        in_channels=c,
        kernel_size=k,
    )


def intq_measured_ops(plan_summary: dict) -> dict:
    """Measured integer op counts from an int8 plan summary.

    Where :func:`conv_layer_ops` predicts costs analytically from the
    scheme, this reads what the compiled integer program
    (:mod:`repro.infer.intq`) actually executes: per weighted layer, the
    shift/add work of the packed shift-code weights, the integer multiplies
    of the chosen host kernel, and the per-output requantization
    multiplies.  Pass the dict returned by
    :meth:`~repro.infer.plan.ExecutionPlan.summary` (also served under
    ``"plan"`` in ``/metrics``).

    Returns:
        ``{"layers": [...], "totals_per_image": {...}, "mean_planes": ...}``
        with per-image counts.

    Raises:
        HardwareModelError: If the summary does not come from an
            integer-only plan.
    """
    intq = plan_summary.get("intq") if isinstance(plan_summary, dict) else None
    if not intq or not intq.get("enabled"):
        raise HardwareModelError(
            "plan summary has no integer-only program; compile with "
            "PlanConfig(dtype='int8') to measure integer op counts"
        )
    layers = intq.get("layers", [])
    totals = dict(intq.get("totals_per_image", {}))
    planes = [layer["planes"] for layer in layers if layer.get("planes")]
    return {
        "layers": layers,
        "totals_per_image": totals,
        "mean_planes": float(np.mean(planes)) if planes else 0.0,
    }


def network_largest_layer_ops(network: QuantizedNetwork) -> ConvLayerOps:
    """Ops profile of the network's largest conv layer (the paper's target).

    The paper implements each network's largest convolutional layer on the
    FPGA/ASIC since convolutions dominate CNN compute time (Sec. 5.2).
    """
    layer = network.largest_conv_layer()
    return conv_layer_ops(layer, network.scheme)
