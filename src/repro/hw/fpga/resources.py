"""FPGA resource budgets and per-unit costs.

The budget matches the paper's Xilinx Zynq ZC706 evaluation board (Table 6
"Available" row).  The per-unit costs are calibrated so the model's Table-6
utilisation pattern matches the paper's measurements:

* An FP32 MAC unit needs ~5 DSP slices (3 for the multiplier, 2 for the
  adder) plus substantial LUT/FF, and achieves an initiation interval of 5
  in the paper's one-stage-per-neuron HLS schedule.
* A 4x8 fixed-point MAC packs into 1 DSP slice with II=2 (the multiply path
  shares BRAM ports with the activation fetch).
* A (F)LightNN shift-add unit is pure fabric: LUT barrel shifter + adder,
  zero DSP, one shift per cycle.

Utilities here also convert storage requirements to BRAM18K block counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HardwareModelError

__all__ = ["FPGAResources", "UnitCost", "FPGA_ZC706", "UNIT_COSTS", "OVERHEAD", "bram_blocks"]

BRAM18K_BITS = 18 * 1024


@dataclass(frozen=True)
class FPGAResources:
    """Resource vector: LUTs, flip-flops, DSP slices, BRAM18K blocks."""

    lut: int
    ff: int
    dsp: int
    bram: int

    def __post_init__(self) -> None:
        if min(self.lut, self.ff, self.dsp, self.bram) < 0:
            raise HardwareModelError("resource counts must be non-negative")

    def fits_in(self, budget: "FPGAResources") -> bool:
        """Whether this usage vector fits within ``budget``."""
        return (
            self.lut <= budget.lut
            and self.ff <= budget.ff
            and self.dsp <= budget.dsp
            and self.bram <= budget.bram
        )

    def utilization(self, budget: "FPGAResources") -> dict[str, float]:
        """Fractional utilisation per resource kind."""
        return {
            "lut": self.lut / budget.lut,
            "ff": self.ff / budget.ff,
            "dsp": self.dsp / budget.dsp,
            "bram": self.bram / budget.bram,
        }


#: The paper's evaluation board (Table 6, "Available" row).
FPGA_ZC706 = FPGAResources(lut=218_600, ff=437_200, dsp=900, bram=1_090)


@dataclass(frozen=True)
class UnitCost:
    """Cost and timing of one parallel compute unit.

    Attributes:
        lut / ff / dsp: Fabric cost per unit.
        initiation_interval: Cycles between successive operations on one
            unit (1 = fully pipelined).
    """

    lut: int
    ff: int
    dsp: int
    initiation_interval: float


#: Per-scheme compute-unit costs (see module docstring for calibration).
UNIT_COSTS: dict[str, UnitCost] = {
    "full": UnitCost(lut=800, ff=450, dsp=5, initiation_interval=5.0),
    "fixed": UnitCost(lut=180, ff=80, dsp=1, initiation_interval=2.0),
    "lightnn": UnitCost(lut=220, ff=110, dsp=0, initiation_interval=1.0),
    "flightnn": UnitCost(lut=220, ff=110, dsp=0, initiation_interval=1.0),
    # XNOR + accumulate (BinaryConnect baseline): the cheapest unit of all.
    "binary": UnitCost(lut=90, ff=50, dsp=0, initiation_interval=1.0),
}

#: Fixed control/infrastructure overhead of any accelerator instance
#: (AXI interfaces, FSM, accumulator tree root), independent of unroll.
OVERHEAD = FPGAResources(lut=15_000, ff=8_000, dsp=4, bram=32)


def bram_blocks(bits: float) -> int:
    """Number of BRAM18K blocks needed to store ``bits``."""
    if bits < 0:
        raise HardwareModelError(f"negative storage request: {bits}")
    return int(math.ceil(bits / BRAM18K_BITS))
