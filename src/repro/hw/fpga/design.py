"""FPGA accelerator design-point search and throughput model.

Models the paper's batched largest-conv-layer accelerator: ``B`` batch
lanes, each processing one image with ``U`` parallel compute units (fixed
by the shared HLS pragmas), at 100 MHz.  The search maximises throughput
subject to the ZC706 budget:

* DSP / LUT / FF bind the total unit count ``B * U``.
* BRAM holds the layer weights (at the scheme's encoding) once, plus an
  input + output activation buffer per lane; this bounds ``B`` — the
  "maximum batch size without running out of FPGA resources" of Sec. 5.2.
* When the FP32 weights do not fit on chip at all, the model streams them
  from DDR, amortised over the batch, and applies the DDR bandwidth bound.

Throughput is ``B * U * f / (macs * II * k)`` images/s, where ``II`` is the
scheme's initiation interval and ``k`` the mean shifts per weight (the
serialisation factor of multi-shift weights on a shift unit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.ops import ConvLayerOps
from repro.hw.fpga.resources import (
    FPGA_ZC706,
    OVERHEAD,
    UNIT_COSTS,
    FPGAResources,
    UnitCost,
    bram_blocks,
)

__all__ = ["FPGADesignPoint", "FPGAModel"]


@dataclass(frozen=True)
class FPGADesignPoint:
    """One mapped accelerator instance.

    Attributes:
        batch_size: Parallel image lanes ``B``.
        units_per_lane: Compute units per lane ``U``.
        throughput: Sustained images/s.
        usage: Resource usage vector as reported in Table 6.
        weights_on_chip: Whether the layer weights fit in BRAM.
        bound_by: Names of the binding resources (utilisation >= 90%).
    """

    batch_size: int
    units_per_lane: int
    throughput: float
    usage: FPGAResources
    weights_on_chip: bool
    bound_by: tuple[str, ...]

    @property
    def total_units(self) -> int:
        """Total parallel compute units ``B * U``."""
        return self.batch_size * self.units_per_lane


class FPGAModel:
    """Analytical ZC706 mapper for one conv layer under one scheme.

    Args:
        budget: Device resources (defaults to the ZC706).
        frequency_hz: Clock (the paper's design runs at 100 MHz).
        units_per_lane: Unroll factor from the shared HLS pragma — the
            paper applies identical pragmas to all schemes, so this is a
            constant of the comparison, not a per-scheme tunable.
        ddr_bandwidth: Off-chip bytes/s for weight streaming (ZC706 DDR3).
        double_buffer: Allocate two activation buffers per lane so compute
            overlaps data movement.
    """

    def __init__(
        self,
        budget: FPGAResources = FPGA_ZC706,
        frequency_hz: float = 100e6,
        units_per_lane: int = 8,
        ddr_bandwidth: float = 6.4e9,
        double_buffer: bool = False,
    ) -> None:
        if units_per_lane < 1:
            raise HardwareModelError("units_per_lane must be >= 1")
        if frequency_hz <= 0 or ddr_bandwidth <= 0:
            raise HardwareModelError("frequency and bandwidth must be positive")
        self.budget = budget
        self.frequency_hz = frequency_hz
        self.units_per_lane = units_per_lane
        self.ddr_bandwidth = ddr_bandwidth
        self.double_buffer = double_buffer

    # -- mapping -------------------------------------------------------------

    def map_layer(self, ops: ConvLayerOps) -> FPGADesignPoint:
        """Find the throughput-maximal design point for ``ops``."""
        cost = self._unit_cost(ops)
        act_bits_per_lane = (ops.in_elems + ops.out_elems) * ops.act_bits
        if self.double_buffer:
            act_bits_per_lane *= 2
        act_brams = max(1, bram_blocks(act_bits_per_lane))
        weight_brams = bram_blocks(ops.weight_bits)

        bram_free = self.budget.bram - OVERHEAD.bram
        weights_on_chip = weight_brams + act_brams <= bram_free
        if not weights_on_chip:
            weight_brams = 0  # streamed from DDR instead

        max_lanes = (bram_free - weight_brams) // act_brams
        if max_lanes < 1:
            raise HardwareModelError(
                "activation buffers for a single lane exceed the BRAM budget"
            )

        unit_limit = self._compute_unit_limit(cost)
        lanes = min(max_lanes, max(1, unit_limit // self.units_per_lane))
        total_units = lanes * self.units_per_lane
        if total_units > unit_limit:
            total_units = unit_limit
            lanes = max(1, total_units // self.units_per_lane)
            total_units = lanes * self.units_per_lane

        cycles_per_image = ops.macs * cost.initiation_interval * ops.cycles_per_image_factor
        throughput = total_units * self.frequency_hz / cycles_per_image

        if not weights_on_chip:
            # Weights stream once per batch; the whole batch must wait for them.
            weight_bytes = ops.weight_bits / 8.0
            stream_throughput = self.ddr_bandwidth * lanes / weight_bytes
            throughput = min(throughput, stream_throughput)

        usage = FPGAResources(
            lut=OVERHEAD.lut + total_units * cost.lut,
            ff=OVERHEAD.ff + total_units * cost.ff,
            dsp=OVERHEAD.dsp + total_units * cost.dsp,
            bram=OVERHEAD.bram + weight_brams + lanes * act_brams,
        )
        if not usage.fits_in(self.budget):
            raise HardwareModelError(f"mapped design exceeds budget: {usage}")
        bound = tuple(
            name for name, frac in usage.utilization(self.budget).items() if frac >= 0.9
        )
        return FPGADesignPoint(
            batch_size=lanes,
            units_per_lane=self.units_per_lane,
            throughput=throughput,
            usage=usage,
            weights_on_chip=weights_on_chip,
            bound_by=bound,
        )

    # -- internals -------------------------------------------------------------

    def _unit_cost(self, ops: ConvLayerOps) -> UnitCost:
        try:
            return UNIT_COSTS[ops.scheme_kind]
        except KeyError:
            raise HardwareModelError(f"no FPGA unit cost for scheme kind {ops.scheme_kind!r}")

    def _compute_unit_limit(self, cost: UnitCost) -> int:
        """Largest total unit count the LUT/FF/DSP budgets allow."""
        limits = [
            (self.budget.lut - OVERHEAD.lut) // cost.lut if cost.lut else None,
            (self.budget.ff - OVERHEAD.ff) // cost.ff if cost.ff else None,
            (self.budget.dsp - OVERHEAD.dsp) // cost.dsp if cost.dsp else None,
        ]
        finite = [l for l in limits if l is not None]
        limit = min(finite)
        if limit < 1:
            raise HardwareModelError("a single compute unit exceeds the fabric budget")
        return int(limit)
