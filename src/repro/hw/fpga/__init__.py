"""Analytical FPGA (Zynq ZC706) accelerator model."""

from repro.hw.fpga.resources import (
    BRAM18K_BITS,
    FPGA_ZC706,
    OVERHEAD,
    UNIT_COSTS,
    FPGAResources,
    UnitCost,
    bram_blocks,
)
from repro.hw.fpga.design import FPGADesignPoint, FPGAModel
from repro.hw.fpga.scheduler import HlsDirectives, LoopNestSchedule, schedule_conv_layer

__all__ = [
    "FPGAResources",
    "UnitCost",
    "FPGA_ZC706",
    "UNIT_COSTS",
    "OVERHEAD",
    "BRAM18K_BITS",
    "bram_blocks",
    "FPGADesignPoint",
    "FPGAModel",
    "HlsDirectives",
    "LoopNestSchedule",
    "schedule_conv_layer",
]
