"""HLS-style loop-nest cycle model for one convolutional layer.

The coarse model in :mod:`repro.hw.fpga.design` treats a layer as
``macs * II / units`` cycles.  This module refines it the way Vivado HLS
reports do: the convolution is a perfectly nested loop

    for f in filters:            # output channel
      for (oy, ox) in output:    # spatial position
        for c in channels:       # reduction ----+
          for (ky, kx) in kernel:#               | unrolled by `unroll`
            acc += w * x         # <- pipelined with initiation interval II

with an explicit pipeline depth (fill/drain) and an unroll factor on the
reduction.  Shift-based weights multiply the reduction trip count by the
filter's shift count ``k`` (each power-of-two term is one pass through the
shift unit), matching the Fig. 3 decomposition.

The tests assert this refined model agrees with the coarse one to within
the pipeline-fill overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.ops import ConvLayerOps

__all__ = ["HlsDirectives", "LoopNestSchedule", "schedule_conv_layer"]


@dataclass(frozen=True)
class HlsDirectives:
    """Pragma-equivalent knobs of the HLS schedule.

    Args:
        unroll: Parallel MAC units applied to the reduction loop
            (``#pragma HLS unroll factor=...``).
        initiation_interval: Cycles between loop iterations entering the
            pipeline (``#pragma HLS pipeline II=...``).
        pipeline_depth: Latency of one MAC through the pipeline (fill/drain
            overhead per innermost loop execution).
    """

    unroll: int = 8
    initiation_interval: float = 1.0
    pipeline_depth: int = 4

    def __post_init__(self) -> None:
        if self.unroll < 1:
            raise HardwareModelError(f"unroll must be >= 1, got {self.unroll}")
        if self.initiation_interval < 1:
            raise HardwareModelError(
                f"initiation_interval must be >= 1, got {self.initiation_interval}"
            )
        if self.pipeline_depth < 1:
            raise HardwareModelError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )


@dataclass(frozen=True)
class LoopNestSchedule:
    """Cycle breakdown of one layer execution.

    Attributes:
        reduction_trips: Innermost-loop iterations per output element
            (after unrolling, including the shift factor ``k``).
        cycles_per_output: Cycles to produce one output element.
        output_elements: Number of output elements.
        total_cycles: Layer cycles for one image.
    """

    reduction_trips: int
    cycles_per_output: float
    output_elements: int
    total_cycles: float

    def latency_s(self, frequency_hz: float) -> float:
        """Wall-clock seconds at ``frequency_hz``."""
        if frequency_hz <= 0:
            raise HardwareModelError("frequency must be positive")
        return self.total_cycles / frequency_hz


def schedule_conv_layer(ops: ConvLayerOps, directives: HlsDirectives) -> LoopNestSchedule:
    """Compute the loop-nest schedule of ``ops`` under ``directives``."""
    reduction = ops.in_channels * ops.kernel_size**2
    # Shift schemes pass each term through the unit: k serial passes.
    serial_factor = ops.cycles_per_image_factor
    effective_reduction = reduction * serial_factor
    trips = math.ceil(effective_reduction / directives.unroll)
    cycles_per_output = (
        trips * directives.initiation_interval + directives.pipeline_depth
    )
    output_elements = ops.out_elems
    total = cycles_per_output * output_elements
    return LoopNestSchedule(
        reduction_trips=trips,
        cycles_per_output=cycles_per_output,
        output_elements=output_elements,
        total_cycles=total,
    )
