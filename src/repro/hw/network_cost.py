"""Whole-network hardware cost estimates.

The paper's measurements target each network's largest convolutional layer
(convolutions take over 90% of CNN compute time, Sec. 5.2).  For design
exploration it is also useful to aggregate over *all* quantized layers;
this module sums per-layer op profiles into a network-level estimate of
FPGA latency (layer-serial execution on one accelerator instance) and ASIC
computational energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.asic import AsicEnergyModel
from repro.hw.fpga import FPGAModel
from repro.hw.ops import ConvLayerOps, conv_layer_ops
from repro.models.network import QuantizedNetwork

__all__ = ["NetworkCostEstimate", "estimate_network_cost"]


@dataclass(frozen=True)
class NetworkCostEstimate:
    """Aggregated hardware cost of every convolutional layer.

    Attributes:
        layer_ops: Per-layer operation profiles, in network order.
        total_macs: MACs per image over all conv layers.
        total_energy_uj: ASIC computational energy per image (uJ).
        latency_s: Layer-serial FPGA latency per image batch-1 (seconds).
        throughput: Images/s when each layer runs on its own mapped
            accelerator at the modelled batch (pipeline across layers).
        largest_layer_fraction: Share of MACs in the largest layer — the
            paper's justification for measuring only that layer.
    """

    layer_ops: tuple[ConvLayerOps, ...]
    total_macs: int
    total_energy_uj: float
    latency_s: float
    throughput: float
    largest_layer_fraction: float


def estimate_network_cost(
    network: QuantizedNetwork,
    fpga: FPGAModel | None = None,
    asic: AsicEnergyModel | None = None,
) -> NetworkCostEstimate:
    """Estimate whole-network FPGA latency and ASIC energy.

    The FPGA estimate maps every conv layer independently (same model as
    the per-layer benchmark); layer-serial latency sums each layer's
    single-image time, while the pipelined throughput is limited by the
    slowest layer.
    """
    fpga = fpga or FPGAModel()
    asic = asic or AsicEnergyModel()
    convs = network.conv_layers()
    if not convs:
        raise HardwareModelError("network has no quantized conv layers")
    if any(c.last_input_hw is None for c in convs):
        network.probe()

    profiles = tuple(conv_layer_ops(layer, network.scheme) for layer in convs)
    total_macs = sum(p.macs for p in profiles)
    total_energy = sum(asic.layer_energy_uj(p) for p in profiles)

    latency = 0.0
    slowest = 0.0
    for profile in profiles:
        point = fpga.map_layer(profile)
        per_image = 1.0 / point.throughput
        latency += per_image * point.batch_size  # single accelerator, batch-serial
        slowest = max(slowest, per_image)
    throughput = 1.0 / slowest

    largest = max(p.macs for p in profiles)
    return NetworkCostEstimate(
        layer_ops=profiles,
        total_macs=total_macs,
        total_energy_uj=total_energy,
        latency_s=latency,
        throughput=throughput,
        largest_layer_fraction=largest / total_macs,
    )
