"""Layer-by-layer model summaries.

Produces the familiar "summary table" view of a quantized network: one row
per quantized layer with geometry, parameter count, MACs, per-filter shift
statistics and storage — backed by a probe forward pass so spatial sizes
are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.models.network import QuantizedNetwork
from repro.quant.qlayers import QConv2d, QLinear

__all__ = ["LayerSummary", "summarize_network", "render_summary"]


@dataclass(frozen=True)
class LayerSummary:
    """One row of the model summary."""

    index: int
    kind: str                 # "conv" or "linear"
    in_features: int
    out_features: int
    kernel_size: int | None
    output_hw: tuple[int, int] | None
    params: int
    macs: int
    mean_k: float
    storage_bits: float


def summarize_network(network: QuantizedNetwork) -> list[LayerSummary]:
    """Summarise every quantized layer (runs a probe pass if needed)."""
    convs = network.conv_layers()
    if any(c.last_input_hw is None for c in convs):
        network.probe()
    rows: list[LayerSummary] = []
    index = 0
    for conv in convs:
        oh, ow = conv.output_spatial(*conv.last_input_hw)
        macs = oh * ow * conv.out_channels * conv.in_channels * conv.kernel_size**2
        weights_per_filter = conv.weight.data[0].size
        rows.append(
            LayerSummary(
                index=index,
                kind="conv",
                in_features=conv.in_channels,
                out_features=conv.out_channels,
                kernel_size=conv.kernel_size,
                output_hw=(oh, ow),
                params=conv.weight.size,
                macs=macs,
                mean_k=float(conv.filter_k().mean()),
                storage_bits=float(conv.bits_per_weight().sum()) * weights_per_filter,
            )
        )
        index += 1
    for linear in network.linear_layers():
        weights_per_neuron = linear.weight.data[0].size
        rows.append(
            LayerSummary(
                index=index,
                kind="linear",
                in_features=linear.in_features,
                out_features=linear.out_features,
                kernel_size=None,
                output_hw=None,
                params=linear.weight.size + (linear.bias.size if linear.bias else 0),
                macs=linear.in_features * linear.out_features,
                mean_k=float(linear.filter_k().mean()),
                storage_bits=float(linear.bits_per_weight().sum()) * weights_per_neuron,
            )
        )
        index += 1
    return rows


def render_summary(network: QuantizedNetwork) -> str:
    """Plain-text summary table with a totals row."""
    rows = summarize_network(network)
    cells = []
    for r in rows:
        shape = f"{r.in_features}->{r.out_features}"
        if r.kernel_size is not None:
            shape += f" k{r.kernel_size}"
        out = f"{r.output_hw[0]}x{r.output_hw[1]}" if r.output_hw else "-"
        cells.append([
            r.index, r.kind, shape, out, f"{r.params:,}", f"{r.macs:,}",
            f"{r.mean_k:.2f}", f"{r.storage_bits / 8 / 1024:.2f}",
        ])
    total_params = sum(r.params for r in rows)
    total_macs = sum(r.macs for r in rows)
    total_kb = sum(r.storage_bits for r in rows) / 8 / 1024
    cells.append(["", "total", "", "", f"{total_params:,}", f"{total_macs:,}", "", f"{total_kb:.2f}"])
    return format_table(
        ["#", "layer", "shape", "out", "params", "MACs", "mean k", "KB"],
        cells,
        title=f"{network!r}",
    )
