"""Table-1 network configurations.

The paper evaluates eight networks (Table 1); this module records their
structure, depth, width, dataset and nominal parameter counts, and defines
the scaled-down profile used for CPU-tractable experiment runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["NetworkConfig", "NETWORK_CONFIGS", "scaled_config"]


@dataclass(frozen=True)
class NetworkConfig:
    """One row of the paper's Table 1.

    Attributes:
        network_id: Paper network ID (1-8).
        structure: ``"vgg"`` or ``"resnet"``.
        depth: Number of convolutional layers (paper's convention).
        width: Filter count of the widest layer.
        dataset: Dataset key (``cifar10 | svhn | cifar100 | imagenet``).
        nominal_params: Paper-reported parameter count (for sanity checks).
    """

    network_id: int
    structure: str
    depth: int
    width: int
    dataset: str
    nominal_params: float

    def __post_init__(self) -> None:
        if self.structure not in ("vgg", "resnet"):
            raise ConfigurationError(f"unknown structure {self.structure!r}")
        if self.depth < 2 or self.width < 4:
            raise ConfigurationError("depth must be >= 2 and width >= 4")


NETWORK_CONFIGS: dict[int, NetworkConfig] = {
    1: NetworkConfig(1, "vgg", 7, 64, "cifar10", 0.08e6),
    2: NetworkConfig(2, "resnet", 18, 128, "cifar10", 0.7e6),
    3: NetworkConfig(3, "vgg", 7, 512, "cifar10", 4.6e6),
    4: NetworkConfig(4, "vgg", 4, 64, "svhn", 0.03e6),
    5: NetworkConfig(5, "vgg", 4, 128, "svhn", 0.1e6),
    6: NetworkConfig(6, "resnet", 18, 128, "cifar100", 0.7e6),
    7: NetworkConfig(7, "resnet", 18, 256, "cifar100", 2.8e6),
    8: NetworkConfig(8, "resnet", 10, 256, "imagenet", 1.8e6),
}


def scaled_config(config: NetworkConfig, width_scale: float) -> NetworkConfig:
    """Return a copy with the width scaled (rounded to a multiple of 4).

    Used both by the tractable experiment profile (``width_scale < 1``) and
    the Fig. 6 width sweep.
    """
    if width_scale <= 0:
        raise ConfigurationError(f"width_scale must be positive, got {width_scale}")
    new_width = max(8, int(round(config.width * width_scale / 4)) * 4)
    return replace(config, width=new_width)
