"""Quantized network wrapper with hardware-analysis hooks.

:class:`QuantizedNetwork` wraps a feature extractor + classifier built from
quantized layers and exposes the bookkeeping the experiments need: storage
under the scheme's encoding, per-filter shift counts, and access to the
largest convolutional layer (the layer the paper implements on FPGA/ASIC).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.models.configs import NetworkConfig
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad
from repro.quant.qlayers import QConv2d, QLinear
from repro.quant.schemes import QuantizationScheme

__all__ = ["QuantizedNetwork"]


class QuantizedNetwork(Module):
    """A feature/classifier pair built under one quantization scheme.

    Args:
        features: Convolutional trunk; consumes NCHW, produces NCHW or (N, D).
        classifier: Head mapping trunk output to logits.
        scheme: The quantization scheme used to build the layers.
        config: The Table-1 configuration this instance realises.
        image_size: Input spatial size the network was built for.
        in_channels: Input channel count.
    """

    def __init__(
        self,
        features: Module,
        classifier: Module,
        scheme: QuantizationScheme,
        config: NetworkConfig,
        image_size: int,
        in_channels: int = 3,
    ) -> None:
        super().__init__()
        self.features = features
        self.classifier = classifier
        self.scheme = scheme
        self.config = config
        self.image_size = image_size
        self.in_channels = in_channels

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))

    def compile(self, batch_size: int = 32, on_stale: str = "refresh", config=None):
        """Compile this network into an :class:`~repro.infer.InferenceEngine`.

        The engine quantizes each layer's weights once, folds batch-norm
        into the convolutions and serves grad-free batched prediction; see
        :mod:`repro.infer`.  ``config`` forwards a
        :class:`~repro.infer.PlanConfig` controlling the sparsity passes
        (dead-filter pruning, shift-plane kernels, autotuning).
        """
        # Imported here to avoid a models <-> infer import cycle.
        from repro.infer.engine import InferenceEngine

        return InferenceEngine(self, batch_size=batch_size, on_stale=on_stale, config=config)

    # -- layer access ------------------------------------------------------------

    def conv_layers(self) -> list[QConv2d]:
        """All quantized convolutional layers, in module order."""
        return [m for m in self.modules() if isinstance(m, QConv2d)]

    def linear_layers(self) -> list[QLinear]:
        """All quantized linear layers."""
        return [m for m in self.modules() if isinstance(m, QLinear)]

    def probe(self, batch_size: int = 1) -> Tensor:
        """Run one dummy forward pass so layers record their input sizes."""
        x = Tensor(np.zeros((batch_size, self.in_channels, self.image_size, self.image_size)))
        mode = self.training
        self.eval()
        with no_grad():
            out = self.forward(x)
        self.train(mode)
        return out

    def largest_conv_layer(self) -> QConv2d:
        """The widest convolution — the paper's FPGA/ASIC target layer.

        Table 1 defines a network's "width" as the filter count of its
        largest layer, so "largest" ranks by output channels, breaking ties
        by multiply-accumulate count.  Runs a probe forward pass if input
        sizes have not been recorded yet.
        """
        convs = self.conv_layers()
        if not convs:
            raise ConfigurationError("network has no quantized conv layers")
        if any(c.last_input_hw is None for c in convs):
            self.probe()
        return max(convs, key=lambda c: (c.out_channels, _conv_macs(c)))

    # -- cost reporting ------------------------------------------------------------

    def storage_mb(self, include_overhead: bool = False) -> float:
        """Model storage in MB under the scheme's weight encoding.

        Conv and linear weights are counted at their quantized bit widths
        (per-filter for FLightNN).  With ``include_overhead`` the 32-bit
        biases and batch-norm affines are added; the paper's storage column
        tracks the weight payload, so the default omits them.
        """
        bits = 0.0
        for layer in self.conv_layers() + self.linear_layers():
            per_filter_bits = layer.bits_per_weight()
            weights_per_filter = layer.weight.data[0].size
            bits += float(per_filter_bits.sum()) * weights_per_filter
        if include_overhead:
            quant_weight_ids = {
                id(layer.weight) for layer in self.conv_layers() + self.linear_layers()
            }
            for p in self.parameters():
                if id(p) not in quant_weight_ids:
                    bits += 32.0 * p.size
        return bits / 8.0 / 1e6

    def filter_k_per_layer(self) -> list[np.ndarray]:
        """Per-layer arrays of per-filter shift counts."""
        return [layer.filter_k() for layer in self.conv_layers()]

    def mean_filter_k(self) -> float:
        """Average shift count across every convolutional filter.

        2.0 for LightNN-2, 1.0 for LightNN-1, in between for a trained
        FLightNN; 0.0 for non-shift schemes.
        """
        ks = np.concatenate(self.filter_k_per_layer())
        return float(ks.mean()) if ks.size else 0.0

    def __repr__(self) -> str:
        return (
            f"QuantizedNetwork(id={self.config.network_id}, {self.config.structure}-"
            f"{self.config.depth}, width={self.config.width}, scheme={self.scheme.name})"
        )


def _conv_macs(conv: QConv2d) -> int:
    """Multiply-accumulates of one conv layer given its recorded input size."""
    if conv.last_input_hw is None:
        raise ConfigurationError("conv layer has no recorded input size; call probe()")
    oh, ow = conv.output_spatial(*conv.last_input_hw)
    return oh * ow * conv.out_channels * conv.in_channels * conv.kernel_size**2
