"""ResNet-style networks with skip connections (Table-1 networks 2, 6, 7, 8).

Basic residual blocks (two 3x3 convolutions) in three stages; the stage
widths ramp to the Table-1 ``width`` and the block counts follow the
paper's depth convention (depth = conv layers + final linear layer, so
depth 18 -> 8 basic blocks, depth 10 -> 4).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.models.configs import NetworkConfig
from repro.models.network import QuantizedNetwork
from repro.nn import functional as F
from repro.nn.layers import BatchNorm2d, GlobalAvgPool2d, Identity, LeakyReLU, Sequential
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.quant.activations import QuantizedActivation
from repro.quant.qlayers import QConv2d, QLinear
from repro.quant.schemes import QuantizationScheme
from repro.utils.rng import as_generator

__all__ = ["BasicBlock", "build_resnet", "resnet_stage_plan"]


class BasicBlock(Module):
    """Two-convolution residual block with optional projection shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        scheme: QuantizationScheme,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.conv1 = QConv2d(
            in_channels, out_channels, 3, stride=stride, padding=1,
            strategy=scheme.make_strategy(), rng=rng,
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = QConv2d(
            out_channels, out_channels, 3, padding=1, strategy=scheme.make_strategy(), rng=rng
        )
        self.bn2 = BatchNorm2d(out_channels)
        self.act = LeakyReLU()
        enabled = scheme.quantizes_activations
        self.act_quant1 = QuantizedActivation(scheme.activation, enabled=enabled)
        self.act_quant2 = QuantizedActivation(scheme.activation, enabled=enabled)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                QConv2d(
                    in_channels, out_channels, 1, stride=stride,
                    strategy=scheme.make_strategy(), rng=rng,
                ),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.act_quant1(F.leaky_relu(self.bn1(self.conv1(x))))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.act_quant2(F.leaky_relu(out))


def resnet_stage_plan(depth: int, width: int) -> list[tuple[int, int, int]]:
    """(blocks, channels, first-stride) per stage for a given depth/width.

    Depth counts conv layers plus the final linear layer as in the paper's
    Table 1: ``depth = 2 * total_blocks + stem + linear``.
    """
    total_blocks = (depth - 2) // 2
    if total_blocks < 1:
        raise ConfigurationError(f"ResNet depth {depth} too shallow")
    base, extra = divmod(total_blocks, 3)
    blocks = [base + (1 if s < extra else 0) for s in range(3)]
    blocks = [b for b in blocks]  # stage order: early stages get the extras
    channels = [max(4, width // 4), max(4, width // 2), width]
    strides = [1, 2, 2]
    return [
        (b, c, s) for b, c, s in zip(blocks, channels, strides) if b > 0
    ]


def build_resnet(
    config: NetworkConfig,
    scheme: QuantizationScheme,
    num_classes: int,
    image_size: int,
    in_channels: int = 3,
    rng: int | np.random.Generator | None = None,
) -> QuantizedNetwork:
    """Build a quantized ResNet per the Table-1 configuration."""
    rng = as_generator(rng)
    stem_channels = max(4, config.width // 4)
    quantize_acts = scheme.quantizes_activations
    layers: list[Module] = [
        QuantizedActivation(scheme.activation, enabled=quantize_acts),
        QConv2d(in_channels, stem_channels, 3, padding=1, strategy=scheme.make_strategy(), rng=rng),
        BatchNorm2d(stem_channels),
        LeakyReLU(),
        QuantizedActivation(scheme.activation, enabled=quantize_acts),
    ]
    current = stem_channels
    spatial = image_size
    for blocks, channels, stride in resnet_stage_plan(config.depth, config.width):
        for b in range(blocks):
            block_stride = stride if (b == 0 and spatial >= 4) else 1
            layers.append(BasicBlock(current, channels, block_stride, scheme, rng))
            spatial = spatial // block_stride
            current = channels
    layers.append(GlobalAvgPool2d())
    features = Sequential(*layers)
    classifier = QLinear(current, num_classes, strategy=scheme.make_strategy(), rng=rng)
    return QuantizedNetwork(features, classifier, scheme, config, image_size, in_channels)
