"""Network factory: Table-1 ID + scheme -> quantized network."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.models.configs import NETWORK_CONFIGS, NetworkConfig, scaled_config
from repro.models.network import QuantizedNetwork
from repro.models.resnet import build_resnet
from repro.models.vgg import build_vgg
from repro.quant.schemes import QuantizationScheme

__all__ = ["build_network", "build_from_config"]


def build_from_config(
    config: NetworkConfig,
    scheme: QuantizationScheme,
    num_classes: int,
    image_size: int,
    in_channels: int = 3,
    rng: int | np.random.Generator | None = None,
) -> QuantizedNetwork:
    """Build a network from an explicit :class:`NetworkConfig`."""
    builder = build_vgg if config.structure == "vgg" else build_resnet
    return builder(config, scheme, num_classes, image_size, in_channels, rng=rng)


def build_network(
    network_id: int,
    scheme: QuantizationScheme,
    num_classes: int,
    image_size: int,
    width_scale: float = 1.0,
    in_channels: int = 3,
    rng: int | np.random.Generator | None = None,
) -> QuantizedNetwork:
    """Build one of the paper's eight networks under a quantization scheme.

    Args:
        network_id: Table-1 ID (1-8).
        scheme: Weight/activation quantization recipe.
        num_classes: Output classes (taken from the dataset in experiments).
        image_size: Input spatial size.
        width_scale: Multiplies all channel counts; < 1 gives the tractable
            profile, and the Fig. 6 sweep varies it.
        in_channels: Input channels.
        rng: Seed or generator for weight initialisation.
    """
    if network_id not in NETWORK_CONFIGS:
        raise ConfigurationError(
            f"unknown network id {network_id}; valid ids: {sorted(NETWORK_CONFIGS)}"
        )
    config = NETWORK_CONFIGS[network_id]
    if width_scale != 1.0:
        config = scaled_config(config, width_scale)
    return build_from_config(config, scheme, num_classes, image_size, in_channels, rng=rng)
