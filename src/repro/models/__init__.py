"""Model zoo: the paper's Table-1 networks under any quantization scheme."""

from repro.models.configs import NETWORK_CONFIGS, NetworkConfig, scaled_config
from repro.models.network import QuantizedNetwork
from repro.models.registry import build_from_config, build_network
from repro.models.resnet import BasicBlock, build_resnet, resnet_stage_plan
from repro.models.vgg import build_vgg, vgg_channel_plan
from repro.models.summary import LayerSummary, render_summary, summarize_network

__all__ = [
    "NetworkConfig",
    "NETWORK_CONFIGS",
    "scaled_config",
    "QuantizedNetwork",
    "build_network",
    "build_from_config",
    "build_vgg",
    "vgg_channel_plan",
    "build_resnet",
    "resnet_stage_plan",
    "BasicBlock",
    "LayerSummary",
    "summarize_network",
    "render_summary",
]
