"""VGG-style stacked-convolution networks (Table-1 networks 1, 3, 4, 5).

Every convolution is followed by batch-norm and Leaky ReLU (paper Sec. 5.1),
optionally a max-pool between channel groups, and — for quantized schemes —
an 8-bit activation quantizer.  The head is global-average-pool + one
quantized linear layer.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.models.configs import NetworkConfig
from repro.models.network import QuantizedNetwork
from repro.nn.layers import BatchNorm2d, GlobalAvgPool2d, LeakyReLU, MaxPool2d, Sequential
from repro.quant.activations import QuantizedActivation
from repro.quant.qlayers import QConv2d, QLinear
from repro.quant.schemes import QuantizationScheme
from repro.utils.rng import as_generator

__all__ = ["build_vgg", "vgg_channel_plan"]


def vgg_channel_plan(depth: int, width: int) -> list[tuple[int, bool]]:
    """Per-conv (channels, pool-after) plan for a VGG of given depth/width.

    Channels ramp up in three groups (width/4, width/2, width) with a
    max-pool after each of the first two groups and after the last conv,
    mirroring compact CIFAR VGGs.
    """
    if depth < 2:
        raise ConfigurationError(f"VGG depth must be >= 2, got {depth}")
    if depth <= 5:
        # Shallow VGGs (networks 4 and 5) double channels every layer up to
        # the target width, one pool per layer; this matches the Table-1
        # parameter counts (0.03M / 0.1M).
        return [
            (max(4, width >> (depth - 1 - i)), True)
            for i in range(depth)
        ]
    group_channels = [max(4, width // 4), max(4, width // 2), width]
    base, extra = divmod(depth, 3)
    group_sizes = [base + (1 if g >= 3 - extra else 0) for g in range(3)]
    if base == 0:  # depth < 3: collapse to the available groups
        group_sizes = [0] * (3 - depth) + [1] * depth
    plan: list[tuple[int, bool]] = []
    for size, channels in zip(group_sizes, group_channels):
        for i in range(size):
            plan.append((channels, i == size - 1))
    return plan


def build_vgg(
    config: NetworkConfig,
    scheme: QuantizationScheme,
    num_classes: int,
    image_size: int,
    in_channels: int = 3,
    rng: int | np.random.Generator | None = None,
) -> QuantizedNetwork:
    """Build a quantized VGG network per the Table-1 configuration.

    Pools are skipped once the spatial size would drop below 2 pixels, so
    the same configuration builds at reduced image sizes.
    """
    rng = as_generator(rng)
    quantize_acts = scheme.quantizes_activations
    # Activation-quantizer slots are always present (disabled for FP32
    # schemes) so every scheme shares one module structure — this is what
    # lets post-training quantization transfer state dicts across schemes.
    layers = [QuantizedActivation(scheme.activation, enabled=quantize_acts)]
    channels_in = in_channels
    spatial = image_size
    for channels_out, pool_after in vgg_channel_plan(config.depth, config.width):
        layers.append(
            QConv2d(channels_in, channels_out, 3, padding=1, strategy=scheme.make_strategy(), rng=rng)
        )
        layers.append(BatchNorm2d(channels_out))
        layers.append(LeakyReLU())
        layers.append(QuantizedActivation(scheme.activation, enabled=quantize_acts))
        if pool_after and spatial >= 4:
            layers.append(MaxPool2d(2))
            spatial //= 2
        channels_in = channels_out
    layers.append(GlobalAvgPool2d())
    features = Sequential(*layers)
    classifier = QLinear(channels_in, num_classes, strategy=scheme.make_strategy(), rng=rng)
    return QuantizedNetwork(features, classifier, scheme, config, image_size, in_channels)
