"""Conv + BatchNorm folding for the compiled inference engine.

In eval mode batch-norm is the fixed affine map

    y_c = gamma_c / sqrt(var_c + eps) * x_c + (beta_c - mean_c * gamma_c / sqrt(var_c + eps))

per channel ``c``.  Because convolution is linear, the multiplicative part
folds into the preceding convolution's weights (scaling each filter's row of
the im2col matmul) and the additive part becomes a per-filter bias — batch
norm then disappears from the execution plan entirely.

Folding happens on the *effective* (already quantized) weights the engine
caches, never on the master copies, so the model's training-time behaviour
and the quantized-value semantics are untouched.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.norm import BatchNorm2d

__all__ = [
    "bn_eval_affine",
    "fold_scale_into_weight",
    "bn_fingerprint",
    "dead_filter_rows",
    "slim_filter_rows",
]


def bn_eval_affine(bn: BatchNorm2d) -> tuple[np.ndarray, np.ndarray]:
    """Return the per-channel ``(scale, shift)`` of ``bn`` in eval mode."""
    std = np.sqrt(bn.running_var + bn.eps)
    scale = bn.gamma.data / std
    shift = bn.beta.data - bn.running_mean * scale
    return scale, shift


def fold_scale_into_weight(weight2d: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Scale each filter row of a flattened ``(F, C*kh*kw)`` weight matrix."""
    return weight2d * scale[:, None]


def dead_filter_rows(weight2d: np.ndarray) -> np.ndarray:
    """Indices of all-zero rows of a flattened ``(F, ...)`` weight matrix.

    After BN-scale folding these are exactly the filters whose output is a
    constant (their folded bias) everywhere — the targets of plan-time
    dead-filter elimination.  Zero weights contribute nothing through any
    padding, so the constant holds at the borders too.
    """
    w = np.asarray(weight2d)
    return np.flatnonzero(~w.any(axis=1))


def slim_filter_rows(
    weight2d: np.ndarray, bias: np.ndarray | None, live: np.ndarray
) -> tuple[np.ndarray, np.ndarray | None]:
    """Drop pruned filter rows from a folded ``(weight2d, bias)`` pair."""
    w = np.ascontiguousarray(weight2d[live])
    return w, None if bias is None else np.ascontiguousarray(bias[live])


def bn_fingerprint(bn: BatchNorm2d) -> tuple:
    """Cheap content fingerprint of everything BN folding depends on.

    The affine parameters carry version counters, but the running statistics
    are plain arrays mutated in place by training-mode forwards, so they are
    fingerprinted by value.
    """
    return (
        bn.gamma.version,
        bn.beta.version,
        float(bn.running_mean.sum()),
        float(np.abs(bn.running_mean).sum()),
        float(bn.running_var.sum()),
    )
