"""Bit-packed integer weight representation for the intq kernels.

FLightNN/LightNN weights are sums of ``<= k`` signed powers of two.  This
module routes each layer through the Fig. 3 plane decomposition
(:mod:`repro.quant.decompose`) and the hardware shift-code encoding
(:mod:`repro.quant.encoding`), then stores what an integer datapath would
hold:

* ``exponent_codes`` — int8 planes of biased exponents (code 0 = gated-off
  zero term, otherwise ``shift = code - 1`` relative to ``2**exp_min``);
* ``sign_bits`` — the sign planes packed 8-to-a-byte (``np.packbits``);
* ``w_int`` — the integer weight matrix those codes decode to
  (``weight == w_int * 2**exp_min``), used by the single-GEMM kernel;
* ``groups`` — per-shift-amount {-1, 0, +1} accumulation matrices for the
  shift-accumulate kernel (one integer matmul per distinct exponent).

``w_int`` and ``groups`` are decoded *from the packed bitmask and codes*,
not from the float weights, so a packing bug cannot cancel out.  Weight
strategies that are exactly dyadic but not plane-decomposable (fixed-point,
binary) fall back to a direct integer lift ``w_int = w * 2**f`` and run the
GEMM kernel only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompileError
from repro.infer.shift_plane import _layer_bank, supports_shift_planes
from repro.quant.encoding import encode_terms

__all__ = ["PackedWeights", "pack_weights"]

# Maximum dyadic-lift exponent tried for non-plane strategies (covers every
# fixed-point format the repo ships; arbitrary floats fail fast).
_MAX_LIFT_BITS = 32


@dataclass
class PackedWeights:
    """One layer's weights in packed integer form, in ``(F, cols)`` layout.

    Attributes:
        exponent_codes: int8 ``(k_max, F, cols)`` biased-exponent planes
            (``None`` for dyadic-lift layers with no plane decomposition).
        sign_bits: uint8 ``(k_max, ceil(F*cols/8))`` packed sign bitmask
            (``None`` for dyadic-lift layers).
        w_int: int64 ``(F, cols)`` integer weights; the real weight is
            ``w_int * weight_scale``.
        weight_scale: The power of two one integer unit represents.
        groups: ``[(shift, S)]`` pairs for the shift-accumulate kernel:
            ``sum_d (S_d @ (x << d)) == w_int @ x`` with ``S_d`` entries in
            {-1, 0, +1}; ``None`` when only the GEMM kernel applies.
        k_max: Number of decomposition planes (0 for dyadic lifts).
        nonzero_terms: Count of active (non-gated) shift terms — the
            hardware shift/add work per output position.
    """

    exponent_codes: np.ndarray | None
    sign_bits: np.ndarray | None
    w_int: np.ndarray
    weight_scale: float
    groups: list[tuple[int, np.ndarray]] | None
    k_max: int
    nonzero_terms: int


def _slice_planes(
    planes: np.ndarray, live_rows: np.ndarray | None, col_index: np.ndarray | None
) -> np.ndarray:
    if live_rows is not None:
        planes = planes[:, live_rows]
    if col_index is not None:
        planes = planes[:, :, col_index]
    return planes


def _dyadic_lift(weight2d: np.ndarray, layer_name: str) -> tuple[np.ndarray, float]:
    """Lift an exactly-dyadic weight matrix to integers: ``w = w_int * 2**-f``."""
    for f in range(_MAX_LIFT_BITS + 1):
        scaled = weight2d * float(2**f)
        if np.all(scaled == np.rint(scaled)) and float(np.abs(scaled).max(initial=0.0)) < 2**40:
            return np.rint(scaled).astype(np.int64), float(2.0**-f)
    raise CompileError(
        f"{layer_name}: weights are not dyadic rationals — the integer-only "
        "plan supports FLightNN/LightNN (shift planes) and exactly-dyadic "
        "strategies such as fixed-point or binary weights"
    )


def pack_weights(
    layer,
    live_rows: np.ndarray | None = None,
    col_index: np.ndarray | None = None,
) -> PackedWeights:
    """Pack one quantized conv/linear layer into :class:`PackedWeights`.

    Args:
        layer: A quantized layer.  FLightNN/LightNN strategies go through
            the full plane decomposition + shift-code encoding; other
            strategies must have exactly-dyadic quantized weights.
        live_rows: Filter rows surviving dead-filter pruning (``None`` =
            all) — packing happens in the plan op's slimmed row space.
        col_index: Weight-column indices surviving upstream pruning.

    Raises:
        CompileError: If the layer's weights cannot be represented exactly
            in integer form.
    """
    if supports_shift_planes(layer):
        bank, pow2 = _layer_bank(layer)
        encoded = encode_terms(bank, pow2)
        k_max = int(encoded.signs.shape[0])
        filters = int(encoded.signs.shape[1])
        codes = encoded.exponent_codes.reshape(k_max, filters, -1).astype(np.int8)
        signs = encoded.signs.reshape(k_max, filters, -1).astype(np.uint8)
        codes = _slice_planes(codes, live_rows, col_index)
        signs = _slice_planes(signs, live_rows, col_index)
        plane_size = int(codes[0].size)
        sign_bits = np.packbits(np.ascontiguousarray(signs).reshape(k_max, -1), axis=1)
        # Decode from the packed store: the kernels must compute from what
        # the "weight memory" holds, not from a float shadow copy.
        unpacked = (
            np.unpackbits(sign_bits, axis=1)[:, :plane_size].reshape(codes.shape).astype(bool)
        )
        codes64 = codes.astype(np.int64)
        magnitude = np.where(codes64 > 0, np.int64(1) << np.maximum(codes64 - 1, 0), 0)
        unit = np.where(codes64 > 0, np.where(unpacked, np.int64(-1), np.int64(1)), 0)
        w_int = (unit * magnitude).sum(axis=0)
        groups: list[tuple[int, np.ndarray]] = []
        for d in np.unique(codes64[codes64 > 0]) - 1:
            s_d = np.where(codes64 - 1 == d, unit, 0).sum(axis=0)
            groups.append((int(d), np.ascontiguousarray(s_d)))
        return PackedWeights(
            exponent_codes=codes,
            sign_bits=sign_bits,
            w_int=np.ascontiguousarray(w_int),
            weight_scale=float(2.0**pow2.exp_min),
            groups=groups,
            k_max=k_max,
            nonzero_terms=int((codes > 0).sum()),
        )
    # Dyadic fallback: quantized-but-not-plane strategies (fixed point,
    # binary) and anything else whose deployed weights are exact dyadics.
    from repro.infer.plan import _layer_weight

    weight2d = np.asarray(_layer_weight(layer), dtype=np.float64)
    weight2d = weight2d.reshape(weight2d.shape[0], -1)
    if live_rows is not None:
        weight2d = weight2d[live_rows]
    if col_index is not None:
        weight2d = weight2d[:, col_index]
    w_int, weight_scale = _dyadic_lift(weight2d, type(layer).__name__)
    return PackedWeights(
        exponent_codes=None,
        sign_bits=None,
        w_int=w_int,
        weight_scale=weight_scale,
        groups=None,
        k_max=0,
        nonzero_terms=int((w_int != 0).sum()),
    )
