"""Integer-only compiled inference (``PlanConfig(dtype="int8")``).

Lowers a compiled float :class:`~repro.infer.plan.ExecutionPlan` into an
:class:`~repro.infer.intq.build.IntQProgram` that executes the whole
network in integer arithmetic: bit-packed shift-code weights
(:mod:`~repro.infer.intq.pack`), calibrated fixed-point activation grids,
shift-accumulate / integer-GEMM kernels
(:mod:`~repro.infer.intq.kernels`) and gemmlowp-style multiplier+shift
requantization (:mod:`~repro.infer.intq.requant`), with static overflow
bounds checked at compile time.
"""

from repro.infer.intq.build import GridSpec, IntQProgram, build_intq_program
from repro.infer.intq.kernels import bind_int_kernel
from repro.infer.intq.pack import PackedWeights, pack_weights
from repro.infer.intq.requant import (
    quantize_multiplier,
    quantize_multiplier_array,
    requantize,
    rounding_right_shift,
)

__all__ = [
    "GridSpec",
    "IntQProgram",
    "PackedWeights",
    "bind_int_kernel",
    "build_intq_program",
    "pack_weights",
    "quantize_multiplier",
    "quantize_multiplier_array",
    "requantize",
    "rounding_right_shift",
]
