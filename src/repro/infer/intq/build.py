"""Compiling a float execution plan into an integer-only program.

:func:`build_intq_program` takes a compiled
:class:`~repro.infer.plan.ExecutionPlan` and produces an
:class:`IntQProgram` — a parallel op list that computes the same network
end-to-end in integer arithmetic:

* a **calibration pass** runs a deterministic batch through the float ops
  and records every slot's magnitude range; each weighted layer's output
  gets a per-layer power-of-two fixed-point grid (scale chosen via
  :func:`repro.quant.calibration.fixed_point_format_for`, zero-point 0)
  with :data:`MID_BITS` bits of resolution;
* **weights** are bit-packed (:mod:`repro.infer.intq.pack`) and the plan's
  BN-folded scales are absorbed into per-channel requantization constants
  (:mod:`repro.infer.intq.requant`), verified at build time to reproduce
  the float plan's folded weight matrices exactly;
* **activation ops** (LeakyReLU, max/avg/global pooling, residual adds,
  activation quantizers) are lowered to integer equivalents on those
  grids: pools become integer max/sum (the averaging divisor folds into
  the next layer's requant scale), quantizers become shifts or
  multiplier+shift rescales with saturation, LeakyReLU becomes a
  multiplier+shift on the negative branch;
* **overflow is checked statically**: every slot carries a guaranteed
  bound on its integer codes, accumulators use int32 when the worst-case
  MAC sum fits and int64 otherwise, and a layer whose requantization
  product could exceed int64 fails compilation rather than wrapping.

Floats appear exactly twice: quantizing the network input onto its first
grid and dequantizing the final logits — everything in between, including
every conv/linear inner loop, is integer shifts, adds and multiplies.
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import CompileError, ShapeError
from repro.infer.fold import bn_eval_affine
from repro.infer.intq.kernels import bind_int_kernel
from repro.infer.intq.pack import PackedWeights, pack_weights
from repro.infer.intq.requant import quantize_multiplier, quantize_multiplier_array
from repro.infer.kernels import AUTOTUNE_CACHE
from repro.infer.plan import (
    ActQuantOp,
    AddOp,
    AffineOp,
    AvgPoolOp,
    ConvOp,
    ExecutionContext,
    FallbackOp,
    FlattenOp,
    GlobalAvgPoolOp,
    LeakyReluOp,
    LinearOp,
    MaxPoolOp,
    _pool_views,
)
from repro.quant.calibration import fixed_point_format_for
from repro.utils.profiler import active_profiler

__all__ = ["GridSpec", "IntQProgram", "build_intq_program"]

#: Resolution of the calibrated per-layer intermediate grids.  24 bits keeps
#: the requantization round-off ~2**-16 below an 8-bit activation step, so
#: code flips against the float interpreter happen only at exact rounding
#: ties.
MID_BITS = 24

#: Mantissa budget for requantization multipliers; reduced per layer when
#: the static accumulator bound needs the int64 headroom.
RQ_BITS_MAX = 24

#: Buffer-key offset so intq ops never collide with float plan ops sharing
#: an :class:`ExecutionContext`.
_INDEX_BASE = 10_000

_INT32_LIMIT = 2**31
_INT64_GUARD = 2**62

logger = logging.getLogger("repro.infer.intq")
_native_warned = False


def _native_int(ctx, op, kind: str, data: np.ndarray, out: np.ndarray, numpy_run) -> bool:
    """Try the native C integer kernel; ``False`` → caller runs the numpy path.

    Any failure in the native ladder (missing package, compiler, BLAS, or a
    runtime error) is logged once and degrades to numpy — inference never
    crashes because a toolchain is absent.
    """
    global _native_warned
    try:
        from repro.infer.native import binding

        return binding.run_int_producer(ctx, op, kind, data, out, numpy_run)
    except Exception as err:
        if not _native_warned:
            _native_warned = True
            logger.warning("native integer backend disabled: %s", err)
        return False


@dataclass(frozen=True)
class GridSpec:
    """Static description of one integer slot: a symmetric fixed-point grid.

    ``value = step * code`` with ``|code| <= bound`` guaranteed (not merely
    observed), zero-point 0 by construction.
    """

    step: float
    bound: int

    @property
    def dtype(self) -> np.dtype:
        """Narrowest storage dtype the static bound permits."""
        return np.dtype(np.int32 if self.bound < _INT32_LIMIT else np.int64)


def _is_pow2(x: float) -> bool:
    if x <= 0 or not np.isfinite(x):
        return False
    mant, _ = math.frexp(x)
    return mant == 0.5


# -- integer ops ---------------------------------------------------------------


@dataclass
class IntQuantizeOp:
    """Float input -> integer codes: ``clip(rint(x / step))`` (exact vs float)."""

    index: int
    src: int
    dst: int
    inv_step: float
    lo: int
    hi: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        tmp = ctx.buffer(self.index, "tmp", x.shape, np.float64)
        np.multiply(x, self.inv_step, out=tmp)
        np.rint(tmp, out=tmp)
        np.clip(tmp, self.lo, self.hi, out=tmp)
        out = ctx.buffer(self.index, "out", x.shape, np.int32)
        np.copyto(out, tmp, casting="unsafe")
        ctx.slots[self.dst] = out


@dataclass
class IntDequantizeOp:
    """Integer codes -> float values (the single output-boundary multiply)."""

    index: int
    src: int
    dst: int
    step: float

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        out = ctx.buffer(self.index, "out", x.shape, np.float64)
        np.multiply(x, self.step, out=out)
        ctx.slots[self.dst] = out


@dataclass
class IntRescaleOp:
    """Grid-to-grid move with saturation (an ActQuant in the integer domain).

    ``mode`` is ``"lshift"`` (coarser -> finer grid, exact), ``"rshift"``
    (power-of-two downscale with round-half-up) or ``"requant"``
    (multiplier+shift for arbitrary step ratios).
    """

    index: int
    src: int
    dst: int
    mode: str
    amount: int
    m0: int
    rnd: int
    lo: int
    hi: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        # Widen to int64 FIRST: a ufunc with an int32 array and a Python-int
        # scalar computes in int32 (and would wrap) even with an int64 out.
        t = ctx.buffer(self.index, "t", x.shape, np.int64)
        np.copyto(t, x)
        if self.mode == "lshift":
            np.left_shift(t, self.amount, out=t)
        elif self.mode == "rshift":
            np.add(t, self.rnd, out=t)
            np.right_shift(t, self.amount, out=t)
        else:
            np.multiply(t, self.m0, out=t)
            np.add(t, self.rnd, out=t)
            np.right_shift(t, self.amount, out=t)
        np.clip(t, self.lo, self.hi, out=t)
        out = ctx.buffer(self.index, "out", x.shape, np.int32)
        np.copyto(out, t)
        ctx.slots[self.dst] = out


@dataclass
class IntLeakyOp:
    """LeakyReLU on a grid: negative branch via multiplier+shift.

    Uses the interpreter's ``max(x, slope*x)`` trick: the requantized
    ``(x * m0 + rnd) >> sh`` is below ``x`` for positive codes and above it
    for negative ones, so one integer max selects the right branch.
    """

    index: int
    src: int
    dst: int
    m0: int
    rnd: int
    sh: int
    zero_slope: bool

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        out = ctx.buffer(self.index, "out", x.shape, x.dtype)
        if self.zero_slope:
            np.maximum(x, 0, out=out)
        else:
            # Widen before the multiply — int32 * Python int stays int32.
            t = ctx.buffer(self.index, "t", x.shape, np.int64)
            np.copyto(t, x)
            np.multiply(t, self.m0, out=t)
            np.add(t, self.rnd, out=t)
            np.right_shift(t, self.sh, out=t)
            np.maximum(x, t, out=out, casting="unsafe")
        ctx.slots[self.dst] = out


@dataclass
class IntMaxPoolOp:
    index: int
    src: int
    dst: int
    kernel: int
    stride: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        views, oh, ow = _pool_views(x, self.kernel, self.stride)
        out = ctx.buffer(self.index, "out", x.shape[:2] + (oh, ow), x.dtype)
        out[...] = views[0]
        for v in views[1:]:
            np.maximum(out, v, out=out)
        ctx.slots[self.dst] = out


@dataclass
class IntSumPoolOp:
    """Average pooling as an exact integer window *sum*.

    The ``1/k**2`` divisor is folded into the output grid's step, so the
    op itself stays integer and lossless.
    """

    index: int
    src: int
    dst: int
    kernel: int
    stride: int
    out_dtype: str

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        views, oh, ow = _pool_views(x, self.kernel, self.stride)
        out = ctx.buffer(self.index, "out", x.shape[:2] + (oh, ow), np.dtype(self.out_dtype))
        out[...] = views[0]
        for v in views[1:]:
            np.add(out, v, out=out, casting="unsafe")
        ctx.slots[self.dst] = out


@dataclass
class IntGapSumOp:
    """Global average pooling as an exact integer spatial sum."""

    index: int
    src: int
    dst: int
    out_dtype: str

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        out = ctx.buffer(self.index, "out", x.shape[:2], np.dtype(self.out_dtype))
        np.sum(x, axis=(2, 3), out=out)
        ctx.slots[self.dst] = out


@dataclass
class IntAddOp:
    """Residual add after aligning both operands onto the finer grid.

    Each operand transform is ``("id" | "lshift" | "requant", ...)``;
    power-of-two step ratios (the structural case) align with exact left
    shifts.
    """

    index: int
    src: int
    src2: int
    dst: int
    tf1: tuple
    tf2: tuple
    out_dtype: str

    def _apply(self, x: np.ndarray, tf: tuple, t: np.ndarray) -> np.ndarray:
        mode = tf[0]
        if mode == "id":
            return x
        np.copyto(t, x)  # widen to int64 before shifting/multiplying
        if mode == "lshift":
            np.left_shift(t, tf[1], out=t)
            return t
        _, m0, rnd, sh = tf
        np.multiply(t, m0, out=t)
        np.add(t, rnd, out=t)
        np.right_shift(t, sh, out=t)
        return t

    def run(self, ctx: ExecutionContext) -> None:
        a, b = ctx.slots[self.src], ctx.slots[self.src2]
        ta = ctx.buffer(self.index, "ta", a.shape, np.int64)
        tb = ctx.buffer(self.index, "tb", b.shape, np.int64)
        av = self._apply(a, self.tf1, ta)
        bv = self._apply(b, self.tf2, tb)
        out = ctx.buffer(self.index, "out", a.shape, np.dtype(self.out_dtype))
        np.add(av, bv, out=out, casting="unsafe")
        ctx.slots[self.dst] = out


@dataclass
class IntFlattenOp:
    index: int
    src: int
    dst: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        ctx.slots[self.dst] = x.reshape(x.shape[0], -1)


@dataclass
class IntAffineOp:
    """Standalone per-channel scale/shift as a requant onto a calibrated grid."""

    index: int
    src: int
    dst: int
    m0: np.ndarray  # (C, 1, 1) int64
    rnd: np.ndarray
    sh: np.ndarray
    bg: np.ndarray  # (C, 1, 1) int64 — shift in output-grid units
    out_dtype: str

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        t = ctx.buffer(self.index, "t", x.shape, np.int64)
        np.multiply(x, self.m0, out=t, casting="unsafe")
        np.add(t, self.rnd, out=t)
        np.right_shift(t, self.sh, out=t)
        np.add(t, self.bg, out=t)
        out = ctx.buffer(self.index, "out", x.shape, np.dtype(self.out_dtype))
        np.copyto(out, t)
        ctx.slots[self.dst] = out


@dataclass
class IntConvOp:
    """Integer convolution: im2col + shift-accumulate/GEMM + requant epilogue."""

    index: int
    src: int
    dst: int
    kernel: int
    stride: int
    padding: int
    filters: int
    impl: str
    acc_dtype: str
    out_dtype: str
    flags: tuple
    group_shifts: tuple
    consts: dict = field(repr=False)
    backend: str = "auto"
    #: Intra-op thread count for the native integer kernel (0 = serial).
    threads: int = 0

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        n, c, h, w = x.shape
        k, s, p = self.kernel, self.stride, self.padding
        mat_dt = np.dtype(self.acc_dtype)
        if p:
            xp = ctx.buffer(self.index, "pad", (n, c, h + 2 * p, w + 2 * p), x.dtype, zero=True)
            xp[:, :, p:-p, p:-p] = x
            xs = xp
        else:
            xs = x
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        if k == 1 and s == 1 and p == 0 and x.dtype == mat_dt:
            cols = x.reshape(n, c, h * w)
        else:
            sn, sc, sh_, sw = xs.strides
            windows = as_strided(
                xs,
                shape=(n, c, k, k, oh, ow),
                strides=(sn, sc, sh_, sw, sh_ * s, sw * s),
                writeable=False,
            )
            cols = ctx.buffer(self.index, "cols", (n, c * k * k, oh * ow), mat_dt)
            cols.reshape(n, c, k, k, oh, ow)[...] = windows
        f = self.filters
        out = ctx.buffer(self.index, "out", (n, f, oh * ow), np.dtype(self.out_dtype))

        def run_numpy() -> None:
            acc = ctx.buffer(self.index, "acc", (n, f, oh * ow), mat_dt)
            acc64 = (
                acc if mat_dt == np.int64 else ctx.buffer(self.index, "acc64", acc.shape, np.int64)
            )
            kernel = bind_int_kernel(
                "conv", self.impl, (n, f, cols.shape[1], oh * ow),
                mat_dt, self.flags, self.group_shifts, self.consts,
            )
            if self.impl == "intq_shift":
                shifted = ctx.buffer(self.index, "shifted", cols.shape, mat_dt)
                part = ctx.buffer(self.index, "part", acc.shape, mat_dt)
                kernel(cols, shifted, part, acc, acc64, out)
            else:
                kernel(cols, acc, acc64, out)

        if self.backend == "numpy" or not _native_int(ctx, self, "conv", cols, out, run_numpy):
            run_numpy()
        ctx.slots[self.dst] = out.reshape(n, f, oh, ow)


@dataclass
class IntLinearOp:
    """Integer affine map: shift-accumulate/GEMM + requant epilogue."""

    index: int
    src: int
    dst: int
    filters: int
    impl: str
    acc_dtype: str
    out_dtype: str
    flags: tuple
    group_shifts: tuple
    consts: dict = field(repr=False)
    backend: str = "auto"
    #: Intra-op thread count for the native integer kernel (0 = serial).
    threads: int = 0

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        mat_dt = np.dtype(self.acc_dtype)
        if x.dtype != mat_dt:
            xb = ctx.buffer(self.index, "xin", x.shape, mat_dt)
            np.copyto(xb, x)
            x = xb
        n, f = x.shape[0], self.filters
        out = ctx.buffer(self.index, "out", (n, f), np.dtype(self.out_dtype))
        xin = x

        def run_numpy() -> None:
            acc = ctx.buffer(self.index, "acc", (n, f), mat_dt)
            acc64 = (
                acc if mat_dt == np.int64 else ctx.buffer(self.index, "acc64", acc.shape, np.int64)
            )
            kernel = bind_int_kernel(
                "linear", self.impl, (n, f, xin.shape[1]),
                mat_dt, self.flags, self.group_shifts, self.consts,
            )
            if self.impl == "intq_shift":
                shifted = ctx.buffer(self.index, "shifted", xin.shape, mat_dt)
                part = ctx.buffer(self.index, "part", acc.shape, mat_dt)
                kernel(xin, shifted, part, acc, acc64, out)
            else:
                kernel(xin, acc, acc64, out)

        if self.backend == "numpy" or not _native_int(ctx, self, "linear", xin, out, run_numpy):
            run_numpy()
        ctx.slots[self.dst] = out


# -- the program ---------------------------------------------------------------


class IntQProgram:
    """A plan's integer-only twin: op list, grids and measured op counts.

    Built by :func:`build_intq_program`; executed by
    :meth:`~repro.infer.plan.ExecutionPlan.execute` when the plan was
    compiled with ``PlanConfig(dtype="int8")``.  The program is bound to
    the input spatial shape it was calibrated on (per-layer grids and
    dead-input maps are shape-specific); batch size is free.
    """

    def __init__(
        self,
        ops: list,
        out_slot: int,
        input_chw: tuple[int, int, int],
        layers: list[dict],
        calibration: dict,
        calibration_images: np.ndarray,
    ) -> None:
        self.ops = ops
        self.out_slot = out_slot
        self.input_chw = input_chw
        #: Per weighted layer: impl, accumulator dtype, measured shift/add/
        #: multiply counts per image, in/out scales (see ``summary_block``).
        self.layers = layers
        self.calibration = calibration
        #: Retained so a hot weight refresh can rebuild the packed state
        #: against the exact same calibration batch.
        self.calibration_images = calibration_images

    def run(self, x: np.ndarray, ctx: ExecutionContext) -> np.ndarray:
        """Execute one NCHW batch; returns float64 logits (context-owned)."""
        shape = tuple(np.shape(x))
        if len(shape) != 4 or shape[1:] != self.input_chw:
            raise ShapeError(
                f"int8 plan was calibrated for inputs of shape (N, {', '.join(map(str, self.input_chw))}); "
                f"got {shape} — rebuild the plan for this input size"
            )
        ctx.slots[0] = np.asarray(x, dtype=np.float64)
        profiler = active_profiler()
        if profiler is None:
            for op in self.ops:
                op.run(ctx)
        else:
            for op in self.ops:
                with profiler.phase(f"intq{op.index - _INDEX_BASE}:{type(op).__name__}"):
                    op.run(ctx)
        return ctx.slots[self.out_slot]

    def summary_block(self) -> dict:
        """The ``"intq"`` section of ``ExecutionPlan.summary()``."""
        totals = {"shift_ops": 0, "add_ops": 0, "int_mult_ops": 0, "requant_mult_ops": 0}
        for layer in self.layers:
            for key in totals:
                totals[key] += layer[key]
        return {
            "enabled": True,
            "mid_bits": MID_BITS,
            "ops": len(self.ops),
            "layers": self.layers,
            "totals_per_image": totals,
            "calibration": self.calibration,
        }


# -- building ------------------------------------------------------------------


class _IntQBuilder:
    def __init__(self, plan, images: np.ndarray) -> None:
        self.plan = plan
        self.images = np.asarray(images, dtype=np.float64)
        self.config = plan.config
        self.spec: dict[int, GridSpec] = {}
        self.stats: dict[int, dict] = {}
        self.ops: list = []
        self.layers: list[dict] = []
        self.bindings = {b.op_index: b for b in plan.bindings}

    def _next_index(self) -> int:
        return _INDEX_BASE + len(self.ops)

    def calibrate(self) -> None:
        """Run the float ops once, recording every slot's shape and range."""
        ctx = ExecutionContext()
        ctx.slots[0] = self.images
        self._record(0, self.images)
        for op in self.plan.ops:
            op.run(ctx)
            self._record(op.dst, ctx.slots[op.dst])

    def _record(self, slot: int, values: np.ndarray) -> None:
        self.stats[slot] = {
            "shape": tuple(values.shape),
            "max_abs": float(np.abs(values).max(initial=0.0)),
        }

    def _mid_step(self, slot: int) -> float:
        return fixed_point_format_for([self.stats[slot]["max_abs"]], bits=MID_BITS).step

    def _grid_input(self, src: int) -> GridSpec:
        """The grid spec of ``src``, quantizing a float slot on demand."""
        spec = self.spec.get(src)
        if spec is not None:
            return spec
        # A float slot feeding an integer op without an ActQuant in between —
        # most commonly the raw network input into the first conv.  This is
        # not a paper quantization point, so use the full intermediate-grid
        # resolution rather than 8 bits.
        fmt = fixed_point_format_for([self.stats[src]["max_abs"]], bits=MID_BITS)
        half = 2 ** (fmt.bits - 1)
        self.ops.append(
            IntQuantizeOp(self._next_index(), src, src, 1.0 / fmt.step, -half, half - 1)
        )
        spec = GridSpec(fmt.step, half)
        self.spec[src] = spec
        return spec

    # -- per-op lowering -------------------------------------------------------

    def lower(self) -> None:
        for op in self.plan.ops:
            if isinstance(op, ConvOp):
                self._lower_matmul(op, linear=False)
            elif isinstance(op, LinearOp):
                self._lower_matmul(op, linear=True)
            elif isinstance(op, ActQuantOp):
                self._lower_actquant(op)
            elif isinstance(op, LeakyReluOp):
                self._lower_leaky(op)
            elif isinstance(op, MaxPoolOp):
                spec = self._grid_input(op.src)
                self.ops.append(
                    IntMaxPoolOp(self._next_index(), op.src, op.dst, op.kernel, op.stride)
                )
                self.spec[op.dst] = spec
            elif isinstance(op, AvgPoolOp):
                spec = self._grid_input(op.src)
                k2 = op.kernel * op.kernel
                out = GridSpec(spec.step / k2, spec.bound * k2)
                self.ops.append(
                    IntSumPoolOp(
                        self._next_index(), op.src, op.dst, op.kernel, op.stride,
                        str(out.dtype),
                    )
                )
                self.spec[op.dst] = out
            elif isinstance(op, GlobalAvgPoolOp):
                spec = self._grid_input(op.src)
                h, w = self.stats[op.src]["shape"][2:]
                out = GridSpec(spec.step / (h * w), spec.bound * h * w)
                self.ops.append(
                    IntGapSumOp(self._next_index(), op.src, op.dst, str(out.dtype))
                )
                self.spec[op.dst] = out
            elif isinstance(op, AddOp):
                self._lower_add(op)
            elif isinstance(op, FlattenOp):
                self.spec[op.dst] = self._grid_input(op.src)
                self.ops.append(IntFlattenOp(self._next_index(), op.src, op.dst))
            elif isinstance(op, AffineOp):
                self._lower_affine(op)
            elif isinstance(op, FallbackOp):
                raise CompileError(
                    f"int8 plan cannot lower FallbackOp for {type(op.module).__name__}; "
                    "integer-only execution supports the compiled layer catalogue only"
                )
            else:  # pragma: no cover - future op kinds fail loudly
                raise CompileError(f"int8 plan has no lowering for {type(op).__name__}")
        # Output boundary: one float multiply back to logits.
        out_spec = self._grid_input(self.plan.out_slot)
        self.ops.append(
            IntDequantizeOp(
                self._next_index(), self.plan.out_slot, self.plan.out_slot, out_spec.step
            )
        )

    def _lower_actquant(self, op: ActQuantOp) -> None:
        half = int(op.half)
        lo, hi = -half, half - 1
        if op.src not in self.spec:
            # The canonical network input quantizer: bit-exact vs the float
            # interpreter's rint/clip.
            self.ops.append(
                IntQuantizeOp(self._next_index(), op.src, op.dst, 1.0 / op.step, lo, hi)
            )
            self.spec[op.dst] = GridSpec(op.step, half)
            return
        spec = self.spec[op.src]
        ratio = spec.step / op.step
        if _is_pow2(ratio) and ratio >= 1.0:
            mode, amount, m0, rnd = "lshift", int(round(math.log2(ratio))), 0, 0
        elif _is_pow2(1.0 / ratio):
            amount = int(round(math.log2(1.0 / ratio)))
            mode, m0, rnd = "rshift", 0, 1 << max(amount - 1, 0)
        else:
            m0, amount = quantize_multiplier(ratio, RQ_BITS_MAX)
            mode, rnd = "requant", 1 << (amount - 1)
        self.ops.append(
            IntRescaleOp(self._next_index(), op.src, op.dst, mode, amount, m0, rnd, lo, hi)
        )
        self.spec[op.dst] = GridSpec(op.step, half)

    def _lower_leaky(self, op: LeakyReluOp) -> None:
        spec = self._grid_input(op.src)
        if op.slope == 0.0:
            self.ops.append(IntLeakyOp(self._next_index(), op.src, op.dst, 0, 0, 1, True))
        else:
            m0, sh = quantize_multiplier(float(op.slope), RQ_BITS_MAX)
            self.ops.append(
                IntLeakyOp(
                    self._next_index(), op.src, op.dst, m0, 1 << (sh - 1), sh, False
                )
            )
        self.spec[op.dst] = spec

    def _lower_add(self, op: AddOp) -> None:
        s1, s2 = self._grid_input(op.src), self._grid_input(op.src2)
        target = min(s1.step, s2.step)

        def transform(spec: GridSpec) -> tuple[tuple, int]:
            ratio = spec.step / target
            if ratio == 1.0:
                return ("id",), spec.bound
            if _is_pow2(ratio):
                d = int(round(math.log2(ratio)))
                return ("lshift", d), spec.bound << d
            m0, sh = quantize_multiplier(ratio, RQ_BITS_MAX)
            return ("requant", m0, 1 << (sh - 1), sh), int(math.ceil(spec.bound * ratio)) + 1

        tf1, b1 = transform(s1)
        tf2, b2 = transform(s2)
        out = GridSpec(target, b1 + b2)
        self.ops.append(
            IntAddOp(self._next_index(), op.src, op.src2, op.dst, tf1, tf2, str(out.dtype))
        )
        self.spec[op.dst] = out

    def _lower_affine(self, op: AffineOp) -> None:
        spec = self._grid_input(op.src)
        step_out = self._mid_step(op.dst)
        m = spec.step * np.asarray(op.scale, dtype=np.float64) / step_out
        m0, sh, rnd = quantize_multiplier_array(m, RQ_BITS_MAX)
        bg = np.rint(np.asarray(op.shift, dtype=np.float64) / step_out).astype(np.int64)
        bound = int(math.ceil(spec.bound * float(np.abs(m).max(initial=0.0))))
        bound += int(np.abs(bg).max(initial=0)) + 1
        out = GridSpec(step_out, bound)
        self.ops.append(
            IntAffineOp(
                self._next_index(), op.src, op.dst,
                m0[:, None, None], rnd[:, None, None], sh[:, None, None],
                bg[:, None, None], str(out.dtype),
            )
        )
        self.spec[op.dst] = out

    # -- conv/linear -----------------------------------------------------------

    def _lower_matmul(self, op, linear: bool) -> None:
        spec_in = self._grid_input(op.src)
        binding = self.bindings.get(op.index)
        if binding is None:  # pragma: no cover - plans always bind weighted ops
            raise CompileError(f"op {op.index} has no weight binding")
        packed = pack_weights(binding.layer, op.live_rows, op.in_live_cols)
        weight2d = op.weight_t.T if linear else op.weight2d
        f = weight2d.shape[0]
        scale = np.ones(f, dtype=np.float64)
        if binding.bn is not None:
            s, _ = bn_eval_affine(binding.bn)
            scale = s[op.live_rows] if op.live_rows is not None else s
        recon = packed.w_int * packed.weight_scale * scale[:, None]
        if not np.allclose(recon, weight2d, rtol=1e-9, atol=1e-12):
            raise CompileError(
                f"int8 packing failed verification on op {op.index}: decoded integer "
                "weights do not reproduce the plan's folded weight matrix"
            )
        # Accumulator scale per channel: one accumulator unit represents
        # input_step * weight_scale * bn_scale.  The bias and the dead-input
        # map are NOT added in the accumulator domain — its grid can be
        # coarse (~2**-11 for an 8-bit input feeding shift weights), so they
        # are rounded once onto the *output* grid (one LSB there is
        # 2**(1 - MID_BITS) of the layer range) and added post-requant.
        s_acc = spec_in.step * packed.weight_scale * scale  # (f,)
        step_out = self._mid_step(op.dst)
        zero = s_acc == 0.0
        w_int = packed.w_int.copy()
        w_int[zero] = 0
        bias = np.zeros(f) if op.bias is None else np.asarray(op.bias, dtype=np.float64)
        gb = np.rint(bias / step_out).astype(np.int64)

        in_shape = self.stats[op.src]["shape"]
        out_shape = self.stats[op.dst]["shape"]
        dmap = None
        if not linear and op.dead_in_weight2d is not None:
            fmap = np.asarray(op._dead_bias_map(in_shape[2], in_shape[3]), dtype=np.float64)
            dmap = np.rint(fmap / step_out).astype(np.int64)

        row_bound = np.abs(w_int).sum(axis=1) * spec_in.bound
        mac_bound = bound_acc = int(row_bound.max(initial=0))
        rq_bits = min(RQ_BITS_MAX, 61 - max(bound_acc, 1).bit_length())
        if rq_bits < 8:
            raise CompileError(
                f"op {op.index}: worst-case integer accumulator ({bound_acc}) leaves "
                "no headroom for requantization — int64 would overflow"
            )
        with np.errstate(divide="ignore", invalid="ignore"):
            m = np.where(zero, 0.0, s_acc / step_out)
        m0, sh, rnd = quantize_multiplier_array(m, rq_bits)
        if bound_acc * int(np.abs(m0).max(initial=0)) >= _INT64_GUARD:
            raise CompileError(
                f"op {op.index}: requantization product exceeds the int64 guard"
            )

        group_shifts = tuple(d for d, _ in packed.groups) if packed.groups else ()
        max_shift = max(group_shifts, default=0)
        acc32 = mac_bound < _INT32_LIMIT and (spec_in.bound << max_shift) < _INT32_LIMIT
        acc_dt = np.dtype(np.int32 if acc32 else np.int64)
        m_abs_max = float(np.abs(m).max(initial=0.0))
        bound_out = int(math.ceil(bound_acc * m_abs_max)) + int(np.abs(gb).max(initial=0)) + 1
        if dmap is not None:
            bound_out += int(np.abs(dmap).max(initial=0))
        out_spec = GridSpec(step_out, bound_out)

        flags = []
        if dmap is not None:
            flags.append("dead")
        if np.any(gb != 0):
            flags.append("gb")
        flags = tuple(flags)

        def chan(a: np.ndarray) -> np.ndarray:
            return a if linear else a[:, None]

        consts = {
            "M0": chan(m0),
            "RND": chan(rnd),
            "SH": chan(sh),
        }
        if dmap is not None:
            consts["DMAP"] = dmap
        if "gb" in flags:
            consts["GB"] = chan(gb)
        w_mat = w_int.astype(acc_dt)
        consts["W"] = np.ascontiguousarray(w_mat.T) if linear else w_mat
        if packed.groups:
            for i, (_, s_mat) in enumerate(packed.groups):
                s_cast = s_mat.astype(acc_dt)
                consts[f"S{i}"] = np.ascontiguousarray(s_cast.T) if linear else s_cast

        index = self._next_index()
        if linear:
            int_op = IntLinearOp(
                index, op.src, op.dst, f, "intq_gemm", str(acc_dt), str(out_spec.dtype),
                flags, group_shifts, consts,
            )
            out_positions = 1
        else:
            int_op = IntConvOp(
                index, op.src, op.dst, op.kernel, op.stride, op.padding, f,
                "intq_gemm", str(acc_dt), str(out_spec.dtype), flags, group_shifts, consts,
            )
            out_positions = int(out_shape[2] * out_shape[3])
        # Impl timing must stay numpy-pure — native compiles would pollute it;
        # the backend chooser below makes the final numpy/native call.
        int_op.backend = "numpy"
        autotune = self._choose_impl(int_op, spec_in, in_shape)
        autotune_backend = self._choose_backend(int_op, spec_in, in_shape)
        self.ops.append(int_op)
        self.spec[op.dst] = out_spec

        nnz = packed.nonzero_terms
        record = {
            "op_index": op.index,
            "type": "linear" if linear else "conv",
            "impl": int_op.impl,
            "accum_dtype": str(acc_dt),
            "planes": packed.k_max,
            "nonzero_terms": nnz,
            "out_positions": out_positions,
            "shift_ops": (nnz * out_positions) if packed.groups else 0,
            "add_ops": (nnz + f) * out_positions,
            "int_mult_ops": (nnz * out_positions) if int_op.impl == "intq_gemm" else 0,
            "requant_mult_ops": f * out_positions,
            "requant_bits": rq_bits,
            "scale_in": spec_in.step,
            "scale_out": step_out,
            "zero_point": 0,
            "backend": int_op.backend,
        }
        if autotune is not None:
            record["autotune"] = autotune
        if autotune_backend is not None:
            record["autotune_backend"] = autotune_backend
        self.layers.append(record)

    def _choose_impl(self, int_op, spec_in: GridSpec, in_shape: tuple) -> dict | None:
        """Apply the config's kernel policy; time both variants under "auto"."""
        cfg = self.config
        if not int_op.group_shifts:
            return None
        if cfg.kernel == "shift_plane":
            int_op.impl = "intq_shift"
            return None
        if cfg.kernel == "dense":
            return None
        key = (
            "intq", type(int_op).__name__, tuple(in_shape),
            tuple(int_op.consts["W"].shape), int_op.group_shifts,
            int_op.acc_dtype, cfg.autotune_reps,
        )
        entry = AUTOTUNE_CACHE.get(key)
        if entry is None:
            ctx = ExecutionContext()
            ctx.slots[int_op.src] = np.zeros(in_shape, dtype=spec_in.dtype)
            timings = {}
            for impl in ("intq_gemm", "intq_shift"):
                int_op.impl = impl
                best = float("inf")
                for _ in range(max(1, cfg.autotune_reps)):
                    start = time.perf_counter()
                    int_op.run(ctx)
                    best = min(best, time.perf_counter() - start)
                timings[impl] = best
            chosen = "intq_shift" if timings["intq_shift"] <= timings["intq_gemm"] else "intq_gemm"
            entry = {
                "chosen": chosen,
                "intq_gemm_s": timings["intq_gemm"],
                "intq_shift_s": timings["intq_shift"],
                "cached": False,
            }
            AUTOTUNE_CACHE.put(key, {**entry, "cached": True})
        int_op.impl = entry["chosen"]
        return entry

    def _choose_backend(self, int_op, spec_in: GridSpec, in_shape: tuple) -> dict | None:
        """Resolve the op's numpy/native backend; time both under "auto".

        Runs after :meth:`_choose_impl` so the tournament measures the impl
        the op will actually execute.  Forced "native" still degrades at run
        time through the first-call parity ladder.
        """
        cfg = self.config
        choice = getattr(cfg, "backend", "auto")
        if choice == "numpy":
            int_op.backend = "numpy"
            return None
        try:
            from repro.infer.native import binding as native_binding

            native_ok = native_binding.available()
        except Exception:
            native_ok = False
        if not native_ok:
            int_op.backend = "numpy"
            return None
        if choice == "native":
            int_op.backend = "native"
            return None
        key = (
            "intq-native", type(int_op).__name__, tuple(in_shape),
            tuple(int_op.consts["W"].shape), int_op.impl, int_op.group_shifts,
            int_op.acc_dtype, cfg.autotune_reps,
        )
        entry = AUTOTUNE_CACHE.get(key)
        if entry is None:
            timings = {}
            for backend in ("numpy", "native"):
                int_op.backend = backend
                ctx = ExecutionContext()
                ctx.slots[int_op.src] = np.zeros(in_shape, dtype=spec_in.dtype)
                int_op.run(ctx)  # warm-up pays the compile + parity check
                best = float("inf")
                for _ in range(max(1, cfg.autotune_reps)):
                    start = time.perf_counter()
                    int_op.run(ctx)
                    best = min(best, time.perf_counter() - start)
                timings[backend] = best
            entry = {
                "backend": "native" if timings["native"] < timings["numpy"] else "numpy",
                "native_s": timings["native"],
                "numpy_s": timings["numpy"],
                "cached": False,
            }
            AUTOTUNE_CACHE.put(key, {**entry, "cached": True})
        int_op.backend = entry["backend"]
        return entry


def build_intq_program(
    plan,
    calibration_shape: tuple[int, int, int, int] | None = None,
    calibration_images: np.ndarray | None = None,
) -> IntQProgram:
    """Build the integer-only twin of a compiled float plan.

    Args:
        plan: A compiled :class:`~repro.infer.plan.ExecutionPlan` (any
            float dtype); its ops, bindings and config drive the build.
        calibration_shape: NCHW shape for the synthetic (deterministic,
            seeded) calibration batch when no images are given.
        calibration_images: Explicit calibration batch; takes precedence.

    Raises:
        CompileError: If a layer's weights are not exactly representable in
            integer form, an op has no integer lowering, or a static
            overflow bound cannot be met.
    """
    if calibration_images is None:
        if calibration_shape is None:
            raise CompileError(
                "int8 plan build needs a calibration batch: pass calibration_images "
                "or a calibration_shape (models declaring in_channels/image_size "
                "get one automatically)"
            )
        rng = np.random.Generator(np.random.PCG64(0))
        calibration_images = rng.normal(0.0, 1.0, calibration_shape)
    images = np.asarray(calibration_images, dtype=np.float64)
    if images.ndim != 4:
        raise CompileError(f"calibration batch must be NCHW, got shape {images.shape}")
    builder = _IntQBuilder(plan, images)
    builder.calibrate()
    builder.lower()
    intra = int(getattr(plan, "intra_threads", 0) or 0)
    if intra >= 1:
        for iop in builder.ops:
            if hasattr(iop, "threads"):
                iop.threads = intra
    return IntQProgram(
        ops=builder.ops,
        out_slot=plan.out_slot,
        input_chw=tuple(images.shape[1:]),
        layers=builder.layers,
        calibration={
            "batch_shape": tuple(images.shape),
            "mid_bits": MID_BITS,
            "zero_point": 0,
        },
        calibration_images=images,
    )
