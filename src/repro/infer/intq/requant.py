"""Integer requantization constants and reference kernels.

Scale changes in the integer pipeline follow the gemmlowp-style
multiplier+shift scheme (the ``M0``/``shift`` pipeline of
PerClusterQuantization's ``QuantizedLinear``): a real rescale factor ``M``
is decomposed as ``M ~= M0 * 2**-shift`` with ``M0`` an integer mantissa of
``bits`` significant bits, so the hot path computes

    ``y = (acc * M0 + (1 << (shift - 1))) >> shift``

— one integer multiply, one add and one arithmetic right shift per element,
rounding half away from zero toward +inf (deterministic, no FPU).  All
activation grids in :mod:`repro.infer.intq` are symmetric (zero-point 0),
so no zero-point correction terms appear.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompileError

__all__ = [
    "quantize_multiplier",
    "quantize_multiplier_array",
    "requantize",
    "rounding_right_shift",
]

#: Hard ceiling on the post-multiply magnitude ``|acc| * |M0|`` — one bit of
#: int64 headroom for the rounding addend.
ACC_PRODUCT_LIMIT = 2**62


def quantize_multiplier(m: float, bits: int = 15) -> tuple[int, int]:
    """Decompose a real factor ``m`` into ``(m0, shift)`` with ``m ~= m0 * 2**-shift``.

    ``m0`` carries ``bits`` significant bits (``2**(bits-1) <= |m0| <
    2**bits`` for normal values), giving a relative error below
    ``2**-bits``.  ``shift`` is always >= 1 so the rounding addend
    ``1 << (shift - 1)`` is well-defined; ``m == 0`` maps to ``(0, 1)``.

    Raises:
        CompileError: If ``m`` is not finite, or so extreme that no
            ``(m0, shift)`` pair with ``shift <= 62`` represents it.
    """
    if m == 0.0:
        return 0, 1
    if not np.isfinite(m):
        raise CompileError(f"requantization multiplier is not finite: {m!r}")
    mant, exp = np.frexp(m)  # m = mant * 2**exp with 0.5 <= |mant| < 1
    m0 = int(round(float(mant) * (1 << bits)))
    exp = int(exp)
    if abs(m0) == 1 << bits:  # rounding overflowed the mantissa window
        m0 //= 2
        exp += 1
    shift = bits - exp
    if shift < 1:
        # Very large |m|: fold the excess scale into the mantissa.
        m0 <<= 1 - shift
        shift = 1
    if shift > 62:
        # Very small |m|: re-derive the mantissa at the maximum shift.
        shift = 62
        m0 = int(round(m * float(2**shift)))
    if abs(m0) >= 2**47:
        raise CompileError(
            f"requantization multiplier {m!r} needs a mantissa beyond 47 bits"
        )
    return m0, shift


def quantize_multiplier_array(
    m: np.ndarray, bits: int = 15
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`quantize_multiplier` for per-channel factors.

    Returns ``(m0, shift, rnd)`` int64 arrays of ``m``'s shape, where
    ``rnd = 1 << (shift - 1)`` is the precomputed rounding addend.
    """
    m = np.asarray(m, dtype=np.float64)
    m0 = np.empty(m.shape, dtype=np.int64)
    shift = np.empty(m.shape, dtype=np.int64)
    flat_m0, flat_sh = m0.reshape(-1), shift.reshape(-1)
    for i, value in enumerate(m.reshape(-1)):
        flat_m0[i], flat_sh[i] = quantize_multiplier(float(value), bits)
    rnd = np.int64(1) << (shift - 1)
    return m0, shift, rnd


def rounding_right_shift(acc: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Arithmetic right shift with round-half-up: ``(acc + 2**(s-1)) >> s``."""
    acc = np.asarray(acc, dtype=np.int64)
    shift = np.asarray(shift, dtype=np.int64)
    return (acc + (np.int64(1) << (shift - 1))) >> shift


def requantize(acc: np.ndarray, m0: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Reference requantization: ``(acc * m0 + 2**(shift-1)) >> shift``.

    The generated kernels inline exactly this ufunc sequence; tests compare
    against this function to pin the rounding behaviour.
    """
    acc = np.asarray(acc, dtype=np.int64)
    return rounding_right_shift(acc * np.asarray(m0, dtype=np.int64), shift)
