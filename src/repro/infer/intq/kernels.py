"""Generated integer conv/linear kernels, cached in the codegen cache.

Like the float traced path (:mod:`repro.infer.kernels`), the integer hot
loops are *generated*: one Python function per (op kind, integer impl,
structural flags, exponent-group signature), compiled once and cached
process-wide in :data:`repro.infer.kernels.KERNEL_CACHE` under an
``intq_*`` impl tag — so int8 plans share the same cache, hit/miss
counters and ``/metrics`` surfacing as the float compiler.

Two variants per layer, bit-identical in their accumulator results
(integer addition is associative):

* ``intq_gemm`` — one integer matmul against the decoded ``w_int`` matrix,
  then the requantization epilogue;
* ``intq_shift`` — the hardware-faithful form: for each distinct exponent
  ``d`` in the packed codes, left-shift the quantized activations by ``d``
  and accumulate through that group's {-1, 0, +1} sign matrix.  No integer
  multiply appears anywhere in the MAC loop.

The epilogue is shared: the per-channel multiplier+shift requantization
(:mod:`repro.infer.intq.requant`) brings the accumulator onto the layer's
calibrated output grid, then the folded bias (``GB``) and the dead-input
bias map (``DMAP``) — both pre-rounded onto that *output* grid, where one
LSB is ``2**(1-MID_BITS)`` of the layer range — are added as integer
constants.  Any per-channel value a float path would multiply or add in
(BN scale, biases, pruned-channel constants) lives inside those integer
constants — the kernels contain no float arithmetic at all.
"""

from __future__ import annotations

import numpy as np

from repro.infer.kernels import KERNEL_CACHE, KernelSpec

__all__ = ["bind_int_kernel"]


def _build_source(const_names: list[str], params: list[str], lines: list[str]) -> str:
    src = ["def _factory(C):"]
    src.extend(f"    {name} = C[{name!r}]" for name in const_names)
    src.append(f"    def kernel({', '.join(params)}):")
    src.extend("        " + line for line in lines)
    src.append("    return kernel")
    return "\n".join(src) + "\n"


def _epilogue_lines(flags: tuple, cast: bool) -> list[str]:
    """The shared int64 requant epilogue; assumes ``acc`` holds the MAC sum."""
    lines = []
    if cast:
        lines.append("np.copyto(acc64, acc)")
    lines += [
        "np.multiply(acc64, M0, out=acc64)",
        "np.add(acc64, RND, out=acc64)",
        "np.right_shift(acc64, SH, out=acc64)",
    ]
    if "dead" in flags:
        lines.append("np.add(acc64, DMAP, out=acc64)")
    if "gb" in flags:
        lines.append("np.add(acc64, GB, out=acc64)")
    lines.append("np.copyto(out, acc64)")
    return lines


def _mac_lines(kind: str, impl: str, group_shifts: tuple) -> tuple[list[str], list[str]]:
    """(const names, source lines) of the MAC portion for one variant."""
    if impl == "intq_gemm":
        if kind == "conv":
            return ["W"], ["np.matmul(W, x, out=acc)"]
        return ["W"], ["np.matmul(x, W, out=acc)"]
    consts, lines = [], []
    for i, d in enumerate(group_shifts):
        s = f"S{i}"
        consts.append(s)
        operand = "x"
        if d:
            lines.append(f"np.left_shift(x, {d}, out=shifted)")
            operand = "shifted"
        target = "acc" if i == 0 else "part"
        if kind == "conv":
            lines.append(f"np.matmul({s}, {operand}, out={target})")
        else:
            lines.append(f"np.matmul({operand}, {s}, out={target})")
        if i:
            lines.append("np.add(acc, part, out=acc)")
    return consts, lines


def bind_int_kernel(
    kind: str,
    impl: str,
    shape: tuple,
    acc_dtype: np.dtype,
    flags: tuple,
    group_shifts: tuple,
    consts: dict,
):
    """Fetch (compiling on first use) the generated kernel for one int op.

    Args:
        kind: ``"conv"`` (``W @ x`` orientation) or ``"linear"``
            (``x @ W``).
        impl: ``"intq_gemm"`` or ``"intq_shift"``.
        shape: Shape signature for the cache key (batch, layer and output
            geometry) — the source itself depends only on the structure.
        acc_dtype: MAC accumulator dtype (int32 when the static bound
            allows it, else int64).
        flags: Structural source flags out of ``("dead", "gb")``.
        group_shifts: Distinct exponent shifts of the packed codes (shift
            variant only; ``()`` for GEMM).
        consts: Bind-time constant arrays (``W``/``S*``, ``M0``, ``RND``,
            ``SH``, optional ``DMAP``/``GB``).

    Returns:
        ``kernel(x, [shifted, part,] acc, acc64, out)`` — a compiled
        closure over ``consts``; ``acc64`` may alias ``acc`` when the
        accumulator is already int64.
    """
    cast = np.dtype(acc_dtype) != np.dtype(np.int64)
    mac_consts, mac_lines = _mac_lines(kind, impl, group_shifts)
    const_names = mac_consts + ["M0", "RND", "SH"]
    if "dead" in flags:
        const_names.append("DMAP")
    if "gb" in flags:
        const_names.append("GB")
    params = ["x"]
    if impl == "intq_shift":
        params += ["shifted", "part"]
    params += ["acc", "acc64", "out"]
    lines = mac_lines + _epilogue_lines(flags, cast)
    spec = KernelSpec(
        kind=kind,
        impl=impl,
        shape=tuple(shape),
        dtype=str(np.dtype(acc_dtype)),
        flags=tuple(sorted(flags)) + (("cast",) if cast else ()),
        epilogue=(("rq",),),
        extra=tuple(group_shifts),
    )
    factory = KERNEL_CACHE.get(spec, _build_source(const_names, params, lines))
    return factory(consts)
