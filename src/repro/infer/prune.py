"""Plan-time dead-filter elimination with exact output parity.

A quantized filter with ``k_i = 0`` has an all-zero weight row: after BN
folding its output channel is the folded bias, a *constant* at every spatial
position (zero weights see nothing through padding either).  Removing the
filter therefore cannot change the network's output as long as that constant
keeps flowing downstream.  This pass makes the plan physically smaller:

1. per producer conv/linear op, find the dead rows of the folded weights;
2. walk the consumer graph pushing each dead channel's constant through the
   elementwise/pool ops in between, *replicating each op's exact arithmetic*
   on the constants (LeakyReLU's two-ufunc max, ActQuant's rint/clip chain,
   AvgPool's sequential accumulation) so parity is preserved to the same
   summation-order tolerance as the rest of the engine;
3. at each consuming conv/linear, split off the weight columns that read the
   dead channels: for a linear, their contribution ``consts @ W_dead`` is a
   fixed vector folded into the bias; for a conv with padding the
   contribution varies near the borders, so the removed columns and the
   constants are kept on the op, which materializes the resulting per-filter
   bias *map* lazily per input size (:meth:`ConvOp._dead_bias_map`);
4. slim the producer's rows, bias, and any standalone affine on the path.

A producer is left untouched ("blocked") when a dead channel reaches the
plan output, a residual :class:`AddOp`, a :class:`FallbackOp`, or a shape
the walk cannot reason about — correctness first, pruning second.  Rows
whose live columns are all zero but whose *removed* columns are not stay
unpruned too: their output is a bias map, not a single constant.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompileError
from repro.infer.fold import dead_filter_rows, slim_filter_rows
from repro.infer.plan import (
    ActQuantOp,
    AffineOp,
    AvgPoolOp,
    ConvOp,
    FlattenOp,
    GlobalAvgPoolOp,
    LeakyReluOp,
    LinearOp,
    MaxPoolOp,
)

__all__ = ["prune_plan"]


def _propagate_constants(op, consts: np.ndarray) -> np.ndarray:
    """Push per-channel constants through one elementwise/pool op.

    Mirrors the op's run() arithmetic operation-for-operation so constant
    folding rounds exactly like execution would have.
    """
    if isinstance(op, LeakyReluOp):
        if op.slope == 0.0:
            return np.maximum(consts, 0.0)
        return np.maximum(consts, np.multiply(consts, op.slope))
    if isinstance(op, ActQuantOp):
        out = np.multiply(consts, 1.0 / op.step)
        np.rint(out, out=out)
        np.clip(out, -op.half, op.half - 1, out=out)
        out *= op.step
        return out
    if isinstance(op, AvgPoolOp):
        # run() accumulates the k*k equal window values sequentially, then
        # scales — replay the same chain for identical rounding.
        total = consts.copy()
        for _ in range(op.kernel * op.kernel - 1):
            total = total + consts
        total *= 1.0 / (op.kernel * op.kernel)
        return total
    # MaxPool: max of equal constants; GlobalAvgPool: mean of equal values
    # (~1 ulp from pairwise summation, inside the engine's parity budget);
    # Flatten: pure reshape.
    return consts


def _trace(producer, out_slot: int, consumers: dict, dead: np.ndarray, consts0: np.ndarray):
    """Follow the dead channels downstream.

    Returns ``(affine_ops, terminals)`` — standalone affines to slim and
    ``(op, consts_at_input)`` conv/linear endpoints — or a string reason
    when pruning must be skipped.
    """
    affines: list[AffineOp] = []
    terminals: list[tuple[object, np.ndarray]] = []
    stack: list[tuple[int, np.ndarray]] = [(producer.dst, consts0)]
    while stack:
        slot, consts = stack.pop()
        if slot == out_slot:
            return "feeds the plan output"
        for op in consumers.get(slot, ()):
            if isinstance(op, (ConvOp, LinearOp)):
                terminals.append((op, consts))
            elif isinstance(op, AffineOp):
                new = np.multiply(consts, op.scale[dead])
                new += op.shift[dead]
                affines.append(op)
                stack.append((op.dst, new))
            elif isinstance(
                op, (LeakyReluOp, ActQuantOp, MaxPoolOp, AvgPoolOp, GlobalAvgPoolOp, FlattenOp)
            ):
                stack.append((op.dst, _propagate_constants(op, consts)))
            else:
                return f"consumed by {type(op).__name__}"
    return affines, terminals


def _slim_conv_input(op: ConvOp, channels: int, dead: np.ndarray, keep: np.ndarray,
                     consts: np.ndarray, dtype: np.dtype) -> None:
    """Drop the dead input-channel blocks from a consuming conv."""
    kk = op.kernel * op.kernel
    filters = op.weight2d.shape[0]
    w3 = op.weight2d.reshape(filters, channels, kk)
    dead_w = np.ascontiguousarray(w3[:, dead].reshape(filters, dead.size * kk))
    op.weight2d = np.ascontiguousarray(w3[:, keep].reshape(filters, keep.size * kk))
    op.in_live_cols = (keep[:, None] * kk + np.arange(kk)).ravel()
    if dead_w.any() and consts.any():
        op.dead_in_weight2d = dead_w.astype(dtype, copy=False)
        op.dead_in_consts = consts.astype(dtype, copy=False)
        op.dead_maps = {}


def _slim_linear_input(op: LinearOp, channels: int, dead: np.ndarray, keep: np.ndarray,
                       consts: np.ndarray, dtype: np.dtype) -> None:
    """Fold dead-feature contributions into the bias and drop the rows."""
    features, out_features = op.weight_t.shape
    hw = features // channels
    w3 = op.weight_t.reshape(channels, hw, out_features)
    dead_w = w3[dead].reshape(dead.size * hw, out_features)
    if dead_w.any() and consts.any():
        # Spatially uniform: every one of the hw positions of a dead
        # channel carries the same constant.
        contribution = np.repeat(consts, hw) @ dead_w
        if op.bias is None:
            op.bias = contribution.astype(dtype, copy=False)
        else:
            op.bias = (op.bias + contribution).astype(dtype, copy=False)
    op.weight_t = np.ascontiguousarray(w3[keep].reshape(keep.size * hw, out_features))
    op.in_live_cols = (keep[:, None] * hw + np.arange(hw)).ravel()


def prune_plan(ops: list, bindings: list, out_slot: int, dtype: np.dtype, config) -> dict:
    """Eliminate dead filters from a freshly emitted op list, in place.

    Processes producers in emission (topological) order, so a conv both
    slimmed on its inputs by an upstream producer and pruned on its own
    rows sees each edit exactly once.  Returns a report with per-op-index
    ``{"dead_at_build", "pruned", "blocked"}`` entries and the total
    ``pruned_filters`` count.
    """
    consumers: dict[int, list] = {}
    for op in ops:
        consumers.setdefault(op.src, []).append(op)
        src2 = getattr(op, "src2", None)
        if src2 is not None:
            consumers.setdefault(src2, []).append(op)
    report: dict = {"pruned_filters": 0, "layers": {}}
    for binding in bindings:
        producer = ops[binding.op_index]
        if isinstance(producer, ConvOp):
            w = producer.weight2d
        elif isinstance(producer, LinearOp):
            w = producer.weight_t.T
        else:
            continue
        dead_mask = np.zeros(w.shape[0], dtype=bool)
        dead_mask[dead_filter_rows(w)] = True
        if isinstance(producer, ConvOp) and producer.dead_in_weight2d is not None:
            # A row that kept no live weight but reads pruned channels
            # outputs a spatially-varying bias map, not a constant.
            dead_mask &= ~producer.dead_in_weight2d.any(axis=1)
        dead = np.flatnonzero(dead_mask)
        entry = {"dead_at_build": int(dead.size), "pruned": 0, "blocked": None}
        report["layers"][binding.op_index] = entry
        if dead.size == 0:
            continue
        channels = int(w.shape[0])
        if dead.size == channels:
            if config.all_dead == "error":
                raise CompileError(
                    f"all {channels} filters of {type(binding.layer).__name__} at op "
                    f"{binding.op_index} are dead (k_i = 0); the layer outputs a "
                    "constant — retrain, lower thresholds, or compile with "
                    "PlanConfig(all_dead='keep')"
                )
            entry["blocked"] = "all filters dead (kept as constant layer)"
            continue
        bias = producer.bias
        consts0 = (
            np.zeros(dead.size, dtype=dtype) if bias is None else bias[dead].astype(dtype)
        )
        traced = _trace(producer, out_slot, consumers, dead, consts0)
        if isinstance(traced, str):
            entry["blocked"] = traced
            continue
        affines, terminals = traced
        keep = np.flatnonzero(~dead_mask)
        for terminal, consts in terminals:
            if isinstance(terminal, ConvOp):
                in_channels = terminal.weight2d.shape[1] // (terminal.kernel * terminal.kernel)
                if in_channels != channels:
                    entry["blocked"] = "consumer channel count mismatch"
                    break
                if terminal.in_live_cols is not None:
                    entry["blocked"] = "consumer input already slimmed"
                    break
            else:
                if terminal.weight_t.shape[0] % channels != 0:
                    entry["blocked"] = "flattened features not divisible by channel count"
                    break
                if terminal.in_live_cols is not None:
                    entry["blocked"] = "consumer input already slimmed"
                    break
        if entry["blocked"] is not None:
            continue
        # Point of no return: apply every edit of this producer's pruning.
        if isinstance(producer, ConvOp):
            producer.weight2d, producer.bias = slim_filter_rows(
                producer.weight2d, producer.bias, keep
            )
            if producer.dead_in_weight2d is not None:
                producer.dead_in_weight2d = np.ascontiguousarray(
                    producer.dead_in_weight2d[keep]
                )
                producer.dead_maps = {}
        else:
            producer.weight_t = np.ascontiguousarray(producer.weight_t[:, keep])
            if producer.bias is not None:
                producer.bias = np.ascontiguousarray(producer.bias[keep])
        producer.live_rows = keep
        for affine in affines:
            affine.scale = np.ascontiguousarray(affine.scale[keep])
            affine.shift = np.ascontiguousarray(affine.shift[keep])
        for terminal, consts in terminals:
            if isinstance(terminal, ConvOp):
                _slim_conv_input(terminal, channels, dead, keep, consts, dtype)
            else:
                _slim_linear_input(terminal, channels, dead, keep, consts, dtype)
        entry["pruned"] = int(dead.size)
        report["pruned_filters"] += int(dead.size)
    return report
