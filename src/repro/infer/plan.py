"""Flat execution plans: compiling a model into grad-free ndarray ops.

:func:`compile_network` walks a module tree once and emits a flat list of
slot-addressed ops — a tiny SSA-style program.  Slot 0 holds the batch input;
every op reads one or two slots and writes one.  Compilation is where all the
inference-time work that eager evaluation repeats per batch happens exactly
once:

* quantized weights are pulled from the layer's version-keyed cache
  (:meth:`~repro.quant.qlayers.QuantizedLayer.quantized_weight`) and
  pre-flattened for the im2col matmul;
* eval-mode batch-norm is folded into the preceding convolution's effective
  per-filter scale and bias (see :mod:`repro.infer.fold`), so BN ops vanish;
* elementwise ops (Leaky ReLU, activation quantizers) are marked in-place
  wherever their input buffer has no other reader;
* with :class:`PlanConfig` (the default), dead quantized filters
  (``k_i = 0`` — all-zero rows) are physically eliminated and the channel
  slimming propagated downstream (:mod:`repro.infer.prune`), shift-plane
  kernels are attached where the quantized structure supports them
  (:mod:`repro.infer.shift_plane`), and a small calibration pass picks the
  faster kernel per layer (:mod:`repro.infer.autotune`).

Execution uses an :class:`ExecutionContext` of preallocated scratch buffers
(im2col columns, padded inputs, matmul outputs) that are reused across
batches, so steady-state inference performs no large allocations and builds
no autograd graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import CompileError, ConfigurationError, ShapeError, StalePlanError
from repro.infer.fold import (
    bn_eval_affine,
    bn_fingerprint,
    dead_filter_rows,
    fold_scale_into_weight,
)
from repro.nn.layers.activation import LeakyReLU, ReLU
from repro.nn.layers.container import Flatten, Identity, Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad
from repro.quant.activations import QuantizedActivation
from repro.quant.qlayers import QConv2d, QLinear
from repro.utils.profiler import active_profiler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.infer.shift_plane import ShiftPlaneSet

__all__ = [
    "ExecutionContext",
    "ExecutionPlan",
    "PlanConfig",
    "compile_network",
    "execute_ops",
    "plan_dtype",
]

_KERNELS = ("auto", "dense", "shift_plane")
_ALL_DEAD = ("keep", "error")
_COMPUTE_DTYPES = ("float", "int8")
_BACKENDS = ("auto", "native", "numpy")


@dataclass(frozen=True)
class PlanConfig:
    """Knobs for the sparsity-aware compilation passes.

    Attributes:
        prune: Eliminate dead filters (``k_i = 0`` / all-zero quantized
            rows) at plan time and propagate the channel slimming through
            downstream ops.  Output parity with eager is preserved exactly
            (the dead filters' constant contributions are folded into
            downstream biases).
        all_dead: Policy for a layer whose filters are *all* dead:
            ``"keep"`` leaves the layer in place as a constant producer
            (passthrough), ``"error"`` raises
            :class:`~repro.errors.CompileError`.
        kernel: Per-layer compute kernel: ``"dense"`` forces the plain
            im2col GEMM everywhere, ``"shift_plane"`` forces the
            power-of-two plane decomposition wherever the quantizer
            supports it, and ``"auto"`` (default) builds shift planes for
            layers that still carry dead rows after pruning and lets the
            calibration pass pick the faster kernel per layer.
        autotune_batch: Batch size of the synthetic calibration input used
            to time kernel candidates (``"auto"`` only).
        autotune_reps: Timing repetitions per kernel candidate; the best
            (minimum) time wins.
        trace: Execute through shape-specialized traced programs
            (:mod:`repro.infer.trace` / :mod:`repro.infer.fuse`): the plan
            is recorded once per input shape into generated fused kernels
            with pre-bound buffers.  Bitwise-identical to the op-by-op
            interpreter; shapes that fail to trace fall back transparently.
        fuse: Run the IR optimization passes on traced programs — epilogue
            fusion (conv/linear→LeakyReLU→ActQuant collapse into one kernel
            call), dead-buffer elimination, liveness-based register reuse
            and cache-sized batch blocking.  ``trace=True, fuse=False``
            isolates the codegen speedup from the fusion speedup (ablation
            knob); with ``trace=False`` this has no effect.
        dtype: Compute domain.  ``"float"`` (default) runs the plan in its
            floating-point dtype; ``"int8"`` lowers the compiled plan into
            an integer-only program (:mod:`repro.infer.intq`): bit-packed
            shift-code weights, calibrated fixed-point activation grids and
            multiplier+shift requantization — zero float multiplies inside
            conv/linear kernels.  Requires the model to declare
            ``in_channels``/``image_size`` (or an explicit calibration
            batch via :func:`repro.infer.intq.build_intq_program`).
        backend: Kernel execution backend.  ``"numpy"`` forces the numpy
            codegen everywhere; ``"native"`` uses the C backend
            (:mod:`repro.infer.native`) wherever it applies, falling back
            per kernel where it cannot; ``"auto"`` (default) does the same
            but additionally lets autotune time C against numpy per
            candidate layer and record the winner.  Native kernels
            self-verify bitwise against the numpy codegen on first call, so
            every setting produces identical results — on hosts without a C
            toolchain all three behave like ``"numpy"`` (logged once).
        threads: Intra-op thread count for native kernels.  ``"auto"``
            (default) reads ``REPRO_NUM_THREADS`` — unset or ``< 2`` keeps
            the serial untiled kernels (the historical behavior).  An
            explicit integer ``N >= 1`` binds the *tiled* threaded kernel
            variants (:mod:`repro.infer.native.threading`) with ``N``
            participants.  The tile grid depends only on problem shapes,
            every output element has exactly one writer, and the
            per-element operation order matches the serial kernel — so
            results are **bitwise identical for every thread count**
            (``threads=1`` runs the same tiles inline).  Ignored by the
            numpy backend; if the worker pool cannot start, kernels fall
            back to serial execution of the identical tiles.
    """

    prune: bool = True
    all_dead: str = "keep"
    kernel: str = "auto"
    autotune_batch: int = 16
    autotune_reps: int = 3
    trace: bool = True
    fuse: bool = True
    dtype: str = "float"
    backend: str = "auto"
    threads: int | str = "auto"

    def __post_init__(self) -> None:
        if self.kernel not in _KERNELS:
            raise ConfigurationError(f"unknown kernel {self.kernel!r}; use one of {_KERNELS}")
        if self.backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; use one of {_BACKENDS}"
            )
        if self.dtype not in _COMPUTE_DTYPES:
            raise ConfigurationError(
                f"unknown compute dtype {self.dtype!r}; use one of {_COMPUTE_DTYPES}"
            )
        if self.all_dead not in _ALL_DEAD:
            raise ConfigurationError(
                f"unknown all_dead policy {self.all_dead!r}; use one of {_ALL_DEAD}"
            )
        if self.autotune_batch < 1 or self.autotune_reps < 1:
            raise ConfigurationError("autotune_batch and autotune_reps must be >= 1")
        t = self.threads
        if isinstance(t, bool) or not (
            t == "auto" or (isinstance(t, int) and t >= 1)
        ):
            raise ConfigurationError(
                f"threads must be 'auto' or an int >= 1, got {self.threads!r}"
            )


class ExecutionContext:
    """Per-worker slot table and scratch-buffer pool.

    Buffers are keyed by ``(op_index, role)`` and reallocated only when the
    requested shape or dtype changes (e.g. the final partial batch); a
    context must never be shared between concurrently executing workers.
    """

    def __init__(self) -> None:
        self.slots: dict[int, np.ndarray] = {}
        self._buffers: dict[tuple[int, str], np.ndarray] = {}
        # Bound traced-program states (registers + prebound kernel thunks),
        # keyed by TracedProgram.uid; see repro.infer.fuse.TracedProgram.run.
        self._traced: dict[int, Any] = {}

    def buffer(
        self,
        op_index: int,
        role: str,
        shape: tuple[int, ...],
        dtype: np.dtype = np.float64,
        zero: bool = False,
    ) -> np.ndarray:
        """Return a reusable buffer of ``shape``/``dtype`` for one op."""
        key = (op_index, role)
        buf = self._buffers.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
            self._buffers[key] = buf
        return buf


# -- ops ---------------------------------------------------------------------


def _im2col_single(x: np.ndarray, k: int, s: int, p: int) -> tuple[np.ndarray, int, int]:
    """One-off im2col (allocating, no context) — same layout as ConvOp.run.

    Used to materialize the dead-input bias maps at first execution; the hot
    path keeps using the buffer-pooled version inside :meth:`ConvOp.run`.
    """
    n, c, h, w = x.shape
    if k == 1 and s == 1 and p == 0:
        return x.reshape(n, c, h * w), h, w
    if p:
        xp = np.zeros((n, c, h + 2 * p, w + 2 * p), x.dtype)
        xp[:, :, p:-p, p:-p] = x
        x = xp
    oh = (h + 2 * p - k) // s + 1
    ow = (w + 2 * p - k) // s + 1
    sn, sc, sh, sw = x.strides
    windows = as_strided(
        x,
        shape=(n, c, k, k, oh, ow),
        strides=(sn, sc, sh, sw, sh * s, sw * s),
        writeable=False,
    )
    cols = np.empty((n, c * k * k, oh * ow), x.dtype)
    cols.reshape(n, c, k, k, oh, ow)[...] = windows
    return cols, oh, ow


@dataclass
class ConvOp:
    """Fused convolution: im2col matmul + folded BN scale/shift epilogue.

    Sparsity-aware extensions (set by the compilation passes, all optional):

    * ``impl`` selects the compute kernel — ``"dense"`` (one GEMM) or
      ``"shift_plane"`` (sum of per-level plane GEMMs over ``shift``);
    * ``live_rows`` / ``in_live_cols`` record which original filter rows /
      weight columns survived dead-filter pruning (``None`` = all);
    * ``dead_in_weight2d`` / ``dead_in_consts`` hold the removed input
      columns and the constant channel values feeding them: their product
      is a spatially-varying per-filter bias map (padding makes border
      pixels see fewer constant taps), materialized lazily per input
      spatial size and cached in ``dead_maps``.
    """

    index: int
    src: int
    dst: int
    weight2d: np.ndarray  # (F, C*kh*kw), quantized and BN-scale-folded
    bias: np.ndarray | None  # (F,) — conv bias and/or folded BN shift
    kernel: int
    stride: int
    padding: int
    impl: str = "dense"
    shift: "ShiftPlaneSet | None" = None
    live_rows: np.ndarray | None = None
    in_live_cols: np.ndarray | None = None
    dead_in_weight2d: np.ndarray | None = None
    dead_in_consts: np.ndarray | None = None
    dead_maps: dict = field(default_factory=dict, repr=False)
    #: Per-op backend override ("auto" defers to the plan config; autotune
    #: under backend="auto" writes its measured winner here).
    backend: str = "auto"

    def _dead_bias_map(self, h: int, w: int) -> np.ndarray:
        """(F, oh*ow) constant contribution of the pruned input channels."""
        cached = self.dead_maps.get((h, w))
        if cached is None:
            c_dead = self.dead_in_consts.shape[0]
            plane = np.empty((1, c_dead, h, w), self.dead_in_weight2d.dtype)
            plane[0] = self.dead_in_consts[:, None, None]
            cols, _, _ = _im2col_single(plane, self.kernel, self.stride, self.padding)
            cached = np.matmul(self.dead_in_weight2d, cols[0])
            # Benign race under concurrent contexts: idempotent value, and
            # plain dict assignment keeps the op picklable for the process
            # pool backend (no locks on ops).
            self.dead_maps[(h, w)] = cached
        return cached

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        n, c, h, w = x.shape
        k, s, p = self.kernel, self.stride, self.padding
        f = self.weight2d.shape[0]
        if k == 1 and s == 1 and p == 0:
            cols, oh, ow = x.reshape(n, c, h * w), h, w
        else:
            if p:
                xp = ctx.buffer(self.index, "pad", (n, c, h + 2 * p, w + 2 * p), x.dtype, zero=True)
                xp[:, :, p:-p, p:-p] = x
                x = xp
            oh = (h + 2 * p - k) // s + 1
            ow = (w + 2 * p - k) // s + 1
            sn, sc, sh, sw = x.strides
            windows = as_strided(
                x,
                shape=(n, c, k, k, oh, ow),
                strides=(sn, sc, sh, sw, sh * s, sw * s),
                writeable=False,
            )
            cols = ctx.buffer(self.index, "cols", (n, c * k * k, oh * ow), x.dtype)
            cols.reshape(n, c, k, k, oh, ow)[...] = windows
        out = ctx.buffer(self.index, "out", (n, f, oh * ow), x.dtype)
        if self.impl == "shift_plane" and self.shift is not None:
            out[...] = 0.0
            for level, plane in enumerate(self.shift.planes):
                if plane.col_index is None:
                    sel = cols
                else:
                    sel = ctx.buffer(
                        self.index, f"cols{level}", (n, plane.col_index.size, oh * ow), x.dtype
                    )
                    np.take(cols, plane.col_index, axis=1, out=sel)
                if plane.rows is None:
                    part = ctx.buffer(self.index, f"part{level}", (n, f, oh * ow), x.dtype)
                    np.matmul(plane.weight, sel, out=part)
                    out += part
                else:
                    part = ctx.buffer(
                        self.index, f"part{level}", (n, plane.rows.size, oh * ow), x.dtype
                    )
                    np.matmul(plane.weight, sel, out=part)
                    out[:, plane.rows, :] += part
        else:
            np.matmul(self.weight2d, cols, out=out)
        if self.bias is not None:
            out += self.bias[:, None]
        if self.dead_in_weight2d is not None:
            out += self._dead_bias_map(h, w)
        ctx.slots[self.dst] = out.reshape(n, f, oh, ow)


@dataclass
class LinearOp:
    """Affine map ``x @ W.T + b`` with the quantized weight cached.

    Carries the same sparsity extensions as :class:`ConvOp` (``impl``,
    ``shift``, ``live_rows``, ``in_live_cols``); pruned input features need
    no bias *map* here — their constant contribution is spatially uniform
    and is folded straight into ``bias`` at prune time.
    """

    index: int
    src: int
    dst: int
    weight_t: np.ndarray  # (in, out) — pre-transposed quantized weight
    bias: np.ndarray | None
    impl: str = "dense"
    shift: "ShiftPlaneSet | None" = None
    live_rows: np.ndarray | None = None
    in_live_cols: np.ndarray | None = None
    #: Per-op backend override; see :class:`ConvOp`.
    backend: str = "auto"

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        out = ctx.buffer(self.index, "out", (x.shape[0], self.weight_t.shape[1]), x.dtype)
        if self.impl == "shift_plane" and self.shift is not None:
            out[...] = 0.0
            for level, plane in enumerate(self.shift.planes):
                if plane.col_index is None:
                    sel = x
                else:
                    sel = ctx.buffer(
                        self.index, f"in{level}", (x.shape[0], plane.col_index.size), x.dtype
                    )
                    np.take(x, plane.col_index, axis=1, out=sel)
                if plane.rows is None:
                    part = ctx.buffer(
                        self.index, f"part{level}", (x.shape[0], out.shape[1]), x.dtype
                    )
                    np.matmul(sel, plane.weight, out=part)
                    out += part
                else:
                    part = ctx.buffer(
                        self.index, f"part{level}", (x.shape[0], plane.rows.size), x.dtype
                    )
                    np.matmul(sel, plane.weight, out=part)
                    out[:, plane.rows] += part
        else:
            np.matmul(x, self.weight_t, out=out)
        if self.bias is not None:
            out += self.bias
        ctx.slots[self.dst] = out


@dataclass
class LeakyReluOp:
    """Leaky ReLU (slope 0 gives plain ReLU); in-place when safe.

    Uses ``max(x, slope*x)``, valid for ``0 <= slope < 1``, which runs as
    two allocation-free ufunc passes instead of a boolean-mask select.
    """

    index: int
    src: int
    dst: int
    slope: float
    inplace: bool = False

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        if self.slope == 0.0:
            out = x if self.inplace else ctx.buffer(self.index, "out", x.shape, x.dtype)
            np.maximum(x, 0.0, out=out)
        else:
            tmp = ctx.buffer(self.index, "out", x.shape, x.dtype)
            np.multiply(x, self.slope, out=tmp)
            out = x if self.inplace else tmp
            np.maximum(x, tmp, out=out)
        ctx.slots[self.dst] = out


@dataclass
class ActQuantOp:
    """Symmetric fixed-point activation quantization (rint + saturate)."""

    index: int
    src: int
    dst: int
    step: float
    half: float  # 2**(bits-1)
    inplace: bool = False

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        out = x if self.inplace else ctx.buffer(self.index, "out", x.shape, x.dtype)
        np.multiply(x, 1.0 / self.step, out=out)
        np.rint(out, out=out)
        np.clip(out, -self.half, self.half - 1, out=out)
        out *= self.step
        ctx.slots[self.dst] = out


@dataclass
class AffineOp:
    """Standalone per-channel scale/shift (a BN with no conv to fold into)."""

    index: int
    src: int
    dst: int
    scale: np.ndarray  # (C,)
    shift: np.ndarray  # (C,)
    inplace: bool = False

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        out = x if self.inplace else ctx.buffer(self.index, "out", x.shape, x.dtype)
        np.multiply(x, self.scale[:, None, None], out=out)
        out += self.shift[:, None, None]
        ctx.slots[self.dst] = out


def _pool_views(x: np.ndarray, kernel: int, stride: int):
    """The ``kernel**2`` shifted strided views covering each pool window.

    Reducing across k*k same-shaped views with binary ufuncs is much faster
    than one ``np.max``/``np.mean`` over an ``as_strided`` 6-D window array,
    whose non-contiguous reduction axes defeat vectorization.
    """
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    views = [
        x[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
        for i in range(kernel)
        for j in range(kernel)
    ]
    return views, oh, ow


@dataclass
class MaxPoolOp:
    index: int
    src: int
    dst: int
    kernel: int
    stride: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        views, oh, ow = _pool_views(x, self.kernel, self.stride)
        out = ctx.buffer(self.index, "out", x.shape[:2] + (oh, ow), x.dtype)
        out[...] = views[0]
        for v in views[1:]:
            np.maximum(out, v, out=out)
        ctx.slots[self.dst] = out


@dataclass
class AvgPoolOp:
    index: int
    src: int
    dst: int
    kernel: int
    stride: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        views, oh, ow = _pool_views(x, self.kernel, self.stride)
        out = ctx.buffer(self.index, "out", x.shape[:2] + (oh, ow), x.dtype)
        out[...] = views[0]
        for v in views[1:]:
            out += v
        out *= 1.0 / (self.kernel * self.kernel)
        ctx.slots[self.dst] = out


@dataclass
class GlobalAvgPoolOp:
    index: int
    src: int
    dst: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        out = ctx.buffer(self.index, "out", x.shape[:2], x.dtype)
        np.mean(x, axis=(2, 3), out=out)
        ctx.slots[self.dst] = out


@dataclass
class AddOp:
    """Residual addition of two slots."""

    index: int
    src: int
    src2: int
    dst: int

    def run(self, ctx: ExecutionContext) -> None:
        a, b = ctx.slots[self.src], ctx.slots[self.src2]
        out = ctx.buffer(self.index, "out", a.shape, a.dtype)
        np.add(a, b, out=out)
        ctx.slots[self.dst] = out


@dataclass
class FlattenOp:
    index: int
    src: int
    dst: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        ctx.slots[self.dst] = x.reshape(x.shape[0], -1)


@dataclass
class FallbackOp:
    """Escape hatch: run an uncompilable module's eager forward (no grad)."""

    index: int
    src: int
    dst: int
    module: Module

    def run(self, ctx: ExecutionContext) -> None:
        with no_grad():
            ctx.slots[self.dst] = self.module(Tensor(ctx.slots[self.src])).data


def execute_ops(
    ops: list, x: np.ndarray, ctx: ExecutionContext, out_slot: int, dtype: np.dtype = np.float64
) -> np.ndarray:
    """Run a compiled op list on one batch; returns the output slot's buffer.

    The returned array is owned by ``ctx`` and only valid until the next
    call with the same context — callers that keep results across batches
    must copy.
    """
    ctx.slots[0] = np.asarray(x, dtype=dtype)
    profiler = active_profiler()
    if profiler is None:
        for op in ops:
            op.run(ctx)
    else:
        for op in ops:
            with profiler.phase(f"op{op.index}:{type(op).__name__}"):
                op.run(ctx)
    return ctx.slots[out_slot]


# -- weight bindings (cache invalidation) ------------------------------------


@dataclass
class WeightBinding:
    """Link from one plan op back to the layer (+BN) its arrays came from."""

    op_index: int
    layer: Module  # QConv2d / QLinear / Conv2d / Linear
    bn: BatchNorm2d | None
    built_key: tuple = ()
    built_fp: tuple = ()
    built_dead: tuple = ()  # dead-row indices of the folded weights at build

    def current_key(self) -> tuple:
        """Version vector of every tensor the op's arrays derive from."""
        key: list[Any] = [self.layer.weight.version]
        thresholds = getattr(self.layer, "thresholds", None)
        key.append(-1 if thresholds is None else thresholds.version)
        bias = getattr(self.layer, "bias", None)
        key.append(-1 if bias is None else bias.version)
        if self.bn is not None:
            key.extend(bn_fingerprint(self.bn))
        return tuple(key)

    def current_fp(self) -> tuple:
        """Content fingerprint catching raw ``.data`` mutations that bypass
        the version counters.  Covers the thresholds too: for FLightNN a
        raw threshold edit changes the quantized weights (and possibly the
        dead-filter structure) without touching the master weight."""
        w = self.layer.weight.data
        fp: list[float] = [float(w.sum()), float(np.abs(w).sum())]
        thresholds = getattr(self.layer, "thresholds", None)
        if thresholds is not None:
            t = thresholds.data
            fp.extend([float(t.sum()), float(np.abs(t).sum())])
        return tuple(fp)

    def current_dead(self) -> tuple:
        """Dead-row indices the layer's *current* folded weights would have.

        This is the plan's structural signature: pruning decisions and shift
        planes were derived from it, so a refresh that changes it (e.g. new
        thresholds moving the k histogram) must rebuild the whole plan
        rather than patch arrays into the old channel layout.
        """
        if hasattr(self.layer, "kernel_size"):
            weight2d, _ = _conv_arrays(self.layer, self.bn, np.float64)
            return tuple(int(i) for i in dead_filter_rows(weight2d))
        weight_t, _ = _linear_arrays(self.layer, np.float64)
        return tuple(int(i) for i in dead_filter_rows(weight_t.T))


class ExecutionPlan:
    """A compiled model: flat op program + weight bindings + output slot.

    ``dtype`` is the compute precision of the whole plan.  The default is
    float64, which reproduces the eager forward bit-for-bit up to GEMM
    summation order (logits agree to ~1e-13); :func:`plan_dtype` describes
    the opt-in float32 deployment mode for quantized networks, which halves
    memory traffic at the cost of occasional one-LSB activation rounding
    flips.
    """

    def __init__(
        self,
        ops: list,
        out_slot: int,
        bindings: list[WeightBinding],
        dtype: np.dtype = np.float64,
        config: PlanConfig | None = None,
        layer_info: list[dict] | None = None,
        pruned: bool = False,
    ) -> None:
        self.ops = ops
        self.out_slot = out_slot
        self.bindings = bindings
        self.dtype = np.dtype(dtype)
        self.config = config or PlanConfig()
        #: Per weighted layer: kernel choice, k histogram, pruned counts…
        #: (see :func:`_collect_layer_info`); surfaced through
        #: :meth:`summary` into ``/metrics``.
        self.layer_info = layer_info or []
        #: Whether dead-filter elimination removed anything.  A pruned plan
        #: contains cross-layer constant folds, so stale weights require a
        #: full recompile instead of a per-binding array patch.
        self.pruned = pruned
        #: Traced programs per input shape (lazy; see :meth:`execute`) and
        #: shapes that failed to trace (memoized so they don't retry per
        #: batch).  Dropped wholesale by :meth:`invalidate_traced`.
        self._traced: dict[tuple, Any] = {}
        self._trace_failed: set[tuple] = set()
        #: Integer-only twin program (:mod:`repro.infer.intq`), attached by
        #: :func:`compile_network` when ``config.dtype == "int8"``; when
        #: set, :meth:`execute` routes batches through it.
        self.intq: Any = None
        #: Resolved intra-op thread count: 0 = serial untiled native
        #: kernels (legacy), N >= 1 = tiled threaded variants with N
        #: participants.  Resolved once at plan construction so every
        #: traced program, intq twin and serving worker binds consistently.
        try:
            from repro.infer.native.threading import runtime as _mtrt

            self.intra_threads = _mtrt.resolve_threads(
                getattr(self.config, "threads", "auto")
            )
        except Exception:  # pragma: no cover - defensive
            self.intra_threads = 0

    def __len__(self) -> int:
        return len(self.ops)

    def summary(self) -> dict:
        """Plan metadata: kernel choices, k histograms, pruning counts."""
        kernels: dict[str, int] = {}
        k_hist: list[int] = []
        filters_total = pruned_total = dead_remaining = 0
        for entry in self.layer_info:
            kernels[entry["kernel"]] = kernels.get(entry["kernel"], 0) + 1
            filters_total += entry["filters"]
            pruned_total += entry["pruned_filters"]
            dead_remaining += entry["dead_remaining"]
            hist = entry.get("k_hist")
            if hist:
                if len(hist) > len(k_hist):
                    k_hist.extend([0] * (len(hist) - len(k_hist)))
                for k, count in enumerate(hist):
                    k_hist[k] += count
        programs = [
            {**p.stats, "backends": p.backend_counts()} for p in self._traced.values()
        ]
        from repro.infer.kernels import cache_stats

        try:
            from repro.infer.native import binding as _native_binding

            native_status = _native_binding.status()
        except Exception:  # pragma: no cover - defensive
            native_status = {"available": False, "reason": "native package unavailable"}
        return {
            "dtype": str(self.dtype),
            "compute_dtype": "int8" if self.intq is not None else str(self.dtype),
            "intq": self.intq.summary_block() if self.intq is not None else {"enabled": False},
            "ops": len(self.ops),
            "pruned": self.pruned,
            "filters_total": filters_total,
            "pruned_filters_total": pruned_total,
            "dead_filters_remaining": dead_remaining,
            "kernels": kernels,
            "k_hist": k_hist,
            "intra_threads": getattr(self, "intra_threads", 0),
            "config": {
                "prune": self.config.prune,
                "all_dead": self.config.all_dead,
                "kernel": self.config.kernel,
                "trace": self.config.trace,
                "fuse": self.config.fuse,
                "dtype": self.config.dtype,
                "backend": getattr(self.config, "backend", "auto"),
                "threads": getattr(self.config, "threads", "auto"),
            },
            "native": native_status,
            "trace": {
                "enabled": self.config.trace,
                "fuse": self.config.fuse,
                "programs": programs,
                "fused_elementwise_total": sum(p["fused_elementwise"] for p in programs),
                "eliminated_buffers_total": sum(p["eliminated_buffers"] for p in programs),
                "peak_intermediate_bytes": max(
                    (p["peak_intermediate_bytes"] for p in programs), default=0
                ),
                "cache": cache_stats(),
            },
            "layers": self.layer_info,
        }

    def payload(self) -> dict:
        """The picklable program a remote worker needs to execute this plan.

        Op dataclasses hold only arrays and scalars (plus the integer twin
        program when compiled with ``dtype="int8"``), so the payload can be
        pickled to a process pool or published into shared memory
        (:mod:`repro.utils.shm`) with the weight arrays hoisted out of the
        pickle stream.  Workers run it through :func:`execute_ops` (or the
        integer program's ``run``) against their own
        :class:`ExecutionContext` — plan and context stay separate.
        """
        return {
            "ops": self.ops,
            "out_slot": self.out_slot,
            "dtype": self.dtype,
            "intq": self.intq,
        }

    def execute(self, x: np.ndarray, ctx: ExecutionContext) -> np.ndarray:
        """Run one batch through the plan.

        With ``config.trace`` (the default) the batch executes through a
        shape-specialized traced program — generated fused kernels with
        pre-bound buffers (:mod:`repro.infer.fuse`), compiled lazily on the
        first batch of each input shape and bitwise-identical to the
        interpreter.  Shapes that fail to trace, and ``trace=False`` plans,
        run op-by-op via :func:`execute_ops`.
        """
        if np.ndim(x) != 4:
            raise ShapeError(f"plan input must be NCHW, got shape {np.shape(x)}")
        if self.intq is not None:
            return self.intq.run(x, ctx)
        if self.config.trace:
            program = self.traced_program(np.shape(x))
            if program is not None:
                return program.run(x, ctx)
        return execute_ops(self.ops, x, ctx, self.out_slot, self.dtype)

    def traced_program(self, input_shape: tuple):
        """The traced program for ``input_shape`` (compiled lazily), or
        ``None`` if that shape cannot be traced."""
        shape = tuple(int(s) for s in input_shape)
        program = self._traced.get(shape)
        if program is None and shape not in self._trace_failed:
            from repro.infer.trace import build_traced_program

            program = build_traced_program(self, shape)
            if program is None:
                self._trace_failed.add(shape)
            else:
                self._traced[shape] = program
        return program

    def invalidate_traced(self) -> None:
        """Drop every traced program (weight arrays changed).

        Called by :meth:`refresh` after patching op arrays — the same
        ``WeightBinding`` version/fingerprint machinery that detects stale
        weights therefore also recompiles the traced programs atomically.
        Structural rebuilds (pruning drift) construct a whole new plan, so
        their invalidation is implicit.
        """
        self._traced = {}
        self._trace_failed = set()

    def stale_bindings(self, fingerprint: bool = True) -> list[WeightBinding]:
        """Bindings whose source tensors changed since the plan was built.

        Version counters catch every mutation made through repo code paths
        (optimizer steps, ``load_state_dict``, proximal shrinkage); with
        ``fingerprint=True`` a cheap content checksum additionally catches
        raw in-place edits of ``.data`` that never bumped a version.
        """
        stale = []
        for b in self.bindings:
            if b.current_key() != b.built_key:
                stale.append(b)
            elif fingerprint and b.current_fp() != b.built_fp:
                stale.append(b)
        return stale

    def structure_changed(self, bindings: list[WeightBinding] | None = None) -> bool:
        """Whether any binding's dead-filter structure drifted since build.

        When true, an in-place :meth:`refresh` would re-quantize into a
        channel layout derived from the *old* k histogram; the plan must be
        rebuilt from scratch (``InferenceEngine`` does this automatically).
        """
        if bindings is None:
            bindings = self.bindings
        return any(b.current_dead() != b.built_dead for b in bindings)

    def refresh(self, bindings: list[WeightBinding] | None = None) -> int:
        """Re-derive op arrays for ``bindings`` (default: the stale ones).

        Returns the number of ops rebuilt.  Layers whose version counters
        moved re-quantize through the layer cache; raw-mutation layers have
        their cache dropped first so the re-quantization sees fresh data.

        Raises:
            StalePlanError: If the plan was pruned.  Pruned plans contain
                cross-layer constant folds (removed channels folded into
                downstream biases), so per-binding patching would
                re-quantize into a channel layout derived from the old k
                histogram.  Rebuild via :func:`compile_network` instead
                (the engine's refresh path does this transparently).
        """
        if bindings is None:
            bindings = self.stale_bindings()
        if bindings and self.pruned:
            raise StalePlanError(
                "the plan was compiled with dead-filter pruning; its cross-layer "
                "constant folds cannot be patched per binding — recompile via "
                "compile_network (InferenceEngine.refresh does this automatically)"
            )
        for b in bindings:
            if hasattr(b.layer, "invalidate_weight_cache"):
                b.layer.invalidate_weight_cache()
            op = self.ops[b.op_index]
            if isinstance(op, ConvOp):
                weight2d, bias = _conv_arrays(b.layer, b.bn, self.dtype)
                op.weight2d, op.bias = weight2d, bias
            elif isinstance(op, LinearOp):
                weight_t, bias = _linear_arrays(b.layer, self.dtype)
                op.weight_t, op.bias = weight_t, bias
            if op.shift is not None:
                from repro.infer.shift_plane import build_shift_planes

                op.shift = build_shift_planes(
                    b.layer,
                    b.bn,
                    self.dtype,
                    live_rows=op.live_rows,
                    col_index=op.in_live_cols,
                    linear=isinstance(op, LinearOp),
                )
            b.built_key = b.current_key()
            b.built_fp = b.current_fp()
            b.built_dead = b.current_dead()
        if bindings:
            # Traced programs hold bind-time references to the op arrays
            # just replaced; recompile them against the fresh weights.
            self.invalidate_traced()
            if self.intq is not None:
                # The integer program's packed weights and requant constants
                # derive from the arrays just patched; rebuild it against the
                # same calibration batch it was built with.
                from repro.infer.intq import build_intq_program

                self.intq = build_intq_program(
                    self, calibration_images=self.intq.calibration_images
                )
        return len(bindings)


# -- compilation --------------------------------------------------------------


def _layer_weight(layer: Module) -> np.ndarray:
    """Deployed weight array of a (possibly quantized) conv/linear layer."""
    if isinstance(layer, (QConv2d, QLinear)):
        return layer.quantized_weight(use_cache=True)
    return layer.weight.data


def _conv_arrays(
    layer: Module, bn: BatchNorm2d | None, dtype: np.dtype = np.float64
) -> tuple[np.ndarray, np.ndarray | None]:
    wq = np.asarray(_layer_weight(layer), dtype=np.float64)
    f = wq.shape[0]
    weight2d = wq.reshape(f, -1)
    bias = getattr(layer, "bias", None)
    bias = None if bias is None else bias.data.copy()
    if bn is not None:
        # Folding happens in float64; only the finished arrays are cast to
        # the plan's compute dtype.
        scale, shift = bn_eval_affine(bn)
        weight2d = fold_scale_into_weight(weight2d, scale)
        bias = shift if bias is None else bias * scale + shift
    else:
        # Detach from the layer's cached array (and, for full-precision
        # strategies, from the master weight itself) so plan ops never alias
        # model state.
        weight2d = weight2d.copy()
    weight2d = np.ascontiguousarray(weight2d, dtype=dtype)
    return weight2d, None if bias is None else bias.astype(dtype)


def _linear_arrays(
    layer: Module, dtype: np.dtype = np.float64
) -> tuple[np.ndarray, np.ndarray | None]:
    w = np.asarray(_layer_weight(layer), dtype=np.float64)
    bias = getattr(layer, "bias", None)
    return (
        np.ascontiguousarray(w.T, dtype=dtype),
        None if bias is None else bias.data.astype(dtype),
    )


class _Compiler:
    def __init__(self, dtype: np.dtype = np.float64) -> None:
        self.dtype = np.dtype(dtype)
        self.ops: list = []
        self.bindings: list[WeightBinding] = []
        self._next_slot = 1  # slot 0 is the batch input

    def _new_slot(self) -> int:
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def _push(self, op) -> int:
        self.ops.append(op)
        return op.dst

    def emit(self, module: Module, src: int) -> int:
        """Emit ops for ``module`` reading slot ``src``; returns output slot."""
        if isinstance(module, Sequential):
            return self.emit_sequence(list(module), src)
        if isinstance(module, (Identity, Dropout)):
            return src
        if isinstance(module, (QConv2d, Conv2d)):
            return self.emit_conv(module, None, src)
        if isinstance(module, BatchNorm2d):
            scale, shift = bn_eval_affine(module)
            return self._push(
                AffineOp(
                    len(self.ops), src, self._new_slot(),
                    scale.astype(self.dtype), shift.astype(self.dtype),
                )
            )
        if isinstance(module, LeakyReLU):
            return self._push(
                LeakyReluOp(len(self.ops), src, self._new_slot(), module.negative_slope)
            )
        if isinstance(module, ReLU):
            return self._push(LeakyReluOp(len(self.ops), src, self._new_slot(), 0.0))
        if isinstance(module, QuantizedActivation):
            return self.emit_actquant(module, src)
        if isinstance(module, MaxPool2d):
            return self._push(
                MaxPoolOp(len(self.ops), src, self._new_slot(), module.kernel, module.stride)
            )
        if isinstance(module, AvgPool2d):
            return self._push(
                AvgPoolOp(len(self.ops), src, self._new_slot(), module.kernel, module.stride)
            )
        if isinstance(module, GlobalAvgPool2d):
            return self._push(GlobalAvgPoolOp(len(self.ops), src, self._new_slot()))
        if isinstance(module, Flatten):
            return self._push(FlattenOp(len(self.ops), src, self._new_slot()))
        if isinstance(module, (QLinear, Linear)):
            weight_t, bias = _linear_arrays(module, self.dtype)
            op = LinearOp(len(self.ops), src, self._new_slot(), weight_t, bias)
            self._bind(op.index, module, None)
            return self._push(op)
        # Avoid a hard dependency cycle: BasicBlock lives in repro.models.
        if type(module).__name__ == "BasicBlock" and hasattr(module, "shortcut"):
            return self.emit_basic_block(module, src)
        if not any(True for _ in module.named_children()) and not list(
            module.named_parameters()
        ):
            # Stateless leaf module (e.g. a custom activation): safe fallback.
            return self._push(FallbackOp(len(self.ops), src, self._new_slot(), module))
        raise CompileError(
            f"cannot compile module of type {type(module).__name__}; "
            "add a lowering rule in repro.infer.plan or mark it stateless"
        )

    def emit_sequence(self, mods: list[Module], src: int) -> int:
        i = 0
        while i < len(mods):
            module = mods[i]
            if (
                isinstance(module, (QConv2d, Conv2d))
                and i + 1 < len(mods)
                and isinstance(mods[i + 1], BatchNorm2d)
            ):
                src = self.emit_conv(module, mods[i + 1], src)
                i += 2
            else:
                src = self.emit(module, src)
                i += 1
        return src

    def emit_conv(self, layer: Module, bn: BatchNorm2d | None, src: int) -> int:
        weight2d, bias = _conv_arrays(layer, bn, self.dtype)
        op = ConvOp(
            len(self.ops), src, self._new_slot(), weight2d, bias,
            layer.kernel_size, layer.stride, layer.padding,
        )
        self._bind(op.index, layer, bn)
        return self._push(op)

    def emit_actquant(self, module: QuantizedActivation, src: int) -> int:
        if not module.enabled:
            return src
        cfg = module.config
        return self._push(
            ActQuantOp(
                len(self.ops), src, self._new_slot(), cfg.step, 2.0 ** (cfg.bits - 1)
            )
        )

    def emit_basic_block(self, block: Module, src: int) -> int:
        out = self.emit_conv(block.conv1, block.bn1, src)
        out = self._push(
            LeakyReluOp(len(self.ops), out, self._new_slot(), block.act.negative_slope)
        )
        out = self.emit_actquant(block.act_quant1, out)
        out = self.emit_conv(block.conv2, block.bn2, out)
        shortcut = self.emit(block.shortcut, src)
        out = self._push(AddOp(len(self.ops), out, shortcut, self._new_slot()))
        out = self._push(
            LeakyReluOp(len(self.ops), out, self._new_slot(), block.act.negative_slope)
        )
        return self.emit_actquant(block.act_quant2, out)

    def _bind(self, op_index: int, layer: Module, bn: BatchNorm2d | None) -> None:
        binding = WeightBinding(op_index, layer, bn)
        binding.built_key = binding.current_key()
        binding.built_fp = binding.current_fp()
        binding.built_dead = binding.current_dead()
        self.bindings.append(binding)

    def mark_inplace(self) -> None:
        """Allow elementwise ops to overwrite inputs nobody else reads.

        Slot 0 is caller-owned and never overwritten; a slot feeding a
        residual shortcut has two readers and stays protected.
        """
        # Flatten emits a view of its input buffer, so reads are counted
        # against the aliased root slot.
        alias: dict[int, int] = {}
        for op in self.ops:
            if isinstance(op, FlattenOp):
                alias[op.dst] = alias.get(op.src, op.src)

        def root(slot: int) -> int:
            return alias.get(slot, slot)

        reads: dict[int, int] = {}
        for op in self.ops:
            reads[root(op.src)] = reads.get(root(op.src), 0) + 1
            src2 = getattr(op, "src2", None)
            if src2 is not None:
                reads[root(src2)] = reads.get(root(src2), 0) + 1
        for op in self.ops:
            if isinstance(op, (LeakyReluOp, ActQuantOp, AffineOp)):
                r = root(op.src)
                if r != 0 and reads.get(r, 0) == 1:
                    op.inplace = True


def plan_dtype(model: Module) -> np.dtype:
    """Recommended *deployment* precision: float32 when quantization makes
    it numerically safe, else float64.

    Single precision is structurally safe when the network re-quantizes its
    activations: every fixed-point grid value and every quantized weight
    (powers of two, 4-bit fixed point) is exactly representable in float32,
    and each :class:`~repro.quant.activations.QuantizedActivation` snaps the
    ~1e-7 relative accumulation error back onto the grid.  The one caveat —
    and the reason float32 is opt-in rather than the default — is rounding
    ties: an activation landing within a float32 ulp of a code boundary can
    round to the adjacent code, so float32 logits match float64 only to
    about one activation LSB (~3e-2), not to 1e-5.  Top-1/top-5 metrics are
    unaffected in practice; pass ``dtype=plan_dtype(model)`` to
    :class:`~repro.infer.engine.InferenceEngine` to accept that trade for
    ~2x less memory traffic.
    """
    for m in model.modules():
        if isinstance(m, QuantizedActivation) and m.enabled:
            return np.dtype(np.float32)
    return np.dtype(np.float64)


def _calibration_shape(model: Module, config: PlanConfig) -> tuple[int, int, int, int] | None:
    """NCHW shape of the synthetic autotune batch, if the model declares it."""
    channels = getattr(model, "in_channels", None)
    size = getattr(model, "image_size", None)
    if not isinstance(channels, int) or not isinstance(size, int):
        return None
    return (config.autotune_batch, channels, size, size)


def _collect_layer_info(
    ops: list,
    bindings: list[WeightBinding],
    prune_report: dict,
    autotune_report: dict,
) -> list[dict]:
    """Per-layer plan metadata: kernel choice, k histogram, pruned counts."""
    layers = []
    prune_layers = prune_report.get("layers", {})
    for b in bindings:
        op = ops[b.op_index]
        is_linear = isinstance(op, LinearOp)
        w = op.weight_t.T if is_linear else op.weight2d
        built_rows = int(np.asarray(b.layer.weight.data).shape[0])
        built_cols = int(np.prod(np.asarray(b.layer.weight.data).shape[1:]))
        entry: dict[str, Any] = {
            "op_index": b.op_index,
            "type": "linear" if is_linear else "conv",
            "filters": built_rows,
            "pruned_filters": built_rows - int(w.shape[0]),
            "pruned_inputs": built_cols - int(w.shape[1]),
            "dead_remaining": int(dead_filter_rows(w).size),
            "kernel": op.impl,
            "planes": 0 if op.shift is None else len(op.shift.planes),
        }
        if hasattr(b.layer, "filter_k"):
            k = np.asarray(b.layer.filter_k())
            entry["k_hist"] = np.bincount(k, minlength=int(k.max(initial=0)) + 1).tolist()
        pruned = prune_layers.get(b.op_index)
        if pruned is not None and pruned.get("blocked"):
            entry["blocked"] = pruned["blocked"]
        tuned = autotune_report.get(b.op_index)
        if tuned is not None:
            entry["autotune"] = tuned
        layers.append(entry)
    return layers


def compile_network(
    model: Module,
    dtype: "np.dtype | None" = None,
    config: PlanConfig | None = None,
) -> ExecutionPlan:
    """Compile ``model`` into a flat, grad-free :class:`ExecutionPlan`.

    Works on any module tree built from the repo's layer catalogue; a
    :class:`~repro.models.network.QuantizedNetwork` compiles as its feature
    trunk followed by its classifier.  Raises
    :class:`~repro.errors.CompileError` for module types with no lowering
    rule.  ``dtype`` defaults to float64, which reproduces eager logits to
    ~1e-13; see :func:`plan_dtype` for the float32 deployment mode.

    After lowering, the sparsity passes run under ``config`` (defaults to
    :class:`PlanConfig`): dead-filter elimination, shift-plane attachment
    and — when ``kernel="auto"`` finds candidates — per-layer kernel
    autotuning on a synthetic calibration batch.  On models with no dead
    filters all three passes are no-ops and compilation cost is unchanged.
    """
    cfg = config or PlanConfig()
    compiler = _Compiler(np.float64 if dtype is None else np.dtype(dtype))
    if hasattr(model, "features") and hasattr(model, "classifier"):
        out = compiler.emit(model.features, 0)
        out = compiler.emit(model.classifier, out)
    else:
        out = compiler.emit(model, 0)
    if not compiler.ops:
        raise CompileError("model compiled to an empty plan")
    prune_report: dict = {}
    if cfg.prune:
        from repro.infer.prune import prune_plan

        prune_report = prune_plan(compiler.ops, compiler.bindings, out, compiler.dtype, cfg)
    from repro.infer.shift_plane import attach_shift_planes

    candidates = attach_shift_planes(compiler.ops, compiler.bindings, compiler.dtype, cfg)
    compiler.mark_inplace()
    autotune_report: dict = {}
    if cfg.kernel == "auto" and candidates:
        shape = _calibration_shape(model, cfg)
        if shape is not None:
            from repro.infer.autotune import autotune_ops

            try:
                from repro.infer.native.threading import runtime as _mtrt

                _threads = _mtrt.resolve_threads(getattr(cfg, "threads", "auto"))
            except Exception:  # pragma: no cover - defensive
                _threads = 0
            autotune_report = autotune_ops(
                compiler.ops, candidates, shape, compiler.dtype, cfg.autotune_reps,
                backend=cfg.backend, threads=_threads,
            )
    layer_info = _collect_layer_info(
        compiler.ops, compiler.bindings, prune_report, autotune_report
    )
    plan = ExecutionPlan(
        compiler.ops,
        out,
        compiler.bindings,
        compiler.dtype,
        config=cfg,
        layer_info=layer_info,
        pruned=prune_report.get("pruned_filters", 0) > 0,
    )
    if cfg.dtype == "int8":
        shape = _calibration_shape(model, cfg)
        if shape is None:
            raise CompileError(
                "PlanConfig(dtype='int8') needs a calibration batch shape; the model "
                "does not declare in_channels/image_size — build the integer program "
                "explicitly via repro.infer.intq.build_intq_program(plan, "
                "calibration_images=...)"
            )
        from repro.infer.intq import build_intq_program

        plan.intq = build_intq_program(plan, calibration_shape=shape)
    return plan
