"""Flat execution plans: compiling a model into grad-free ndarray ops.

:func:`compile_network` walks a module tree once and emits a flat list of
slot-addressed ops — a tiny SSA-style program.  Slot 0 holds the batch input;
every op reads one or two slots and writes one.  Compilation is where all the
inference-time work that eager evaluation repeats per batch happens exactly
once:

* quantized weights are pulled from the layer's version-keyed cache
  (:meth:`~repro.quant.qlayers.QuantizedLayer.quantized_weight`) and
  pre-flattened for the im2col matmul;
* eval-mode batch-norm is folded into the preceding convolution's effective
  per-filter scale and bias (see :mod:`repro.infer.fold`), so BN ops vanish;
* elementwise ops (Leaky ReLU, activation quantizers) are marked in-place
  wherever their input buffer has no other reader.

Execution uses an :class:`ExecutionContext` of preallocated scratch buffers
(im2col columns, padded inputs, matmul outputs) that are reused across
batches, so steady-state inference performs no large allocations and builds
no autograd graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import CompileError, ShapeError
from repro.infer.fold import bn_eval_affine, bn_fingerprint, fold_scale_into_weight
from repro.nn.layers.activation import LeakyReLU, ReLU
from repro.nn.layers.container import Flatten, Identity, Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad
from repro.quant.activations import QuantizedActivation
from repro.quant.qlayers import QConv2d, QLinear

__all__ = ["ExecutionContext", "ExecutionPlan", "compile_network", "execute_ops", "plan_dtype"]


class ExecutionContext:
    """Per-worker slot table and scratch-buffer pool.

    Buffers are keyed by ``(op_index, role)`` and reallocated only when the
    requested shape or dtype changes (e.g. the final partial batch); a
    context must never be shared between concurrently executing workers.
    """

    def __init__(self) -> None:
        self.slots: dict[int, np.ndarray] = {}
        self._buffers: dict[tuple[int, str], np.ndarray] = {}

    def buffer(
        self,
        op_index: int,
        role: str,
        shape: tuple[int, ...],
        dtype: np.dtype = np.float64,
        zero: bool = False,
    ) -> np.ndarray:
        """Return a reusable buffer of ``shape``/``dtype`` for one op."""
        key = (op_index, role)
        buf = self._buffers.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
            self._buffers[key] = buf
        return buf


# -- ops ---------------------------------------------------------------------


@dataclass
class ConvOp:
    """Fused convolution: im2col matmul + folded BN scale/shift epilogue."""

    index: int
    src: int
    dst: int
    weight2d: np.ndarray  # (F, C*kh*kw), quantized and BN-scale-folded
    bias: np.ndarray | None  # (F,) — conv bias and/or folded BN shift
    kernel: int
    stride: int
    padding: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        n, c, h, w = x.shape
        k, s, p = self.kernel, self.stride, self.padding
        f = self.weight2d.shape[0]
        if k == 1 and s == 1 and p == 0:
            cols, oh, ow = x.reshape(n, c, h * w), h, w
        else:
            if p:
                xp = ctx.buffer(self.index, "pad", (n, c, h + 2 * p, w + 2 * p), x.dtype, zero=True)
                xp[:, :, p:-p, p:-p] = x
                x = xp
            oh = (h + 2 * p - k) // s + 1
            ow = (w + 2 * p - k) // s + 1
            sn, sc, sh, sw = x.strides
            windows = as_strided(
                x,
                shape=(n, c, k, k, oh, ow),
                strides=(sn, sc, sh, sw, sh * s, sw * s),
                writeable=False,
            )
            cols = ctx.buffer(self.index, "cols", (n, c * k * k, oh * ow), x.dtype)
            cols.reshape(n, c, k, k, oh, ow)[...] = windows
        out = ctx.buffer(self.index, "out", (n, f, oh * ow), x.dtype)
        np.matmul(self.weight2d, cols, out=out)
        if self.bias is not None:
            out += self.bias[:, None]
        ctx.slots[self.dst] = out.reshape(n, f, oh, ow)


@dataclass
class LinearOp:
    """Affine map ``x @ W.T + b`` with the quantized weight cached."""

    index: int
    src: int
    dst: int
    weight_t: np.ndarray  # (in, out) — pre-transposed quantized weight
    bias: np.ndarray | None

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        out = ctx.buffer(self.index, "out", (x.shape[0], self.weight_t.shape[1]), x.dtype)
        np.matmul(x, self.weight_t, out=out)
        if self.bias is not None:
            out += self.bias
        ctx.slots[self.dst] = out


@dataclass
class LeakyReluOp:
    """Leaky ReLU (slope 0 gives plain ReLU); in-place when safe.

    Uses ``max(x, slope*x)``, valid for ``0 <= slope < 1``, which runs as
    two allocation-free ufunc passes instead of a boolean-mask select.
    """

    index: int
    src: int
    dst: int
    slope: float
    inplace: bool = False

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        if self.slope == 0.0:
            out = x if self.inplace else ctx.buffer(self.index, "out", x.shape, x.dtype)
            np.maximum(x, 0.0, out=out)
        else:
            tmp = ctx.buffer(self.index, "out", x.shape, x.dtype)
            np.multiply(x, self.slope, out=tmp)
            out = x if self.inplace else tmp
            np.maximum(x, tmp, out=out)
        ctx.slots[self.dst] = out


@dataclass
class ActQuantOp:
    """Symmetric fixed-point activation quantization (rint + saturate)."""

    index: int
    src: int
    dst: int
    step: float
    half: float  # 2**(bits-1)
    inplace: bool = False

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        out = x if self.inplace else ctx.buffer(self.index, "out", x.shape, x.dtype)
        np.multiply(x, 1.0 / self.step, out=out)
        np.rint(out, out=out)
        np.clip(out, -self.half, self.half - 1, out=out)
        out *= self.step
        ctx.slots[self.dst] = out


@dataclass
class AffineOp:
    """Standalone per-channel scale/shift (a BN with no conv to fold into)."""

    index: int
    src: int
    dst: int
    scale: np.ndarray  # (C,)
    shift: np.ndarray  # (C,)
    inplace: bool = False

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        out = x if self.inplace else ctx.buffer(self.index, "out", x.shape, x.dtype)
        np.multiply(x, self.scale[:, None, None], out=out)
        out += self.shift[:, None, None]
        ctx.slots[self.dst] = out


def _pool_views(x: np.ndarray, kernel: int, stride: int):
    """The ``kernel**2`` shifted strided views covering each pool window.

    Reducing across k*k same-shaped views with binary ufuncs is much faster
    than one ``np.max``/``np.mean`` over an ``as_strided`` 6-D window array,
    whose non-contiguous reduction axes defeat vectorization.
    """
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    views = [
        x[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
        for i in range(kernel)
        for j in range(kernel)
    ]
    return views, oh, ow


@dataclass
class MaxPoolOp:
    index: int
    src: int
    dst: int
    kernel: int
    stride: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        views, oh, ow = _pool_views(x, self.kernel, self.stride)
        out = ctx.buffer(self.index, "out", x.shape[:2] + (oh, ow), x.dtype)
        out[...] = views[0]
        for v in views[1:]:
            np.maximum(out, v, out=out)
        ctx.slots[self.dst] = out


@dataclass
class AvgPoolOp:
    index: int
    src: int
    dst: int
    kernel: int
    stride: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        views, oh, ow = _pool_views(x, self.kernel, self.stride)
        out = ctx.buffer(self.index, "out", x.shape[:2] + (oh, ow), x.dtype)
        out[...] = views[0]
        for v in views[1:]:
            out += v
        out *= 1.0 / (self.kernel * self.kernel)
        ctx.slots[self.dst] = out


@dataclass
class GlobalAvgPoolOp:
    index: int
    src: int
    dst: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        out = ctx.buffer(self.index, "out", x.shape[:2], x.dtype)
        np.mean(x, axis=(2, 3), out=out)
        ctx.slots[self.dst] = out


@dataclass
class AddOp:
    """Residual addition of two slots."""

    index: int
    src: int
    src2: int
    dst: int

    def run(self, ctx: ExecutionContext) -> None:
        a, b = ctx.slots[self.src], ctx.slots[self.src2]
        out = ctx.buffer(self.index, "out", a.shape, a.dtype)
        np.add(a, b, out=out)
        ctx.slots[self.dst] = out


@dataclass
class FlattenOp:
    index: int
    src: int
    dst: int

    def run(self, ctx: ExecutionContext) -> None:
        x = ctx.slots[self.src]
        ctx.slots[self.dst] = x.reshape(x.shape[0], -1)


@dataclass
class FallbackOp:
    """Escape hatch: run an uncompilable module's eager forward (no grad)."""

    index: int
    src: int
    dst: int
    module: Module

    def run(self, ctx: ExecutionContext) -> None:
        with no_grad():
            ctx.slots[self.dst] = self.module(Tensor(ctx.slots[self.src])).data


def execute_ops(
    ops: list, x: np.ndarray, ctx: ExecutionContext, out_slot: int, dtype: np.dtype = np.float64
) -> np.ndarray:
    """Run a compiled op list on one batch; returns the output slot's buffer.

    The returned array is owned by ``ctx`` and only valid until the next
    call with the same context — callers that keep results across batches
    must copy.
    """
    ctx.slots[0] = np.asarray(x, dtype=dtype)
    for op in ops:
        op.run(ctx)
    return ctx.slots[out_slot]


# -- weight bindings (cache invalidation) ------------------------------------


@dataclass
class WeightBinding:
    """Link from one plan op back to the layer (+BN) its arrays came from."""

    op_index: int
    layer: Module  # QConv2d / QLinear / Conv2d / Linear
    bn: BatchNorm2d | None
    built_key: tuple = ()
    built_fp: tuple = ()

    def current_key(self) -> tuple:
        """Version vector of every tensor the op's arrays derive from."""
        key: list[Any] = [self.layer.weight.version]
        thresholds = getattr(self.layer, "thresholds", None)
        key.append(-1 if thresholds is None else thresholds.version)
        bias = getattr(self.layer, "bias", None)
        key.append(-1 if bias is None else bias.version)
        if self.bn is not None:
            key.extend(bn_fingerprint(self.bn))
        return tuple(key)

    def current_fp(self) -> tuple:
        """Content fingerprint catching raw ``.data`` mutations that bypass
        the version counters."""
        w = self.layer.weight.data
        return (float(w.sum()), float(np.abs(w).sum()))


class ExecutionPlan:
    """A compiled model: flat op program + weight bindings + output slot.

    ``dtype`` is the compute precision of the whole plan.  The default is
    float64, which reproduces the eager forward bit-for-bit up to GEMM
    summation order (logits agree to ~1e-13); :func:`plan_dtype` describes
    the opt-in float32 deployment mode for quantized networks, which halves
    memory traffic at the cost of occasional one-LSB activation rounding
    flips.
    """

    def __init__(
        self,
        ops: list,
        out_slot: int,
        bindings: list[WeightBinding],
        dtype: np.dtype = np.float64,
    ) -> None:
        self.ops = ops
        self.out_slot = out_slot
        self.bindings = bindings
        self.dtype = np.dtype(dtype)

    def __len__(self) -> int:
        return len(self.ops)

    def execute(self, x: np.ndarray, ctx: ExecutionContext) -> np.ndarray:
        """Run one batch through the plan (see :func:`execute_ops`)."""
        if np.ndim(x) != 4:
            raise ShapeError(f"plan input must be NCHW, got shape {np.shape(x)}")
        return execute_ops(self.ops, x, ctx, self.out_slot, self.dtype)

    def stale_bindings(self, fingerprint: bool = True) -> list[WeightBinding]:
        """Bindings whose source tensors changed since the plan was built.

        Version counters catch every mutation made through repo code paths
        (optimizer steps, ``load_state_dict``, proximal shrinkage); with
        ``fingerprint=True`` a cheap content checksum additionally catches
        raw in-place edits of ``.data`` that never bumped a version.
        """
        stale = []
        for b in self.bindings:
            if b.current_key() != b.built_key:
                stale.append(b)
            elif fingerprint and b.current_fp() != b.built_fp:
                stale.append(b)
        return stale

    def refresh(self, bindings: list[WeightBinding] | None = None) -> int:
        """Re-derive op arrays for ``bindings`` (default: the stale ones).

        Returns the number of ops rebuilt.  Layers whose version counters
        moved re-quantize through the layer cache; raw-mutation layers have
        their cache dropped first so the re-quantization sees fresh data.
        """
        if bindings is None:
            bindings = self.stale_bindings()
        for b in bindings:
            if hasattr(b.layer, "invalidate_weight_cache"):
                b.layer.invalidate_weight_cache()
            op = self.ops[b.op_index]
            if isinstance(op, ConvOp):
                weight2d, bias = _conv_arrays(b.layer, b.bn, self.dtype)
                op.weight2d, op.bias = weight2d, bias
            elif isinstance(op, LinearOp):
                weight_t, bias = _linear_arrays(b.layer, self.dtype)
                op.weight_t, op.bias = weight_t, bias
            b.built_key = b.current_key()
            b.built_fp = b.current_fp()
        return len(bindings)


# -- compilation --------------------------------------------------------------


def _layer_weight(layer: Module) -> np.ndarray:
    """Deployed weight array of a (possibly quantized) conv/linear layer."""
    if isinstance(layer, (QConv2d, QLinear)):
        return layer.quantized_weight(use_cache=True)
    return layer.weight.data


def _conv_arrays(
    layer: Module, bn: BatchNorm2d | None, dtype: np.dtype = np.float64
) -> tuple[np.ndarray, np.ndarray | None]:
    wq = np.asarray(_layer_weight(layer), dtype=np.float64)
    f = wq.shape[0]
    weight2d = wq.reshape(f, -1)
    bias = getattr(layer, "bias", None)
    bias = None if bias is None else bias.data.copy()
    if bn is not None:
        # Folding happens in float64; only the finished arrays are cast to
        # the plan's compute dtype.
        scale, shift = bn_eval_affine(bn)
        weight2d = fold_scale_into_weight(weight2d, scale)
        bias = shift if bias is None else bias * scale + shift
    else:
        # Detach from the layer's cached array (and, for full-precision
        # strategies, from the master weight itself) so plan ops never alias
        # model state.
        weight2d = weight2d.copy()
    weight2d = np.ascontiguousarray(weight2d, dtype=dtype)
    return weight2d, None if bias is None else bias.astype(dtype)


def _linear_arrays(
    layer: Module, dtype: np.dtype = np.float64
) -> tuple[np.ndarray, np.ndarray | None]:
    w = np.asarray(_layer_weight(layer), dtype=np.float64)
    bias = getattr(layer, "bias", None)
    return (
        np.ascontiguousarray(w.T, dtype=dtype),
        None if bias is None else bias.data.astype(dtype),
    )


class _Compiler:
    def __init__(self, dtype: np.dtype = np.float64) -> None:
        self.dtype = np.dtype(dtype)
        self.ops: list = []
        self.bindings: list[WeightBinding] = []
        self._next_slot = 1  # slot 0 is the batch input

    def _new_slot(self) -> int:
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def _push(self, op) -> int:
        self.ops.append(op)
        return op.dst

    def emit(self, module: Module, src: int) -> int:
        """Emit ops for ``module`` reading slot ``src``; returns output slot."""
        if isinstance(module, Sequential):
            return self.emit_sequence(list(module), src)
        if isinstance(module, (Identity, Dropout)):
            return src
        if isinstance(module, (QConv2d, Conv2d)):
            return self.emit_conv(module, None, src)
        if isinstance(module, BatchNorm2d):
            scale, shift = bn_eval_affine(module)
            return self._push(
                AffineOp(
                    len(self.ops), src, self._new_slot(),
                    scale.astype(self.dtype), shift.astype(self.dtype),
                )
            )
        if isinstance(module, LeakyReLU):
            return self._push(
                LeakyReluOp(len(self.ops), src, self._new_slot(), module.negative_slope)
            )
        if isinstance(module, ReLU):
            return self._push(LeakyReluOp(len(self.ops), src, self._new_slot(), 0.0))
        if isinstance(module, QuantizedActivation):
            return self.emit_actquant(module, src)
        if isinstance(module, MaxPool2d):
            return self._push(
                MaxPoolOp(len(self.ops), src, self._new_slot(), module.kernel, module.stride)
            )
        if isinstance(module, AvgPool2d):
            return self._push(
                AvgPoolOp(len(self.ops), src, self._new_slot(), module.kernel, module.stride)
            )
        if isinstance(module, GlobalAvgPool2d):
            return self._push(GlobalAvgPoolOp(len(self.ops), src, self._new_slot()))
        if isinstance(module, Flatten):
            return self._push(FlattenOp(len(self.ops), src, self._new_slot()))
        if isinstance(module, (QLinear, Linear)):
            weight_t, bias = _linear_arrays(module, self.dtype)
            op = LinearOp(len(self.ops), src, self._new_slot(), weight_t, bias)
            self._bind(op.index, module, None)
            return self._push(op)
        # Avoid a hard dependency cycle: BasicBlock lives in repro.models.
        if type(module).__name__ == "BasicBlock" and hasattr(module, "shortcut"):
            return self.emit_basic_block(module, src)
        if not any(True for _ in module.named_children()) and not list(
            module.named_parameters()
        ):
            # Stateless leaf module (e.g. a custom activation): safe fallback.
            return self._push(FallbackOp(len(self.ops), src, self._new_slot(), module))
        raise CompileError(
            f"cannot compile module of type {type(module).__name__}; "
            "add a lowering rule in repro.infer.plan or mark it stateless"
        )

    def emit_sequence(self, mods: list[Module], src: int) -> int:
        i = 0
        while i < len(mods):
            module = mods[i]
            if (
                isinstance(module, (QConv2d, Conv2d))
                and i + 1 < len(mods)
                and isinstance(mods[i + 1], BatchNorm2d)
            ):
                src = self.emit_conv(module, mods[i + 1], src)
                i += 2
            else:
                src = self.emit(module, src)
                i += 1
        return src

    def emit_conv(self, layer: Module, bn: BatchNorm2d | None, src: int) -> int:
        weight2d, bias = _conv_arrays(layer, bn, self.dtype)
        op = ConvOp(
            len(self.ops), src, self._new_slot(), weight2d, bias,
            layer.kernel_size, layer.stride, layer.padding,
        )
        self._bind(op.index, layer, bn)
        return self._push(op)

    def emit_actquant(self, module: QuantizedActivation, src: int) -> int:
        if not module.enabled:
            return src
        cfg = module.config
        return self._push(
            ActQuantOp(
                len(self.ops), src, self._new_slot(), cfg.step, 2.0 ** (cfg.bits - 1)
            )
        )

    def emit_basic_block(self, block: Module, src: int) -> int:
        out = self.emit_conv(block.conv1, block.bn1, src)
        out = self._push(
            LeakyReluOp(len(self.ops), out, self._new_slot(), block.act.negative_slope)
        )
        out = self.emit_actquant(block.act_quant1, out)
        out = self.emit_conv(block.conv2, block.bn2, out)
        shortcut = self.emit(block.shortcut, src)
        out = self._push(AddOp(len(self.ops), out, shortcut, self._new_slot()))
        out = self._push(
            LeakyReluOp(len(self.ops), out, self._new_slot(), block.act.negative_slope)
        )
        return self.emit_actquant(block.act_quant2, out)

    def _bind(self, op_index: int, layer: Module, bn: BatchNorm2d | None) -> None:
        binding = WeightBinding(op_index, layer, bn)
        binding.built_key = binding.current_key()
        binding.built_fp = binding.current_fp()
        self.bindings.append(binding)

    def mark_inplace(self) -> None:
        """Allow elementwise ops to overwrite inputs nobody else reads.

        Slot 0 is caller-owned and never overwritten; a slot feeding a
        residual shortcut has two readers and stays protected.
        """
        # Flatten emits a view of its input buffer, so reads are counted
        # against the aliased root slot.
        alias: dict[int, int] = {}
        for op in self.ops:
            if isinstance(op, FlattenOp):
                alias[op.dst] = alias.get(op.src, op.src)

        def root(slot: int) -> int:
            return alias.get(slot, slot)

        reads: dict[int, int] = {}
        for op in self.ops:
            reads[root(op.src)] = reads.get(root(op.src), 0) + 1
            src2 = getattr(op, "src2", None)
            if src2 is not None:
                reads[root(src2)] = reads.get(root(src2), 0) + 1
        for op in self.ops:
            if isinstance(op, (LeakyReluOp, ActQuantOp, AffineOp)):
                r = root(op.src)
                if r != 0 and reads.get(r, 0) == 1:
                    op.inplace = True


def plan_dtype(model: Module) -> np.dtype:
    """Recommended *deployment* precision: float32 when quantization makes
    it numerically safe, else float64.

    Single precision is structurally safe when the network re-quantizes its
    activations: every fixed-point grid value and every quantized weight
    (powers of two, 4-bit fixed point) is exactly representable in float32,
    and each :class:`~repro.quant.activations.QuantizedActivation` snaps the
    ~1e-7 relative accumulation error back onto the grid.  The one caveat —
    and the reason float32 is opt-in rather than the default — is rounding
    ties: an activation landing within a float32 ulp of a code boundary can
    round to the adjacent code, so float32 logits match float64 only to
    about one activation LSB (~3e-2), not to 1e-5.  Top-1/top-5 metrics are
    unaffected in practice; pass ``dtype=plan_dtype(model)`` to
    :class:`~repro.infer.engine.InferenceEngine` to accept that trade for
    ~2x less memory traffic.
    """
    for m in model.modules():
        if isinstance(m, QuantizedActivation) and m.enabled:
            return np.dtype(np.float32)
    return np.dtype(np.float64)


def compile_network(model: Module, dtype: "np.dtype | None" = None) -> ExecutionPlan:
    """Compile ``model`` into a flat, grad-free :class:`ExecutionPlan`.

    Works on any module tree built from the repo's layer catalogue; a
    :class:`~repro.models.network.QuantizedNetwork` compiles as its feature
    trunk followed by its classifier.  Raises
    :class:`~repro.errors.CompileError` for module types with no lowering
    rule.  ``dtype`` defaults to float64, which reproduces eager logits to
    ~1e-13; see :func:`plan_dtype` for the float32 deployment mode.
    """
    compiler = _Compiler(np.float64 if dtype is None else np.dtype(dtype))
    if hasattr(model, "features") and hasattr(model, "classifier"):
        out = compiler.emit(model.features, 0)
        out = compiler.emit(model.classifier, out)
    else:
        out = compiler.emit(model, 0)
    if not compiler.ops:
        raise CompileError("model compiled to an empty plan")
    compiler.mark_inplace()
    return ExecutionPlan(compiler.ops, out, compiler.bindings, compiler.dtype)
