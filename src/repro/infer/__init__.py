"""Compiled inference engine (plan / fold / cache / shard).

Turns a trained :class:`~repro.models.network.QuantizedNetwork` into a flat
grad-free execution plan with quantized-weight caching, conv+BN folding,
scratch-buffer reuse and multicore batch sharding.  See
:class:`~repro.infer.engine.InferenceEngine` for the entry point.
"""

from repro.infer.engine import InferenceEngine
from repro.infer.fold import bn_eval_affine
from repro.infer.plan import ExecutionContext, ExecutionPlan, compile_network, plan_dtype
from repro.infer.pool import run_sharded, shard_slices

__all__ = [
    "InferenceEngine",
    "ExecutionContext",
    "ExecutionPlan",
    "compile_network",
    "plan_dtype",
    "bn_eval_affine",
    "run_sharded",
    "shard_slices",
]
