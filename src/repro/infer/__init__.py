"""Compiled inference engine (plan / trace / fuse / shard / sparsity).

Turns a trained :class:`~repro.models.network.QuantizedNetwork` into a flat
grad-free execution plan with quantized-weight caching, conv+BN folding,
scratch-buffer reuse and multicore batch sharding.  Sparsity-aware passes
(dead-filter elimination, shift-plane kernels, per-layer kernel autotuning)
run at plan time under :class:`~repro.infer.plan.PlanConfig`; execution then
goes through shape-specialized traced programs — fused, codegen'd kernels
with liveness-reused buffers (:mod:`repro.infer.trace`,
:mod:`repro.infer.fuse`, :mod:`repro.infer.kernels`) — bitwise-identical to
the op-by-op interpreter.  See
:class:`~repro.infer.engine.InferenceEngine` for the entry point.
"""

from repro.infer.engine import InferenceEngine
from repro.infer.fold import bn_eval_affine, dead_filter_rows
from repro.infer.intq import IntQProgram, PackedWeights, build_intq_program, pack_weights
from repro.infer.kernels import cache_info, clear_caches
from repro.infer.plan import (
    ExecutionContext,
    ExecutionPlan,
    PlanConfig,
    compile_network,
    plan_dtype,
)
from repro.infer.pool import run_sharded, shard_slices
from repro.infer.shift_plane import build_shift_planes, supports_shift_planes
from repro.infer.trace import build_traced_program, trace_plan

__all__ = [
    "InferenceEngine",
    "ExecutionContext",
    "ExecutionPlan",
    "PlanConfig",
    "compile_network",
    "plan_dtype",
    "bn_eval_affine",
    "dead_filter_rows",
    "build_shift_planes",
    "supports_shift_planes",
    "build_traced_program",
    "trace_plan",
    "run_sharded",
    "shard_slices",
    "IntQProgram",
    "PackedWeights",
    "build_intq_program",
    "pack_weights",
    "cache_info",
    "clear_caches",
]
