"""Shift-plane kernels: exponent-grouped GEMMs over the k_i structure.

The paper's Fig. 3 decomposition splits a flexible-k filter bank into
``<= k_max`` single-shift banks: level ``j`` holds each filter's ``j``-th
signed power-of-two term, and a filter with ``k_i < j`` contributes nothing
to plane ``j``.  The engine's dense kernel ignores that structure — every
filter pays full ``k_max`` GEMM cost.  This module rebuilds it at plan time:

* each quantized weight tensor is decomposed (FLightNN via its gates,
  LightNN by replaying the greedy recursion), routed through the *hardware
  encoding* (:mod:`repro.quant.encoding`) and decoded back plane by plane —
  so the kernel computes exactly what an FPGA weight memory holds;
* per plane, only the rows (filters) with a surviving term participate in
  that plane's GEMM, and a per-plane channel mask drops input channels the
  plane never reads — total multiply work is proportional to the k_i
  histogram instead of ``F x C`` dense cost;
* BN scale folds into each plane's rows (scaling a power of two is exact in
  floating point), and the plan's folded bias is applied once in the op
  epilogue, so ``sum of plane GEMMs + bias == dense GEMM + bias`` up to
  summation order.

Whether the plane sum actually beats one dense GEMM depends on the BLAS
and the layer shape — which is why kernel selection defaults to measurement
(:mod:`repro.infer.autotune`) rather than a heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.infer.fold import bn_eval_affine
from repro.quant.decompose import decompose_filter_bank, decompose_lightnn_bank
from repro.quant.encoding import decode_plane, encode_terms
from repro.quant.qlayers import FLightNNWeights, LightNNWeights

__all__ = ["ShiftPlane", "ShiftPlaneSet", "supports_shift_planes", "build_shift_planes"]

# Keep a plane's channel mask only when it drops at least this fraction of
# the columns; a near-full gather costs more than the GEMM work it saves.
_MASK_MAX_ACTIVE = 0.75


@dataclass
class ShiftPlane:
    """One level of the decomposition, restricted to its active support.

    Attributes:
        level: Decomposition level ``j`` (0-based).
        rows: Row indices (in the op's possibly-pruned output space) with a
            nonzero term at this level, or ``None`` when every row is
            active (skip the scatter).
        weight: Conv: ``(rows, cols)`` plane matrix for ``plane @ cols``;
            linear: ``(cols, rows)`` pre-transposed for ``x @ plane``.
            BN-scale folded, cast to the plan dtype.
        col_index: Column indices (into the op's input-column space) this
            plane reads, or ``None`` for all columns.
    """

    level: int
    rows: np.ndarray | None
    weight: np.ndarray
    col_index: np.ndarray | None


@dataclass
class ShiftPlaneSet:
    """All surviving planes of one weight tensor plus summary metadata."""

    planes: list[ShiftPlane]
    k_max: int
    rows_per_level: tuple[int, ...]

    @property
    def total_row_work(self) -> int:
        """Sum of active rows across planes — the kernel's GEMM row count."""
        return int(sum(self.rows_per_level))


def supports_shift_planes(layer) -> bool:
    """Whether ``layer``'s strategy decomposes into power-of-two planes."""
    strategy = getattr(layer, "strategy", None)
    return isinstance(strategy, (FLightNNWeights, LightNNWeights))


def _layer_bank(layer):
    strategy = layer.strategy
    if isinstance(strategy, FLightNNWeights):
        quantizer = strategy.quantizer
        bank = decompose_filter_bank(layer.weight.data, layer.thresholds.data, quantizer)
        return bank, quantizer.config.pow2
    quantizer = strategy.quantizer
    bank = decompose_lightnn_bank(layer.weight.data, quantizer.config.k, quantizer.config.pow2)
    return bank, quantizer.config.pow2


def build_shift_planes(
    layer,
    bn,
    dtype: np.dtype,
    live_rows: np.ndarray | None = None,
    col_index: np.ndarray | None = None,
    linear: bool = False,
) -> "ShiftPlaneSet | None":
    """Decompose ``layer``'s quantized weights into engine-ready planes.

    Args:
        layer: A :class:`~repro.quant.qlayers.QConv2d` / ``QLinear`` with a
            FLightNN or LightNN strategy (returns ``None`` otherwise).
        bn: Folded batch-norm (conv only); its scale multiplies each plane.
        dtype: Plan compute dtype for the plane matrices.
        live_rows: Original filter rows surviving pruning (``None`` = all);
            plane rows are expressed in this slimmed row space.
        col_index: Original weight-column indices surviving upstream
            pruning (``None`` = all); planes are sliced to match the op's
            column layout before masking.
        linear: Store planes pre-transposed for the ``x @ W`` orientation.
    """
    if not supports_shift_planes(layer):
        return None
    bank, pow2 = _layer_bank(layer)
    encoded = encode_terms(bank, pow2)
    scale = None
    if bn is not None:
        scale, _ = bn_eval_affine(bn)
    filters = np.asarray(layer.weight.data).shape[0]
    kk = 1 if linear else layer.kernel_size * layer.kernel_size
    planes: list[ShiftPlane] = []
    rows_per_level: list[int] = []
    for level in range(encoded.signs.shape[0]):
        plane = decode_plane(encoded, level).reshape(filters, -1)
        if scale is not None:
            plane = plane * scale[:, None]
        if live_rows is not None:
            plane = plane[live_rows]
        if col_index is not None:
            plane = plane[:, col_index]
        rows = np.flatnonzero(plane.any(axis=1))
        rows_per_level.append(int(rows.size))
        if rows.size == 0:
            continue
        sub = plane[rows]
        active = sub.any(axis=0)
        if not linear:
            # Mask at channel granularity: a conv column belongs to the
            # channel block of its *original* column index.
            original_cols = col_index if col_index is not None else np.arange(plane.shape[1])
            channel_of_col = np.asarray(original_cols) // kk
            channel_active = np.zeros(int(channel_of_col.max()) + 1, dtype=bool)
            channel_active[channel_of_col[active]] = True
            active = channel_active[channel_of_col]
        cidx = None
        if not active.all() and active.mean() <= _MASK_MAX_ACTIVE:
            cidx = np.flatnonzero(active)
            sub = sub[:, cidx]
        weight = np.ascontiguousarray(sub.T if linear else sub, dtype=dtype)
        row_index = None if rows.size == plane.shape[0] else rows
        planes.append(ShiftPlane(level, row_index, weight, cidx))
    return ShiftPlaneSet(
        planes=planes,
        k_max=int(encoded.signs.shape[0]),
        rows_per_level=tuple(rows_per_level),
    )


def attach_shift_planes(ops, bindings, dtype: np.dtype, config) -> list[int]:
    """Build planes per the config's kernel policy; returns autotune candidates.

    ``"dense"`` attaches nothing.  ``"shift_plane"`` forces the plane
    kernel wherever the quantizer supports it.  ``"auto"`` builds planes
    only for layers still carrying dead rows after pruning — the one case
    where the plane sum can skip work the dense GEMM must pay — and leaves
    the final choice to the calibration pass.
    """
    candidates: list[int] = []
    if config.kernel == "dense":
        return candidates
    for binding in bindings:
        op = ops[binding.op_index]
        layer = binding.layer
        if not supports_shift_planes(layer):
            continue
        linear = hasattr(op, "weight_t")
        current = op.weight_t.T if linear else op.weight2d
        if config.kernel == "auto" and current.any(axis=1).all():
            continue
        shift = build_shift_planes(
            layer,
            binding.bn,
            dtype,
            live_rows=op.live_rows,
            col_index=op.in_live_cols,
            linear=linear,
        )
        if shift is None:
            continue
        op.shift = shift
        if config.kernel == "shift_plane":
            op.impl = "shift_plane"
        else:
            candidates.append(binding.op_index)
    return candidates
