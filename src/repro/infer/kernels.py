"""Shape-specialized fused kernels behind a compiled-program cache.

The traced execution path (:mod:`repro.infer.trace` / :mod:`repro.infer.fuse`)
does not interpret plan ops one dict lookup at a time — it *generates* one
Python function per (op kind, layer shape, kernel impl, dtype, epilogue)
combination, with every branch the interpreter would test per batch (padding?
1x1 fast path? bias? dead-channel map? which epilogue ops?) resolved at
codegen time and every scalar constant inlined literally.  All array views a
kernel needs (pad interiors, im2col window views, reshaped GEMM outputs,
pool window slices) are pre-built once at bind time, so the per-batch work
of a generated kernel is exactly its data movement and ufunc calls.

Bitwise parity is by construction: each generated body is the *same ufunc
sequence* the op-by-op engine runs (``plan.ConvOp.run`` etc.), with in-place
augmented assignments spelled as their equivalent explicit ``np.<ufunc>(...,
out=...)`` calls and scalars inlined via ``repr`` (which round-trips float64
exactly).  Fusing a conv with its LeakyReLU/ActQuant epilogue therefore
changes *where* the intermediate lives (it doesn't), never its value.

Two process-wide caches live here:

* :data:`KERNEL_CACHE` — compiled kernel factories keyed per
  (layer-shape, kernel impl, dtype, flags, epilogue).  Identical generated
  source is compiled once (an inner source-text cache), so the per-spec
  entries are cheap; hit/miss counters surface through
  ``ExecutionPlan.summary()`` and serve ``/metrics``.
* :data:`AUTOTUNE_CACHE` — persisted autotune decisions keyed by the same
  shape/kernel/dtype signature, so a plan rebuild whose layer shapes and
  kernel candidates are unchanged (the common hot-weight-refresh case)
  reuses the previous measurement instead of re-timing every layer.

Invalidation rides the plan's existing fingerprint machinery: weight
refreshes and structural rebuilds drop the *traced programs* (which hold
the bound array views); the shape-keyed entries here stay valid because
they close over nothing — binding fresh arrays to a cached factory is what
a "recompile" of the traced program mostly amounts to.
"""

from __future__ import annotations

import ast
import hashlib
import json
import logging
import os
import platform
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import as_strided

__all__ = [
    "KernelSpec",
    "ScratchReq",
    "KERNEL_CACHE",
    "AUTOTUNE_CACHE",
    "cache_stats",
    "cache_info",
    "clear_caches",
    "producer_scratch",
    "bind_producer",
    "eltwise_scratch",
    "epilogue_scratch",
    "bind_eltwise",
    "bind_pool",
    "bind_gap",
    "bind_add",
    "bind_standalone_producer",
    "autotune_key",
    "variants_for",
]


# -- caches -------------------------------------------------------------------


@dataclass(frozen=True)
class KernelSpec:
    """Cache key of one generated kernel: everything the source depends on,
    plus the layer shape the program was specialized for."""

    kind: str  # conv | linear | eltwise | maxpool | avgpool | gap | add
    impl: str  # dense | shift_plane | ""
    shape: tuple  # layer/input shape signature
    dtype: str
    flags: tuple  # structural source flags, e.g. ("bias", "pad")
    epilogue: tuple  # (("lrelu", "0.1"), ("aq", inv, lo, hi, step), ...)
    extra: tuple = ()  # per-plane flags / pool unroll, part of the source


class _KernelCache:
    """spec -> compiled factory, with an inner source-text dedupe cache.

    The per-spec map is a bounded LRU: long-lived cluster workers seeing
    many distinct input shapes would otherwise grow it without limit.
    Evicting an entry never orphans running code — bound thunks hold their
    factory (or native function pointer) directly, and the inner
    ``_sources`` dedupe map stays unbounded because the number of distinct
    source texts is structurally small (it is what makes re-insertion after
    an eviction cheap).
    """

    def __init__(self, max_entries: int = 512) -> None:
        self._factories: OrderedDict[KernelSpec, object] = OrderedDict()
        self._sources: dict[str, object] = {}
        self._lock = threading.Lock()
        self._max = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _insert(self, spec: KernelSpec, factory) -> None:
        self._factories[spec] = factory
        while len(self._factories) > self._max:
            self._factories.popitem(last=False)
            self.evictions += 1

    def get(self, spec: KernelSpec, source: str):
        with self._lock:
            factory = self._factories.get(spec)
            if factory is not None:
                self.hits += 1
                self._factories.move_to_end(spec)
                return factory
            self.misses += 1
            factory = self._sources.get(source)
            if factory is None:
                namespace: dict = {"np": np}
                exec(compile(source, f"<kernel {spec.kind}/{spec.impl}>", "exec"), namespace)
                factory = namespace["_factory"]
                self._sources[source] = factory
            self._insert(spec, factory)
            return factory

    def get_native(self, spec: KernelSpec, source: str, build):
        """Like :meth:`get` for native kernels: ``build(source)`` compiles/
        loads the C entry point on a source miss (it may raise
        ``NativeUnavailable`` — nothing is cached then)."""
        with self._lock:
            fn = self._factories.get(spec)
            if fn is not None:
                self.hits += 1
                self._factories.move_to_end(spec)
                return fn
            self.misses += 1
            fn = self._sources.get(source)
            if fn is None:
                fn = build(source)
                self._sources[source] = fn
            self._insert(spec, fn)
            return fn

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "specs": len(self._factories),
                "compiled_sources": len(self._sources),
                "evictions": self.evictions,
                "max_entries": self._max,
            }

    def clear(self) -> None:
        with self._lock:
            self._factories.clear()
            self._sources.clear()
            self.hits = self.misses = self.evictions = 0


class _AutotuneCache:
    """Shape-keyed autotune decisions reused across fingerprint-identical
    plan rebuilds (bounded FIFO; thread-safe).

    Entries persist to ``<cache_root>/autotune_<hosthash>.json`` (lazily
    loaded, write-through on every ``put``), so a process restart reuses
    previous measurements instead of re-timing every layer.  The host hash
    covers the machine identity, numpy version and the C toolchain
    fingerprint — a different compiler or host gets its own decision file,
    since the timings it would read are not comparable.  Keys round-trip
    through ``repr``/``ast.literal_eval`` (they are tuples of
    strings/ints/tuples by construction).  Any disk error degrades to the
    in-memory-only behavior.
    """

    def __init__(self, max_entries: int = 512) -> None:
        self._entries: dict[tuple, dict] = {}
        self._lock = threading.Lock()
        self._max = max_entries
        self._loaded_paths: set[str] = set()
        self.hits = 0
        self.misses = 0

    def disk_path(self) -> str:
        from repro.infer.native import toolchain

        host = hashlib.sha256(
            "\x00".join(
                [platform.node(), platform.machine(), np.__version__,
                 toolchain.toolchain_fingerprint()]
            ).encode()
        ).hexdigest()[:12]
        return os.path.join(toolchain.cache_root(), f"autotune_{host}.json")

    def _ensure_loaded_locked(self) -> None:
        try:
            path = self.disk_path()
        except Exception:  # pragma: no cover - defensive
            return
        if path in self._loaded_paths:
            return
        self._loaded_paths.add(path)
        try:
            with open(path) as fh:
                raw = json.load(fh)
            for key_repr, entry in raw.items():
                self._entries.setdefault(ast.literal_eval(key_repr), dict(entry))
        except FileNotFoundError:
            pass
        except (OSError, ValueError, SyntaxError, AttributeError):
            # Corrupt or foreign-format file: drop it, start fresh.
            try:
                os.unlink(path)
            except OSError:
                pass

    def _flush_locked(self) -> None:
        try:
            path = self.disk_path()
            os.makedirs(os.path.dirname(path), exist_ok=True)
            payload = {repr(k): v for k, v in self._entries.items()}
            fd, tmp = tempfile.mkstemp(prefix="autotune-", dir=os.path.dirname(path))
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError):
            pass  # unwritable cache dir: stay in-memory only

    def get(self, key: tuple) -> dict | None:
        with self._lock:
            self._ensure_loaded_locked()
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return dict(entry)

    def put(self, key: tuple, entry: dict) -> None:
        with self._lock:
            self._ensure_loaded_locked()
            if len(self._entries) >= self._max:
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = dict(entry)
            self._flush_locked()

    def stats(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}

    def clear(self) -> None:
        """Drop the in-memory entries *and* this host's decision file (so
        ``clear_caches()`` means cold-start even across processes)."""
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = 0
            try:
                path = self.disk_path()
                self._loaded_paths.add(path)
                os.unlink(path)
            except Exception:
                pass


KERNEL_CACHE = _KernelCache()
AUTOTUNE_CACHE = _AutotuneCache()


def cache_stats() -> dict:
    """Process-wide codegen/autotune cache counters (for summary/metrics)."""
    return {"kernels": KERNEL_CACHE.stats(), "autotune": AUTOTUNE_CACHE.stats()}


def cache_info() -> dict:
    """Everything cached on this host: in-process counters plus the on-disk
    native compile cache and autotune decision file (sizes and locations).
    The public entry point is ``repro.infer.cache_info()``."""
    info = {"kernels": KERNEL_CACHE.stats(), "autotune": AUTOTUNE_CACHE.stats()}
    try:
        from repro.infer.native import binding, toolchain

        path = AUTOTUNE_CACHE.disk_path()
        info["autotune"]["disk_path"] = path
        info["autotune"]["disk_exists"] = os.path.exists(path)
        cdir = toolchain.native_cache_dir()
        entries = [f for f in os.listdir(cdir) if f.endswith(".so")]
        info["native"] = {
            "cache_dir": cdir,
            "compiled_kernels": len(entries),
            "cache_bytes": sum(
                os.path.getsize(os.path.join(cdir, f)) for f in os.listdir(cdir)
            ),
            "status": binding.status(),
        }
    except Exception:  # pragma: no cover - cache dir races / defensive
        pass
    return info


def clear_caches(disk: bool = False) -> None:
    """Drop both caches (tests / benchmarks wanting cold-start numbers).

    ``AUTOTUNE_CACHE.clear()`` always removes this host's on-disk decision
    file; ``disk=True`` additionally empties the native compile cache
    directory (the ``--clear-cache`` CLI path).
    """
    KERNEL_CACHE.clear()
    AUTOTUNE_CACHE.clear()
    if disk:
        try:
            from repro.infer.native import toolchain

            cdir = toolchain.native_cache_dir()
            for name in os.listdir(cdir):
                if name.endswith((".so", ".c")):
                    try:
                        os.unlink(os.path.join(cdir, name))
                    except OSError:
                        pass
        except Exception:  # pragma: no cover - defensive
            pass


_native_log = logging.getLogger("repro.infer.native")
_native_failed_once = False


def _native_make(maker: str, *args):
    """Call one ``repro.infer.native.binding.make_*`` entry point, treating
    *any* failure — import error, toolchain error, a bug in the binding —
    as a decline.  The native backend must never break plan compilation."""
    global _native_failed_once
    try:
        from repro.infer.native import binding
    except Exception:
        return None
    try:
        return getattr(binding, maker)(*args)
    except Exception:
        if not _native_failed_once:
            _native_failed_once = True
            _native_log.exception(
                "native backend %s raised unexpectedly; falling back to numpy", maker
            )
        return None


# -- source emission ----------------------------------------------------------


def _epilogue_sig(epilogue) -> tuple:
    """Source signature of an elementwise epilogue chain with every scalar
    pre-``repr``'d (float64 repr round-trips exactly, so inlined literals
    equal the op's runtime scalars bit for bit)."""
    sig = []
    for step in epilogue:
        if step[0] == "lrelu":
            sig.append(("lrelu", repr(float(step[1]))))
        elif step[0] == "aq":
            step_f, half = float(step[1]), float(step[2])
            sig.append(
                ("aq", repr(1.0 / step_f), repr(-half), repr(half - 1.0), repr(step_f))
            )
        else:  # pragma: no cover - guarded by the trace pass
            raise ValueError(f"unknown epilogue step {step[0]!r}")
    return tuple(sig)


def _emit_epilogue(lines: list[str], sig: tuple, out: str, scratch_names: list[str]) -> None:
    """Append the epilogue ufunc sequence operating in place on ``out``.

    Mirrors ``LeakyReluOp.run`` (in-place form) and ``ActQuantOp.run``: a
    LeakyReLU with nonzero slope consumes one scratch name per occurrence.
    """
    for step in sig:
        if step[0] == "lrelu":
            slope = step[1]
            if slope == "0.0":
                lines.append(f"np.maximum({out}, 0.0, out={out})")
            else:
                tmp = scratch_names.pop(0)
                lines.append(f"np.multiply({out}, {slope}, out={tmp})")
                lines.append(f"np.maximum({out}, {tmp}, out={out})")
        else:  # aq
            inv, lo, hi, stp = step[1], step[2], step[3], step[4]
            lines.append(f"np.multiply({out}, {inv}, out={out})")
            lines.append(f"np.rint({out}, out={out})")
            lines.append(f"np.clip({out}, {lo}, {hi}, out={out})")
            lines.append(f"np.multiply({out}, {stp}, out={out})")


def _build_source(arg_names: list[str], lines: list[str]) -> str:
    unpack = "\n".join(f"    {n} = A[{n!r}]" for n in arg_names)
    body = "\n".join(f"        {line}" for line in lines) or "        pass"
    return f"def _factory(A):\n{unpack}\n    def kernel():\n{body}\n    return kernel\n"


def _make(spec: KernelSpec, args: dict, lines: list[str]):
    source = _build_source(list(args), lines)
    return KERNEL_CACHE.get(spec, source)(args)


# -- scratch planning ---------------------------------------------------------


@dataclass(frozen=True)
class ScratchReq:
    """One scratch buffer a kernel needs, shapes *without* the batch dim.

    ``dedicated`` buffers are excluded from register reuse and zeroed once
    at bind (the conv pad buffer relies on a permanently-zero border, like
    ``ExecutionContext.buffer(zero=True)``).
    """

    name: str
    tail: tuple
    dedicated: bool = False
    zero: bool = False


def epilogue_scratch(epilogue, out_tail: tuple) -> list[ScratchReq]:
    reqs = []
    for i, step in enumerate(epilogue):
        if step[0] == "lrelu" and float(step[1]) != 0.0:
            reqs.append(ScratchReq(f"etmp{i}", out_tail))
    return reqs


def producer_scratch(kind: str, op, x_shape: tuple, impl: str, epilogue) -> list[ScratchReq]:
    """Scratch requests (bind order) of a conv/linear kernel on ``x_shape``."""
    reqs: list[ScratchReq] = []
    if kind == "conv":
        c, h, w = x_shape[1], x_shape[2], x_shape[3]
        k, s, p = op.kernel, op.stride, op.padding
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        length = oh * ow
        f = op.weight2d.shape[0]
        onebyone = k == 1 and s == 1 and p == 0
        if not onebyone:
            if p:
                reqs.append(ScratchReq("pad", (c, h + 2 * p, w + 2 * p), dedicated=True, zero=True))
            reqs.append(ScratchReq("cols", (c * k * k, length)))
        if impl == "shift_plane" and op.shift is not None:
            for j, plane in enumerate(op.shift.planes):
                if plane.col_index is not None:
                    reqs.append(ScratchReq(f"sel{j}", (plane.col_index.size, length)))
                rows = f if plane.rows is None else plane.rows.size
                reqs.append(ScratchReq(f"part{j}", (rows, length)))
        reqs.extend(epilogue_scratch(epilogue, (f, length)))
    else:  # linear
        out_f = op.weight_t.shape[1]
        if impl == "shift_plane" and op.shift is not None:
            for j, plane in enumerate(op.shift.planes):
                if plane.col_index is not None:
                    reqs.append(ScratchReq(f"sel{j}", (plane.col_index.size,)))
                rows = out_f if plane.rows is None else plane.rows.size
                reqs.append(ScratchReq(f"part{j}", (rows,)))
        reqs.extend(epilogue_scratch(epilogue, (out_f,)))
    return reqs


# -- producer kernels (conv / linear, dense + shift_plane) --------------------


def _conv_views(op, x, scratch: dict):
    """Pre-build the im2col machinery over concrete arrays.

    Returns ``(setup_lines, args, cols_name)`` — the data-movement lines and
    bound views feeding the GEMM, exactly as ``ConvOp.run`` arranges them.
    """
    nb, c, h, w = x.shape
    k, s, p = op.kernel, op.stride, op.padding
    oh = (h + 2 * p - k) // s + 1
    ow = (w + 2 * p - k) // s + 1
    if k == 1 and s == 1 and p == 0:
        return [], {"cols": x.reshape(nb, c, h * w)}, "cols"
    if p:
        pad = scratch["pad"]
        source = pad
        setup = ["interior[...] = x"]
        args = {"x": x, "interior": pad[:, :, p:-p, p:-p]}
    else:
        source = x
        setup = []
        args = {"x": x}
    sn, sc, sh, sw = source.strides
    windows = as_strided(
        source,
        shape=(nb, c, k, k, oh, ow),
        strides=(sn, sc, sh, sw, sh * s, sw * s),
        writeable=False,
    )
    cols = scratch["cols"]
    args.update({"windows": windows, "cols": cols, "cols6": cols.reshape(nb, c, k, k, oh, ow)})
    setup.append("cols6[...] = windows")
    return setup, args, "cols"


def bind_producer(
    kind: str,
    op,
    x: np.ndarray,
    out: np.ndarray,
    scratch: dict,
    impl: str,
    epilogue,
    dtype: np.dtype,
    backend: str = "numpy",
    record: dict | None = None,
    threads: int = 0,
):
    """Bind one generated conv/linear kernel over concrete arrays.

    ``out`` is the flat GEMM output — ``(nb, F, oh*ow)`` for conv, ``(nb,
    F)`` for linear — a view of the destination register.  ``scratch`` maps
    :func:`producer_scratch` names to bound views.  ``backend="native"``
    tries the C backend over the same arrays (declining back to the numpy
    thunk on any precondition failure); ``record`` receives the choice.
    """
    sig = _epilogue_sig(epilogue)
    etmps = [n for n in scratch if n.startswith("etmp")]
    lines: list[str] = []
    flags: list[str] = []
    extra: list = []
    if kind == "conv":
        setup, args, cols_name = _conv_views(op, x, scratch)
        lines.extend(setup)
        args["out"] = out
        if op.padding and not (op.kernel == 1 and op.stride == 1):
            flags.append("pad")
        if op.kernel == 1 and op.stride == 1 and op.padding == 0:
            flags.append("onebyone")
        if impl == "shift_plane" and op.shift is not None:
            lines.append("out[...] = 0.0")
            for j, plane in enumerate(op.shift.planes):
                wname = f"w{j}"
                args[wname] = plane.weight
                src = cols_name
                pflags = ""
                if plane.col_index is not None:
                    args[f"idx{j}"] = plane.col_index
                    args[f"sel{j}"] = scratch[f"sel{j}"]
                    lines.append(f"np.take({cols_name}, idx{j}, axis=1, out=sel{j})")
                    src = f"sel{j}"
                    pflags += "c"
                args[f"part{j}"] = scratch[f"part{j}"]
                lines.append(f"np.matmul({wname}, {src}, out=part{j})")
                if plane.rows is None:
                    lines.append(f"np.add(out, part{j}, out=out)")
                else:
                    args[f"rows{j}"] = plane.rows
                    lines.append(f"out[:, rows{j}, :] += part{j}")
                    pflags += "r"
                extra.append((j, pflags))
        else:
            args["w"] = op.weight2d
            lines.append(f"np.matmul(w, {cols_name}, out=out)")
        if op.bias is not None:
            args["bias"] = op.bias[:, None]
            lines.append("np.add(out, bias, out=out)")
            flags.append("bias")
        if op.dead_in_weight2d is not None:
            args["dead"] = op._dead_bias_map(x.shape[2], x.shape[3])
            lines.append("np.add(out, dead, out=out)")
            flags.append("dead")
        shape_key = (x.shape[1:], op.weight2d.shape, op.kernel, op.stride, op.padding)
    else:  # linear
        args = {"x": x, "out": out}
        if impl == "shift_plane" and op.shift is not None:
            lines.append("out[...] = 0.0")
            for j, plane in enumerate(op.shift.planes):
                args[f"w{j}"] = plane.weight
                src = "x"
                pflags = ""
                if plane.col_index is not None:
                    args[f"idx{j}"] = plane.col_index
                    args[f"sel{j}"] = scratch[f"sel{j}"]
                    lines.append(f"np.take(x, idx{j}, axis=1, out=sel{j})")
                    src = f"sel{j}"
                    pflags += "c"
                args[f"part{j}"] = scratch[f"part{j}"]
                lines.append(f"np.matmul({src}, w{j}, out=part{j})")
                if plane.rows is None:
                    lines.append(f"np.add(out, part{j}, out=out)")
                else:
                    args[f"rows{j}"] = plane.rows
                    lines.append(f"out[:, rows{j}] += part{j}")
                    pflags += "r"
                extra.append((j, pflags))
        else:
            args["w"] = op.weight_t
            lines.append("np.matmul(x, w, out=out)")
        if op.bias is not None:
            args["bias"] = op.bias
            lines.append("np.add(out, bias, out=out)")
            flags.append("bias")
        shape_key = (x.shape[1:], op.weight_t.shape)
    for name in etmps:
        args[name] = scratch[name]
    _emit_epilogue(lines, sig, "out", list(etmps))
    spec = KernelSpec(
        kind=kind,
        impl=impl,
        shape=shape_key,
        dtype=str(dtype),
        flags=tuple(flags),
        epilogue=sig,
        extra=tuple(extra),
    )
    thunk = _make(spec, args, lines)
    if backend == "native":
        native = _native_make(
            "make_producer", kind, op, x, out, scratch, impl, sig, spec, thunk,
            record, threads,
        )
        if native is not None:
            return native
    if record is not None:
        record.setdefault("backend", "numpy")
    return thunk


# -- elementwise chains (standalone LeakyReLU / ActQuant / Affine) ------------


def eltwise_scratch(chain, out_tail: tuple, inplace: bool) -> list[ScratchReq]:
    """Scratch for a standalone elementwise chain.

    A not-in-place chain whose head is a nonzero-slope LeakyReLU uses the
    destination itself as the multiply target (matching the op-by-op
    ``LeakyReluOp.run`` non-inplace branch, whose result buffer doubles as
    the scratch); only in-place heads and later LeakyReLUs need real
    scratch, one buffer per occurrence.
    """
    reqs: list[ScratchReq] = []
    for i, step in enumerate(chain):
        if step[0] == "lrelu" and float(step[1]) != 0.0 and (inplace or i > 0):
            reqs.append(ScratchReq(f"etmp{i}", out_tail))
    return reqs


def bind_eltwise(
    chain,
    x: np.ndarray,
    out: np.ndarray,
    scratch: dict,
    dtype: np.dtype,
    backend: str = "numpy",
    record: dict | None = None,
    threads: int = 0,
):
    """Bind a standalone elementwise chain kernel (head + fused followers).

    ``out`` may alias ``x`` (the in-place case); the generated sequence
    replicates each op's ``run()`` bit for bit in both layouts.
    """
    inplace = out is x
    args: dict = {"x": x} if inplace else {"x": x, "out": out}
    outname = "x" if inplace else "out"
    lines: list[str] = []
    flags = ["inplace"] if inplace else []
    head, rest = chain[0], chain[1:]
    if head[0] == "lrelu":
        slope = repr(float(head[1]))
        if slope == "0.0":
            lines.append(f"np.maximum(x, 0.0, out={outname})")
        elif inplace:
            args["etmp0"] = scratch["etmp0"]
            lines.append(f"np.multiply(x, {slope}, out=etmp0)")
            lines.append("np.maximum(x, etmp0, out=x)")
        else:
            lines.append(f"np.multiply(x, {slope}, out=out)")
            lines.append("np.maximum(x, out, out=out)")
        sig_head = ("lrelu", slope)
    elif head[0] == "aq":
        step_f, half = float(head[1]), float(head[2])
        inv, lo, hi, stp = repr(1.0 / step_f), repr(-half), repr(half - 1.0), repr(step_f)
        lines.append(f"np.multiply(x, {inv}, out={outname})")
        lines.append(f"np.rint({outname}, out={outname})")
        lines.append(f"np.clip({outname}, {lo}, {hi}, out={outname})")
        lines.append(f"np.multiply({outname}, {stp}, out={outname})")
        sig_head = ("aq", inv, lo, hi, stp)
    elif head[0] == "affine":
        scale, shift = head[1], head[2]
        args["scale"] = scale[:, None, None]
        args["shift"] = shift[:, None, None]
        lines.append(f"np.multiply(x, scale, out={outname})")
        lines.append(f"np.add({outname}, shift, out={outname})")
        sig_head = ("affine",)
    else:  # pragma: no cover - guarded by the trace pass
        raise ValueError(f"unknown eltwise head {head[0]!r}")
    etmps = sorted(n for n in scratch if n.startswith("etmp") and n != "etmp0")
    for name in etmps:
        args[name] = scratch[name]
    sig_rest = _epilogue_sig(rest)
    _emit_epilogue(lines, sig_rest, outname, list(etmps))
    spec = KernelSpec(
        kind="eltwise",
        impl="",
        shape=tuple(x.shape[1:]),
        dtype=str(dtype),
        flags=tuple(flags),
        epilogue=(sig_head,) + sig_rest,
    )
    thunk = _make(spec, args, lines)
    if backend == "native":
        native = _native_make(
            "make_eltwise", (sig_head,) + sig_rest, x, out, spec, thunk, record, threads
        )
        if native is not None:
            return native
    if record is not None:
        record.setdefault("backend", "numpy")
    return thunk


# -- pools / gap / add --------------------------------------------------------


def bind_pool(
    pool_kind: str,
    kernel: int,
    stride: int,
    x: np.ndarray,
    out: np.ndarray,
    scratch: dict,
    epilogue,
    dtype: np.dtype,
    backend: str = "numpy",
    record: dict | None = None,
    threads: int = 0,
):
    """Max/avg pool with the ``k*k`` shifted window views prebound."""
    oh = (x.shape[2] - kernel) // stride + 1
    ow = (x.shape[3] - kernel) // stride + 1
    args: dict = {"out": out}
    lines: list[str] = []
    names = []
    for i in range(kernel):
        for j in range(kernel):
            name = f"v{len(names)}"
            args[name] = x[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
            names.append(name)
    lines.append(f"out[...] = {names[0]}")
    reducer = "np.maximum(out, {v}, out=out)" if pool_kind == "maxpool" else "np.add(out, {v}, out=out)"
    for v in names[1:]:
        lines.append(reducer.format(v=v))
    if pool_kind == "avgpool":
        lines.append(f"np.multiply(out, {repr(1.0 / (kernel * kernel))}, out=out)")
    sig = _epilogue_sig(epilogue)
    etmps = sorted(n for n in scratch if n.startswith("etmp"))
    for name in etmps:
        args[name] = scratch[name]
    _emit_epilogue(lines, sig, "out", list(etmps))
    spec = KernelSpec(
        kind=pool_kind,
        impl="",
        shape=(x.shape[1:], kernel, stride),
        dtype=str(dtype),
        flags=(),
        epilogue=sig,
        extra=(len(names),),
    )
    thunk = _make(spec, args, lines)
    if backend == "native":
        native = _native_make(
            "make_pool", pool_kind, kernel, stride, x, out, sig, spec, thunk,
            record, threads,
        )
        if native is not None:
            return native
    if record is not None:
        record.setdefault("backend", "numpy")
    return thunk


def bind_gap(
    x: np.ndarray,
    out: np.ndarray,
    scratch: dict,
    epilogue,
    dtype: np.dtype,
    backend: str = "numpy",
    record: dict | None = None,
    threads: int = 0,
):
    args: dict = {"x": x, "out": out}
    lines = ["np.mean(x, axis=(2, 3), out=out)"]
    sig = _epilogue_sig(epilogue)
    etmps = sorted(n for n in scratch if n.startswith("etmp"))
    for name in etmps:
        args[name] = scratch[name]
    _emit_epilogue(lines, sig, "out", list(etmps))
    spec = KernelSpec(
        kind="gap", impl="", shape=tuple(x.shape[1:]), dtype=str(dtype), flags=(), epilogue=sig
    )
    thunk = _make(spec, args, lines)
    if backend == "native":
        native = _native_make("make_gap", x, out, sig, spec, thunk, record, threads)
        if native is not None:
            return native
    if record is not None:
        record.setdefault("backend", "numpy")
    return thunk


def bind_add(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray,
    scratch: dict,
    epilogue,
    dtype: np.dtype,
    backend: str = "numpy",
    record: dict | None = None,
    threads: int = 0,
):
    args: dict = {"a": a, "b": b, "out": out}
    lines = ["np.add(a, b, out=out)"]
    sig = _epilogue_sig(epilogue)
    etmps = sorted(n for n in scratch if n.startswith("etmp"))
    for name in etmps:
        args[name] = scratch[name]
    _emit_epilogue(lines, sig, "out", list(etmps))
    spec = KernelSpec(
        kind="add", impl="", shape=tuple(a.shape[1:]), dtype=str(dtype), flags=(), epilogue=sig
    )
    thunk = _make(spec, args, lines)
    if backend == "native":
        native = _native_make("make_add", a, b, out, sig, spec, thunk, record, threads)
        if native is not None:
            return native
    if record is not None:
        record.setdefault("backend", "numpy")
    return thunk


# -- autotune support ---------------------------------------------------------


def variants_for(op) -> tuple[str, ...]:
    """Kernel impl candidates the generated-kernel library offers for ``op``."""
    if getattr(op, "shift", None) is not None:
        return ("dense", "shift_plane")
    return ("dense",)


def _shift_signature(op) -> tuple:
    shift = getattr(op, "shift", None)
    if shift is None:
        return ()
    return tuple(
        (p.weight.shape, None if p.col_index is None else int(p.col_index.size), p.rows is None)
        for p in shift.planes
    )


def autotune_key(op, x_shape: tuple, dtype: np.dtype, reps: int) -> tuple:
    """Persistent-cache key: identical shapes + kernel set => identical
    timing problem, regardless of the weight *values* behind it."""
    kind = "linear" if hasattr(op, "weight_t") else "conv"
    wshape = op.weight_t.shape if kind == "linear" else op.weight2d.shape
    geom = () if kind == "linear" else (op.kernel, op.stride, op.padding)
    return (kind, tuple(x_shape), tuple(wshape), geom, _shift_signature(op), str(dtype), int(reps))


def bind_standalone_producer(
    op,
    x: np.ndarray,
    impl: str,
    dtype: np.dtype,
    backend: str = "numpy",
    record: dict | None = None,
    threads: int = 0,
):
    """A self-buffered generated kernel for one conv/linear op (autotune path).

    Allocates private out/scratch arrays and returns ``(thunk, out)`` — the
    same codegen the traced executor binds, so autotune measures exactly the
    kernels the fused program will run (including the native variants when
    ``backend="native"``).
    """
    kind = "linear" if hasattr(op, "weight_t") else "conv"
    nb = x.shape[0]
    reqs = producer_scratch(kind, op, x.shape, impl, ())
    scratch = {
        r.name: np.zeros((nb,) + r.tail, dtype) if r.zero else np.empty((nb,) + r.tail, dtype)
        for r in reqs
    }
    if kind == "conv":
        h, w = x.shape[2], x.shape[3]
        k, s, p = op.kernel, op.stride, op.padding
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        out = np.empty((nb, op.weight2d.shape[0], oh * ow), dtype)
    else:
        out = np.empty((nb, op.weight_t.shape[1]), dtype)
    thunk = bind_producer(kind, op, x, out, scratch, impl, (), dtype, backend, record, threads)
    return thunk, out
