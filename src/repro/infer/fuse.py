"""IR optimization passes and the traced-program executor.

:func:`optimize` takes the linear IR recorded by :mod:`repro.infer.trace`
and produces a :class:`TracedProgram` — a bound-once, replayed-many
execution schedule of generated kernels (:mod:`repro.infer.kernels`).  The
passes, in order:

1. **Flatten aliasing** — reshape nodes vanish; their outputs become views
   of the root value (this is lowering, not optimization, and always runs).
2. **Epilogue fusion** (``PlanConfig.fuse``) — a standalone LeakyReLU or
   ActQuant whose input has exactly one reader is absorbed into its
   producer's kernel as an epilogue, eliminating a full intermediate
   traversal per fused op.  Legality: single reader, producer in the fused
   kernel library, value not the program output, no alias in between.
3. **Dead-value elimination** (``PlanConfig.fuse``) — nodes whose outputs
   are never read (and aren't the program output) are dropped.
4. **Batch blocking** — every node kind except ``linear``/``fallback`` is
   per-sample independent (numpy's batched ``matmul`` runs one GEMM per
   sample, so splitting the batch is *bitwise invariant*); nodes before the
   first non-blockable one execute in cache-sized batch blocks so the whole
   working set of the conv trunk stays resident instead of streaming
   full-batch intermediates through memory once per op.
5. **Register allocation** — liveness-based slot reuse through
   :class:`repro.nn.arena.RegisterPlanner`, one planner per storage scope
   (per-block vs full-batch).  Peak intermediate memory becomes the high-
   water mark of live values, not the sum of all of them.

A :class:`TracedProgram` is immutable; per-:class:`ExecutionContext` bound
state (flat registers, prebound views, the thunk list) is cached on the
context keyed by the program's ``uid``.  Invalidation rides the plan's
``WeightBinding`` fingerprint machinery: any refresh that touches weights
calls ``ExecutionPlan.invalidate_traced()``, dropping the programs (and
orphaning their bound states), so the next execution re-traces and re-binds
against the fresh arrays atomically.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from math import prod

import numpy as np

from repro.infer import kernels
from repro.nn.arena import RegisterPlanner
from repro.nn.tensor import Tensor, no_grad
from repro.utils.profiler import active_profiler

__all__ = ["TracedProgram", "optimize"]

#: Target bytes of per-block working set (activations + scratch) for batch
#: blocking; roughly "stay L2/L3-resident".  Tests shrink this to force
#: multi-block execution on unit-test-sized inputs.
_BLOCK_TARGET_BYTES = 4 << 20
#: Don't bother with blocks smaller than this (per-call overhead dominates).
_BLOCK_MIN = 8
#: Bound states kept per execution context (per distinct traced program).
_MAX_BOUND_STATES = 4

_FUSABLE_PRODUCERS = ("conv", "linear", "add", "maxpool", "avgpool", "gap", "eltwise")
_UNBLOCKABLE = ("linear", "fallback")

_uid_counter = itertools.count(1)
_uid_lock = threading.Lock()


def _next_uid() -> int:
    with _uid_lock:
        return next(_uid_counter)


# -- IR passes ----------------------------------------------------------------


def _resolve(vals, vid: int) -> int:
    while vals[vid].alias_of is not None:
        vid = vals[vid].alias_of
    return vid


def _recount_readers(nodes, vals) -> None:
    for v in vals:
        v.readers = []
    for node in nodes:
        for s in node.srcs:
            vals[_resolve(vals, s)].readers.append(node)


def _alias_flatten(ir) -> int:
    """Turn flatten nodes into storage aliases of their inputs."""
    kept, removed = [], 0
    for node in ir.nodes:
        if node.kind == "flatten":
            ir.vals[node.dst].alias_of = _resolve(ir.vals, node.srcs[0])
            ir.vals[node.dst].producer = None
            removed += 1
        else:
            kept.append(node)
    ir.nodes = kept
    return removed


def _fuse_epilogues(ir) -> int:
    """Absorb single-reader LeakyReLU/ActQuant nodes into their producers."""
    fused = 0
    out_root = _resolve(ir.vals, ir.out_val)
    changed = True
    while changed:
        changed = False
        _recount_readers(ir.nodes, ir.vals)
        for node in ir.nodes:
            if node.kind != "eltwise" or node.head[0] not in ("lrelu", "aq"):
                continue
            svid = node.srcs[0]
            sval = ir.vals[svid]
            # No fusing across an alias: the producer's kernel writes its own
            # output layout, and the reshaped value must stay a plain view.
            if sval.alias_of is not None:
                continue
            producer = sval.producer
            if producer is None or producer.kind not in _FUSABLE_PRODUCERS:
                continue
            if svid == out_root or sval.readers != [node]:
                continue
            producer.epilogue = producer.epilogue + [node.head] + node.epilogue
            producer.dst = node.dst
            ir.vals[node.dst].producer = producer
            ir.nodes.remove(node)
            fused += 1
            changed = True
            break  # reader lists are stale; restart the scan
    return fused


def _eliminate_dead(ir) -> int:
    """Drop nodes whose outputs nothing reads (all node kinds are pure)."""
    removed = 0
    out_root = _resolve(ir.vals, ir.out_val)
    changed = True
    while changed:
        changed = False
        _recount_readers(ir.nodes, ir.vals)
        for node in list(ir.nodes):
            droot = _resolve(ir.vals, node.dst)
            if droot != out_root and not ir.vals[droot].readers:
                ir.nodes.remove(node)
                removed += 1
                changed = True
    return removed


# -- scratch planning ---------------------------------------------------------


def _node_scratch(node, vals, inplace: bool):
    """Scratch requests of ``node``'s generated kernel (bind order)."""
    op = node.op
    if node.kind in ("conv", "linear"):
        impl = getattr(op, "impl", "dense")
        return kernels.producer_scratch(
            node.kind, op, vals[node.srcs[0]].shape, impl, node.epilogue
        )
    if node.kind == "eltwise":
        chain = [node.head] + node.epilogue
        return kernels.eltwise_scratch(chain, vals[node.dst].shape[1:], inplace)
    if node.kind in ("maxpool", "avgpool", "gap", "add"):
        return kernels.epilogue_scratch(node.epilogue, vals[node.dst].shape[1:])
    return []  # fallback: the module allocates its own intermediates


def _phase_name(node) -> str:
    if node.kind in ("conv", "linear"):
        base = f"{node.kind}[{getattr(node.op, 'impl', 'dense')}]"
    elif node.kind == "eltwise":
        base = node.head[0]
    else:
        base = node.kind
    return f"ir{node.index}:" + "+".join([base] + [step[0] for step in node.epilogue])


@dataclass
class _NodePlan:
    """Schedule entry: one IR node plus its placement decisions."""

    node: object
    blocked: bool
    inplace: bool
    scratch: list  # [(ScratchReq, register id)] in the node's scope
    phase: str


# -- the compiled program -----------------------------------------------------


class _BoundState:
    """Per-context realization of a program: registers + prebound thunks."""

    __slots__ = ("input", "regs", "thunks", "names", "out")


class TracedProgram:
    """An optimized, shape-specialized execution schedule for one plan.

    Immutable once built.  ``run`` binds lazily per execution context (flat
    registers are allocated and every kernel's views/constants resolved
    exactly once per context), then replays the thunk list per batch.  The
    output array is a register view owned by the context — same ownership
    contract as the interpreter path.
    """

    def __init__(
        self,
        ir,
        node_plans: list,
        val_reg: dict,
        reg_sizes: dict,
        zero_regs: set,
        blocks: list,
        stats: dict,
        backend: str = "numpy",
        threads: int = 0,
    ) -> None:
        self.uid = _next_uid()
        self.vals = ir.vals
        self.out_val = ir.out_val
        self.input_shape = ir.input_shape
        self.n = ir.input_shape[0]
        self.dtype = np.dtype(ir.dtype)
        self.node_plans = node_plans
        self.val_reg = val_reg  # root val id -> (scope, register id)
        self.reg_sizes = reg_sizes  # scope -> [elems per register]
        self.zero_regs = zero_regs  # {(scope, register id)} zero-filled at bind
        self.blocks = blocks  # [(start, end)] batch blocks
        self.bmax = max(e - s for s, e in blocks)
        self.stats = stats
        #: Plan-level backend policy ("numpy" | "native" | "auto") and the
        #: per-node outcome records (filled at bind/first-run time by
        #: :mod:`repro.infer.kernels` / the native binding's self-check).
        self.backend = backend
        #: Intra-op thread count (0 = serial untiled kernels, N >= 1 = the
        #: tiled threaded kernel variants; see
        #: :mod:`repro.infer.native.threading`).
        self.threads = threads
        self.node_backends: dict[int, dict] = {}

    def _node_backend(self, node) -> tuple[str, dict]:
        """(effective backend for this node's bind, its outcome record).

        ``"numpy"`` at the program level wins everywhere; a per-op choice
        (autotune's measured pick) beats the program default; otherwise
        ``"auto"``/``"native"`` both try the native backend — it declines
        or self-demotes per kernel, so trying is always safe.
        """
        rec = self.node_backends.setdefault(
            node.index, {"kind": node.kind, "impl": getattr(node.op, "impl", "")}
        )
        if self.backend == "numpy":
            return "numpy", rec
        op_choice = getattr(node.op, "backend", "auto")
        if op_choice != "auto":
            return op_choice, rec
        return "native", rec

    def backend_counts(self) -> dict:
        """``{"native": n, "numpy": m}`` over nodes bound so far."""
        counts: dict[str, int] = {}
        for rec in self.node_backends.values():
            chosen = rec.get("backend")
            if chosen:
                counts[chosen] = counts.get(chosen, 0) + 1
        return counts

    # -- binding ---------------------------------------------------------------

    def _view(self, state: _BoundState, vid: int, blk):
        """A typed view of value ``vid`` for one batch block (or full batch)."""
        vals = self.vals
        root = _resolve(vals, vid)
        rv = vals[root]
        if rv.producer is None:  # the program input
            base = state.input if blk is None else state.input[blk[0] : blk[1]]
        else:
            scope, rid = self.val_reg[root]
            buf = state.regs[scope][rid]
            if scope == "block":
                nb = self.n if blk is None else blk[1] - blk[0]
                base = buf[: nb * prod(rv.shape[1:])].reshape((nb,) + rv.shape[1:])
            else:
                full = buf[: prod(rv.shape)].reshape(rv.shape)
                base = full if blk is None else full[blk[0] : blk[1]]
        if vid != root:  # alias: reshape the root's storage
            base = base.reshape((base.shape[0],) + vals[vid].shape[1:])
        return base

    def _bind_node(self, state: _BoundState, nplan: _NodePlan, blk):
        node = nplan.node
        nb = self.n if blk is None else blk[1] - blk[0]
        scope = "block" if nplan.blocked else "full"
        scratch = {}
        for req, rid in nplan.scratch:
            rows = nb if scope == "block" else self.n
            buf = state.regs[scope][rid]
            scratch[req.name] = buf[: rows * prod(req.tail)].reshape((rows,) + req.tail)
        kind, op = node.kind, node.op
        backend, rec = self._node_backend(node)
        if kind == "conv":
            x = self._view(state, node.srcs[0], blk)
            dstv = self._view(state, node.dst, blk)
            out3 = dstv.reshape(dstv.shape[0], dstv.shape[1], -1)
            return kernels.bind_producer(
                "conv", op, x, out3, scratch, op.impl, node.epilogue, self.dtype,
                backend, rec, self.threads,
            )
        if kind == "linear":
            x = self._view(state, node.srcs[0], blk)
            out = self._view(state, node.dst, blk)
            return kernels.bind_producer(
                "linear", op, x, out, scratch, op.impl, node.epilogue, self.dtype,
                backend, rec, self.threads,
            )
        if kind == "eltwise":
            x = self._view(state, node.srcs[0], blk)
            out = x if nplan.inplace else self._view(state, node.dst, blk)
            return kernels.bind_eltwise(
                [node.head] + node.epilogue, x, out, scratch, self.dtype, backend, rec,
                self.threads,
            )
        if kind in ("maxpool", "avgpool"):
            x = self._view(state, node.srcs[0], blk)
            out = self._view(state, node.dst, blk)
            return kernels.bind_pool(
                kind, op.kernel, op.stride, x, out, scratch, node.epilogue, self.dtype,
                backend, rec, self.threads,
            )
        if kind == "gap":
            x = self._view(state, node.srcs[0], blk)
            out = self._view(state, node.dst, blk)
            return kernels.bind_gap(
                x, out, scratch, node.epilogue, self.dtype, backend, rec, self.threads
            )
        if kind == "add":
            a = self._view(state, node.srcs[0], blk)
            b = self._view(state, node.srcs[1], blk)
            out = self._view(state, node.dst, blk)
            return kernels.bind_add(
                a, b, out, scratch, node.epilogue, self.dtype, backend, rec,
                self.threads,
            )
        # fallback: eager module forward, copied into the destination register
        rec.setdefault("backend", "numpy")
        x = self._view(state, node.srcs[0], blk)
        out = self._view(state, node.dst, blk)
        module = op.module

        def fallback():
            with no_grad():
                out[...] = module(Tensor(x)).data

        return fallback

    def _bind(self) -> _BoundState:
        state = _BoundState()
        state.input = np.empty(self.input_shape, self.dtype)
        state.regs = {
            "block": [np.empty(sz * self.bmax, self.dtype) for sz in self.reg_sizes["block"]],
            "full": [np.empty(sz, self.dtype) for sz in self.reg_sizes["full"]],
        }
        for scope, rid in self.zero_regs:
            state.regs[scope][rid].fill(0.0)
        thunks: list = []
        names: list[str] = []
        for blk in self.blocks:
            for nplan in self.node_plans:
                if nplan.blocked:
                    thunks.append(self._bind_node(state, nplan, blk))
                    names.append(nplan.phase)
        for nplan in self.node_plans:
            if not nplan.blocked:
                thunks.append(self._bind_node(state, nplan, None))
                names.append(nplan.phase)
        state.thunks = thunks
        state.names = names
        state.out = self._view(state, self.out_val, None)
        return state

    # -- execution -------------------------------------------------------------

    def run(self, x: np.ndarray, ctx) -> np.ndarray:
        """Execute one batch; returns a register view owned by ``ctx``."""
        cache = getattr(ctx, "_traced", None)
        if cache is None:
            cache = {}
            ctx._traced = cache
        state = cache.get(self.uid)
        if state is None:
            state = self._bind()
            cache[self.uid] = state
            while len(cache) > _MAX_BOUND_STATES:
                cache.pop(next(iter(cache)))
        np.copyto(state.input, x, casting="unsafe")
        prof = active_profiler()
        if prof is None:
            for fn in state.thunks:
                fn()
        else:
            for name, fn in zip(state.names, state.thunks):
                with prof.phase(name):
                    fn()
        return state.out


# -- the optimizer ------------------------------------------------------------


def _naive_bytes(ir) -> int:
    """Intermediate bytes the op-by-op interpreter holds for this program:
    one full-batch buffer per op output plus each op's private scratch
    (pad / im2col columns / plane partials / elementwise temporaries)."""
    n = ir.input_shape[0]
    itemsize = np.dtype(ir.dtype).itemsize
    elems = 0
    for node in ir.nodes:
        if node.kind == "flatten":
            continue  # reshape view, no buffer
        elems += prod(ir.vals[node.dst].shape)
        for req in _node_scratch(node, ir.vals, inplace=True):
            elems += n * prod(req.tail)
    return elems * itemsize


def optimize(ir, plan) -> TracedProgram:
    """Run the IR passes and produce a bound-ready :class:`TracedProgram`."""
    fuse_enabled = bool(getattr(plan.config, "fuse", True))
    naive = _naive_bytes(ir)
    aliased = _alias_flatten(ir)
    fused = dead = 0
    if fuse_enabled:
        fused = _fuse_epilogues(ir)
        dead = _eliminate_dead(ir)
    nodes = ir.nodes
    vals = ir.vals
    _recount_readers(nodes, vals)
    pos = {id(node): t for t, node in enumerate(nodes)}
    out_root = _resolve(vals, ir.out_val)
    n = ir.input_shape[0]

    # Batch-blocking cut: everything before the first non-per-sample node
    # runs in batch blocks, everything from it on runs full-batch.
    cut = len(nodes)
    if fuse_enabled:
        for t, node in enumerate(nodes):
            if node.kind in _UNBLOCKABLE:
                cut = t
                break
    else:
        cut = 0

    # Storage scopes: a value lives per-block iff it is produced and fully
    # consumed inside the blocked region and is not the program output.
    scope_of: dict[int, str] = {}
    for node in nodes:
        for vid in node.srcs + (node.dst,):
            root = _resolve(vals, vid)
            if root in scope_of:
                continue
            rv = vals[root]
            if rv.producer is None:
                scope_of[root] = "input"
                continue
            t_prod = pos[id(rv.producer)]
            reader_ts = [pos[id(r)] for r in rv.readers]
            if root != out_root and t_prod < cut and all(t < cut for t in reader_ts):
                scope_of[root] = "block"
            else:
                scope_of[root] = "full"

    last_use: dict[int, int] = {}
    for t, node in enumerate(nodes):
        for s in node.srcs:
            last_use[_resolve(vals, s)] = t
    last_use[out_root] = len(nodes)  # the output outlives the program

    # Liveness-driven register allocation (reuse only when fusing).
    planners = {"block": RegisterPlanner(), "full": RegisterPlanner()}
    val_reg: dict[int, tuple] = {}
    occupants: dict[tuple, set] = {}
    zero_regs: set = set()
    node_plans: list[_NodePlan] = []
    for t, node in enumerate(nodes):
        blocked = t < cut
        nscope = "block" if blocked else "full"
        planner = planners[nscope]
        src_roots = [_resolve(vals, s) for s in node.srcs]
        dst = node.dst
        dscope = scope_of[dst]
        dval = vals[dst]
        delems = prod(dval.shape[1:]) if dscope == "block" else prod(dval.shape)

        # In-place: a standalone elementwise op may overwrite its input when
        # that value dies here and shares nothing (mirrors `mark_inplace`).
        inplace = False
        if fuse_enabled and node.kind == "eltwise" and len(src_roots) == 1:
            r = src_roots[0]
            key = val_reg.get(r)
            if (
                key is not None
                and scope_of[r] == dscope
                and last_use.get(r) == t
                and occupants.get(key) == {r}
            ):
                inplace = True
                val_reg[dst] = key
                occupants[key] = {dst}
        if not inplace:
            # Destination first, sources freed last: a kernel's output can
            # never be handed the register one of its own inputs lives in.
            # A boundary value (produced blocked, read full-batch) allocates
            # from the *full* planner — its own scope, not the node's.
            dplanner = planners[dscope]
            rid = dplanner.alloc(delems) if fuse_enabled else dplanner.alloc_dedicated(delems)
            val_reg[dst] = (dscope, rid)
            occupants[(dscope, rid)] = {dst}

        scratch_plan = []
        for req in _node_scratch(node, vals, inplace):
            elems = prod(req.tail) if nscope == "block" else n * prod(req.tail)
            if req.dedicated or not fuse_enabled:
                srid = planner.alloc_dedicated(elems)
            else:
                srid = planner.alloc(elems)
            if req.zero:
                zero_regs.add((nscope, srid))
            scratch_plan.append((req, srid))
        for req, srid in scratch_plan:
            if not req.dedicated and fuse_enabled:
                planner.free(srid)
        for r in set(src_roots):
            if last_use.get(r) == t:
                key = val_reg.get(r)
                if key is not None:
                    held = occupants.get(key)
                    if held is not None:
                        held.discard(r)
                        if not held and fuse_enabled:
                            planners[key[0]].free(key[1])
        node_plans.append(_NodePlan(node, blocked, inplace, scratch_plan, _phase_name(node)))

    itemsize = np.dtype(ir.dtype).itemsize
    ps_bytes = planners["block"].peak_elems() * itemsize
    if cut == 0 or ps_bytes == 0 or ps_bytes * n <= _BLOCK_TARGET_BYTES:
        b = n
    else:
        b = max(min(_BLOCK_MIN, n), min(n, _BLOCK_TARGET_BYTES // ps_bytes))
    blocks = [(s, min(s + b, n)) for s in range(0, n, b)] or [(0, n)]

    peak = (
        planners["block"].peak_elems() * b * itemsize
        + planners["full"].peak_elems() * itemsize
        + prod(ir.input_shape) * itemsize
    )
    stats = {
        "input_shape": list(ir.input_shape),
        "nodes": len(nodes),
        "fused_elementwise": fused,
        "eliminated_buffers": aliased + dead,
        "block_size": int(b),
        "blocks": len(blocks),
        "blocked_nodes": int(cut),
        "naive_intermediate_bytes": int(naive),
        "peak_intermediate_bytes": int(peak),
    }
    return TracedProgram(
        ir,
        node_plans,
        val_reg,
        {"block": planners["block"].sizes, "full": planners["full"].sizes},
        zero_regs,
        blocks,
        stats,
        backend=getattr(plan.config, "backend", "auto"),
        threads=getattr(plan, "intra_threads", 0),
    )
