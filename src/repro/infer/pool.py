"""Multicore batch sharding for the inference engine.

Shards a stream of batches across a worker pool with deterministic result
ordering: batch ``i``'s logits always land at rows ``i*batch_size...`` of
the output no matter which worker finishes first.

Two backends:

* ``"thread"`` (default) — a :class:`~concurrent.futures.ThreadPoolExecutor`
  where each worker draws a private :class:`ExecutionContext` from a reuse
  pool, so scratch buffers are still recycled across batches.  numpy's BLAS
  kernels release the GIL, so matmul-heavy plans overlap well.
* ``"process"`` — a :mod:`multiprocessing` pool (fork start method where
  available) whose plan travels through ``multiprocessing.shared_memory``:
  the op program is published once (:func:`~repro.utils.shm.publish_object`)
  and every worker attaches the same weight pages instead of unpickling a
  private copy — per-worker memory stays flat as the pool grows.  Hosts
  without usable shared memory fall back to plain pickled shipping.
"""

from __future__ import annotations

import multiprocessing
import queue
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import ConfigurationError, SharedMemoryError
from repro.infer.plan import ExecutionContext, ExecutionPlan, execute_ops
from repro.utils.shm import ShmHandle, load_object, publish_object

__all__ = ["shard_slices", "run_sharded"]

_BACKENDS = ("thread", "process")


def shard_slices(total: int, batch_size: int) -> list[slice]:
    """Contiguous batch slices covering ``range(total)`` in order.

    ``total == 0`` yields an empty list; ``total < batch_size`` yields one
    short slice covering everything.
    """
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if total < 0:
        raise ConfigurationError(f"total must be >= 0, got {total}")
    return [slice(s, min(s + batch_size, total)) for s in range(0, total, batch_size)]


# -- process backend plumbing (module-level for picklability) -----------------

_WORKER_OPS: list | None = None
_WORKER_OUT_SLOT: int = 0
_WORKER_DTYPE: np.dtype = np.dtype(np.float64)
_WORKER_INTQ = None
_WORKER_SEGMENT = None  # keeps the attached shm pages alive in each worker


def _init_process_worker(program) -> None:
    """Bind this worker's program: an :class:`~repro.utils.shm.ShmHandle`
    (weights attach as zero-copy shared views) or a plain payload dict
    (pickled fallback).  Integer-only twin programs ride along either way;
    kernels re-bind from each worker's codegen cache."""
    global _WORKER_OPS, _WORKER_OUT_SLOT, _WORKER_DTYPE, _WORKER_INTQ, _WORKER_SEGMENT
    if isinstance(program, ShmHandle):
        program, _WORKER_SEGMENT = load_object(program)
    _WORKER_OPS = program["ops"]
    _WORKER_OUT_SLOT = program["out_slot"]
    _WORKER_DTYPE = program["dtype"]
    _WORKER_INTQ = program["intq"]


def _run_process_batch(task: tuple[int, np.ndarray]) -> tuple[int, np.ndarray]:
    index, images = task
    if _WORKER_INTQ is not None:
        out = _WORKER_INTQ.run(np.asarray(images), ExecutionContext())
    else:
        out = execute_ops(_WORKER_OPS, images, ExecutionContext(), _WORKER_OUT_SLOT, _WORKER_DTYPE)
    return index, np.array(out, copy=True)


def _run_threaded(plan: ExecutionPlan, images: np.ndarray, slices: list[slice], workers: int):
    contexts: queue.SimpleQueue[ExecutionContext] = queue.SimpleQueue()

    def run_one(index: int) -> tuple[int, np.ndarray]:
        try:
            ctx = contexts.get_nowait()
        except queue.Empty:
            ctx = ExecutionContext()
        out = np.array(plan.execute(images[slices[index]], ctx), copy=True)
        contexts.put(ctx)
        return index, out

    # Never spawn more threads than there are shards — with fewer batches
    # than workers the surplus threads would only add startup/teardown cost.
    with ThreadPoolExecutor(max_workers=max(1, min(workers, len(slices)))) as pool:
        yield from pool.map(run_one, range(len(slices)))


def _run_processes(plan: ExecutionPlan, images: np.ndarray, slices: list[slice], workers: int):
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    tasks = ((i, images[s]) for i, s in enumerate(slices))
    payload = plan.payload()
    segment = None
    try:
        program = payload
        try:
            program, segment = publish_object(payload, name_prefix="repro-pool")
        except SharedMemoryError:  # pragma: no cover - host without /dev/shm
            pass
        with ctx.Pool(
            max(1, min(workers, len(slices))),
            initializer=_init_process_worker,
            initargs=(program,),
        ) as pool:
            yield from pool.imap_unordered(_run_process_batch, tasks)
    finally:
        if segment is not None:
            segment.unlink()
            segment.close()


def run_sharded(
    plan: ExecutionPlan,
    images: np.ndarray,
    batch_size: int,
    workers: int,
    backend: str = "thread",
) -> np.ndarray:
    """Run ``images`` through ``plan`` in parallel batches.

    Returns the stacked outputs in dataset order regardless of worker
    completion order.

    When the plan runs with intra-op threads (``plan.intra_threads >= 2``)
    the effective parallelism per shard is already ``intra_threads`` CPUs,
    so the shard-level worker count is clamped to
    ``effective_cpus // intra_threads`` (floor 1) — otherwise ``workers *
    intra_threads`` threads would thrash a smaller CPU set.  Results are
    unaffected: both levels are deterministic.
    """
    if backend not in _BACKENDS:
        raise ConfigurationError(f"unknown pool backend {backend!r}; use one of {_BACKENDS}")
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    intra = int(getattr(plan, "intra_threads", 0) or 0)
    if intra >= 2 and workers > 1:
        from repro.utils.cpu import effective_cpus

        workers = min(workers, max(1, effective_cpus() // intra))
    slices = shard_slices(len(images), batch_size)
    runner = _run_threaded if backend == "thread" else _run_processes
    out: np.ndarray | None = None
    for index, logits in runner(plan, images, slices, workers):
        if out is None:
            out = np.empty((len(images),) + logits.shape[1:], dtype=logits.dtype)
        out[slices[index]] = logits
    if out is None:
        raise ConfigurationError("cannot run inference on an empty image array")
    return out
