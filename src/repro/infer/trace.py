"""Symbolic tracing: one recorded pass of an :class:`ExecutionPlan` into IR.

:func:`trace_plan` executes the plan's op list *symbolically* for one input
shape: instead of arrays, values flow as :class:`Val` records (static full-
batch shape + producer + readers), and each plan op lowers to one
:class:`IRNode` — a typed instruction whose sources and destination are val
ids.  The result is a linear program with explicit dataflow, which is what
the optimizer in :mod:`repro.infer.fuse` needs to reason about epilogue
fusion legality (single-reader intermediates), buffer lifetimes (liveness
intervals over node positions) and batch-blocking legality (every node kind
recorded here except ``linear``/``fallback`` is per-sample independent).

Tracing is *total or nothing*: any op the lowering doesn't understand, any
shape that doesn't propagate cleanly (and any exception at all — tracing
must never take execution down) returns ``None``, and the plan keeps
running through the op-by-op interpreter for that input shape.  A
``FallbackOp`` is traceable — its output shape is learned by probing the
wrapped module on a single zero sample — but pins itself and everything
after it to full-batch execution.

Shapes recorded here mirror each op's ``run()`` arithmetic exactly (same
floor-division output sizes, same im2col column counts), so a program built
from this IR computes the same ufunc calls on the same shapes as the
interpreter — the foundation of the fused path's bitwise parity guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod

import numpy as np

from repro.infer.plan import (
    ActQuantOp,
    AddOp,
    AffineOp,
    AvgPoolOp,
    ConvOp,
    ExecutionPlan,
    FallbackOp,
    FlattenOp,
    GlobalAvgPoolOp,
    LeakyReluOp,
    LinearOp,
    MaxPoolOp,
)
from repro.nn.tensor import Tensor, no_grad
from repro.utils.logging import get_logger

__all__ = ["Val", "IRNode", "IRProgram", "trace_plan", "build_traced_program"]

logger = get_logger("infer.trace")


@dataclass
class Val:
    """One SSA value: a full-batch intermediate with static shape.

    ``alias_of`` marks pure reshapes (flatten) that share the root value's
    storage; passes always resolve reads to the root.  ``producer`` and
    ``readers`` hold :class:`IRNode` objects (stable across node removal).
    """

    id: int
    shape: tuple
    producer: "IRNode | None" = None
    alias_of: "int | None" = None
    readers: list = field(default_factory=list)


@dataclass
class IRNode:
    """One typed instruction: base computation + fused elementwise epilogue.

    ``kind`` is one of ``conv | linear | eltwise | maxpool | avgpool | gap |
    add | flatten | fallback``.  ``op`` is the originating plan op (arrays
    and geometry are read from it at bind time, so a weight refresh that
    rebuilds the traced program automatically picks up fresh arrays).
    ``head`` (eltwise only) is the node's own elementwise step; ``epilogue``
    holds steps fused in behind the base computation by the optimizer.
    """

    index: int  # originating plan-op index (phase names, diagnostics)
    kind: str
    op: object
    srcs: tuple
    dst: int
    head: "tuple | None" = None
    epilogue: list = field(default_factory=list)


@dataclass
class IRProgram:
    """A traced plan: linear node list over a val table, for one input shape."""

    nodes: list
    vals: list
    out_val: int
    input_shape: tuple
    dtype: np.dtype


def _conv_out_shape(op: ConvOp, src: tuple) -> "tuple | None":
    if len(src) != 4:
        return None
    n, c, h, w = src
    k, s, p = op.kernel, op.stride, op.padding
    if op.weight2d.shape[1] != c * k * k:
        return None  # channel layout drifted from the traced input
    oh = (h + 2 * p - k) // s + 1
    ow = (w + 2 * p - k) // s + 1
    if oh < 1 or ow < 1:
        return None
    return (n, op.weight2d.shape[0], oh, ow)


def _pool_out_shape(op, src: tuple) -> "tuple | None":
    if len(src) != 4:
        return None
    oh = (src[2] - op.kernel) // op.stride + 1
    ow = (src[3] - op.kernel) // op.stride + 1
    if oh < 1 or ow < 1:
        return None
    return (src[0], src[1], oh, ow)


def _fallback_out_shape(op: FallbackOp, src: tuple, dtype: np.dtype) -> "tuple | None":
    """Learn the module's output shape by probing one zero sample."""
    try:
        with no_grad():
            out = op.module(Tensor(np.zeros((1,) + src[1:], dtype))).data
    except Exception:
        return None
    return (src[0],) + tuple(out.shape[1:])


def trace_plan(plan: ExecutionPlan, input_shape: tuple) -> "IRProgram | None":
    """Record ``plan`` as an :class:`IRProgram` for ``input_shape``.

    Returns ``None`` whenever any op fails to lower — callers fall back to
    the op-by-op interpreter, never error.
    """
    input_shape = tuple(int(s) for s in input_shape)
    if len(input_shape) != 4:
        return None
    vals: list[Val] = [Val(0, input_shape)]
    slot_val: dict[int, int] = {0: 0}
    nodes: list[IRNode] = []

    def new_val(shape: tuple, node: IRNode) -> int:
        vals.append(Val(len(vals), tuple(int(s) for s in shape), producer=node))
        return vals[-1].id

    def emit(op, kind: str, srcs: tuple, shape: tuple, head=None) -> None:
        node = IRNode(op.index, kind, op, srcs, -1, head=head)
        node.dst = new_val(shape, node)
        for s in srcs:
            vals[s].readers.append(node)
        nodes.append(node)
        slot_val[op.dst] = node.dst

    for op in plan.ops:
        src = slot_val.get(op.src)
        if src is None:
            return None
        shape = vals[src].shape
        if isinstance(op, ConvOp):
            out = _conv_out_shape(op, shape)
            if out is None:
                return None
            emit(op, "conv", (src,), out)
        elif isinstance(op, LinearOp):
            if len(shape) != 2 or shape[1] != op.weight_t.shape[0]:
                return None
            emit(op, "linear", (src,), (shape[0], op.weight_t.shape[1]))
        elif isinstance(op, LeakyReluOp):
            emit(op, "eltwise", (src,), shape, head=("lrelu", float(op.slope)))
        elif isinstance(op, ActQuantOp):
            emit(op, "eltwise", (src,), shape, head=("aq", float(op.step), float(op.half)))
        elif isinstance(op, AffineOp):
            if len(shape) != 4 or shape[1] != op.scale.size:
                return None
            emit(op, "eltwise", (src,), shape, head=("affine", op.scale, op.shift))
        elif isinstance(op, MaxPoolOp) or isinstance(op, AvgPoolOp):
            out = _pool_out_shape(op, shape)
            if out is None:
                return None
            emit(op, "maxpool" if isinstance(op, MaxPoolOp) else "avgpool", (src,), out)
        elif isinstance(op, GlobalAvgPoolOp):
            if len(shape) != 4:
                return None
            emit(op, "gap", (src,), shape[:2])
        elif isinstance(op, AddOp):
            src2 = slot_val.get(op.src2)
            if src2 is None or vals[src2].shape != shape:
                return None
            emit(op, "add", (src, src2), shape)
        elif isinstance(op, FlattenOp):
            emit(op, "flatten", (src,), (shape[0], prod(shape[1:])))
        elif isinstance(op, FallbackOp):
            out = _fallback_out_shape(op, shape, plan.dtype)
            if out is None:
                return None
            emit(op, "fallback", (src,), out)
        else:
            return None  # unknown op type: stay on the interpreter
    out_val = slot_val.get(plan.out_slot)
    if out_val is None or out_val == 0:
        return None
    return IRProgram(nodes, vals, out_val, input_shape, plan.dtype)


def build_traced_program(plan: ExecutionPlan, input_shape: tuple):
    """Trace + optimize ``plan`` for one input shape; ``None`` on any failure.

    The traced path is an accelerator, never a correctness dependency: any
    exception in tracing or optimization is logged and swallowed, and the
    plan keeps executing through the interpreter for that shape.
    """
    try:
        ir = trace_plan(plan, input_shape)
        if ir is None:
            return None
        from repro.infer.fuse import optimize

        return optimize(ir, plan)
    except Exception:  # pragma: no cover - defensive, interpreter fallback
        logger.warning(
            "tracing failed for input shape %s; using op-by-op execution",
            tuple(input_shape),
            exc_info=True,
        )
        return None
