"""Per-layer kernel autotuning: measure, don't guess — and measure once.

Whether a shift-plane sum beats one dense GEMM depends on the BLAS kernel
shapes, the k histogram and how many rows each plane retains — a heuristic
over those would be wrong somewhere.  Instead, plan compilation executes the
op list once on a synthetic batch of the model's declared input shape and,
at each candidate op, times the kernel *variants the traced executor will
actually run*: the generated, shape-specialized kernels from
:mod:`repro.infer.kernels` (``bind_standalone_producer``), bound over the
calibration activations with warm private buffers, best-of-``reps`` wall
time per variant.

Decisions persist in :data:`repro.infer.kernels.AUTOTUNE_CACHE`, keyed by
the full shape signature of the timing problem — op kind, input shape,
weight shape, conv geometry, shift-plane structure, dtype, reps.  A plan
rebuild whose layers are shape-identical (the common hot-weight-refresh
case: new values, same structure) reuses the previous measurement instead
of re-timing every layer; a rebuild whose dead-filter structure drifted
gets a different signature and re-measures.  Cached decisions carry
``"cached": True`` in the report.

The pass runs only when ``PlanConfig.kernel == "auto"`` finds candidates —
layers still carrying dead rows after pruning — so models without sparsity
pay no calibration cost at all.
"""

from __future__ import annotations

import time

import numpy as np

from repro.infer.kernels import AUTOTUNE_CACHE, autotune_key, bind_standalone_producer
from repro.infer.plan import ExecutionContext

__all__ = ["autotune_ops"]

_IMPLS = ("dense", "shift_plane")


def _native_available() -> bool:
    try:
        from repro.infer.native import binding

        return binding.available()
    except Exception:
        return False


def _time_variant(op, x: np.ndarray, impl: str, dtype: np.dtype, reps: int) -> float:
    """Best-of-``reps`` wall time of the generated ``impl`` kernel on ``x``."""
    thunk, _ = bind_standalone_producer(op, x, impl, dtype)
    best = float("inf")
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def _time_native_variant(
    op,
    x: np.ndarray,
    impl: str,
    dtype: np.dtype,
    reps: int,
    threads: int = 0,
    gemm: str | None = None,
) -> float:
    """Best-of-``reps`` wall time of the native ``impl`` kernel, or inf.

    The warm-up call pays the compile and the first-call parity check; a
    variant that declined or failed its bitwise check reports inf so it can
    never win the tournament.  With ``threads >= 1`` the *tiled* threaded
    kernel is timed; ``gemm`` selects the dense GEMM flavor ("blas" or
    "micro") for that binding and is restored afterwards — the tournament
    winner is applied by the caller.
    """
    record: dict = {}
    prev_gemm = getattr(op, "gemm", None)
    if gemm is not None:
        op.gemm = gemm
    try:
        thunk, _ = bind_standalone_producer(
            op, x, impl, dtype, backend="native", record=record, threads=threads
        )
        thunk()
    except Exception:
        return float("inf")
    finally:
        op.gemm = prev_gemm
    if record.get("backend") != "native":
        return float("inf")
    if threads >= 1 and "threads" not in record:
        return float("inf")  # threaded runtime declined; serial fallback bound
    best = float("inf")
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def autotune_ops(
    ops: list,
    candidates: list[int],
    input_shape: tuple[int, int, int, int],
    dtype: np.dtype,
    reps: int = 3,
    backend: str = "auto",
    threads: int = 0,
) -> dict[int, dict]:
    """Pick the fastest generated kernel per candidate op; set each winner.

    With ``backend`` "auto" or "native" and a working toolchain, the
    tournament widens to the native C variants of the same kernels: the
    numpy winner is chosen exactly as before, then a native variant that
    beat it flips the op to ``backend="native"``.  Native timings ride the
    same persistent cache entry (keys grow a ``"native"`` marker so
    toolchain-free hosts never reuse a native-informed decision).

    With ``threads >= 1`` the native candidates are the *tiled* threaded
    kernels, and the dense tournament additionally races the blocked
    native GEMM micro-kernel against the OpenBLAS panel path; the winner
    lands on ``op.gemm``.  The cache key grows an ``"mt"`` marker — but
    **not** the thread count: the tiled kernels are bitwise identical for
    every thread count by construction, so one persisted decision (made at
    whatever count first compiled this shape) must serve all counts.  A
    per-count key could let timing noise record different GEMM winners for
    different counts and silently break cross-count bitwise identity.

    Args:
        ops: The compiled (post-pruning, post-plane-attachment) op list.
        candidates: ``op.index`` values with planes attached and an
            undecided kernel.
        input_shape: NCHW shape of the synthetic calibration batch.
        dtype: Plan compute dtype.
        reps: Timing repetitions per kernel; minimum wins.
        backend: The plan's ``PlanConfig.backend`` knob.
        threads: The plan's resolved intra-op thread count (0 = serial).

    Returns:
        ``{op_index: {"chosen", "dense_s", "shift_plane_s", "backend",
        "cached", ...}}`` — timings come from the persistent cache when the
        layer's shape signature was measured before (``cached=True``).
    """
    time_native = backend in ("auto", "native") and _native_available()
    ctx = ExecutionContext()
    ctx.slots[0] = np.zeros(input_shape, dtype)
    pending = set(candidates)
    report: dict[int, dict] = {}
    for op in ops:
        if op.index not in pending:
            op.run(ctx)
            continue
        x = ctx.slots[op.src]
        key = autotune_key(op, x.shape, dtype, reps)
        if time_native:
            key = key + ("native",)
            if threads >= 1:
                key = key + ("mt",)
        entry = AUTOTUNE_CACHE.get(key)
        if entry is None:
            timings = {impl: _time_variant(op, x, impl, dtype, reps) for impl in _IMPLS}
            chosen = "shift_plane" if timings["shift_plane"] <= timings["dense"] else "dense"
            entry = {
                "chosen": chosen,
                "dense_s": timings["dense"],
                "shift_plane_s": timings["shift_plane"],
                "backend": "numpy",
                "cached": False,
            }
            if time_native:
                native = {
                    impl: _time_native_variant(op, x, impl, dtype, reps, threads=threads)
                    for impl in _IMPLS
                }
                entry["native_dense_s"] = native["dense"]
                entry["native_shift_plane_s"] = native["shift_plane"]
                gemm = "blas"
                if threads >= 1:
                    micro = _time_native_variant(
                        op, x, "dense", dtype, reps, threads=threads, gemm="micro"
                    )
                    entry["native_dense_micro_s"] = micro
                    if micro < native["dense"]:
                        native["dense"] = micro
                        gemm = "micro"
                native_best = (
                    "shift_plane" if native["shift_plane"] <= native["dense"] else "dense"
                )
                if native[native_best] < timings[chosen]:
                    entry["chosen"] = native_best
                    entry["backend"] = "native"
                    if native_best == "dense":
                        entry["gemm"] = gemm
            AUTOTUNE_CACHE.put(key, {**entry, "cached": True})
        op.impl = entry["chosen"]
        op.backend = entry.get("backend", "numpy")
        if "gemm" in entry:
            op.gemm = entry["gemm"]
        op.run(ctx)
        report[op.index] = entry
    return report
