"""Per-layer kernel autotuning: measure, don't guess.

Whether a shift-plane sum beats one dense GEMM depends on the BLAS kernel
shapes, the k histogram and how many rows each plane retains — a heuristic
over those would be wrong somewhere.  Instead, plan compilation executes the
op list once on a synthetic batch of the model's declared input shape and,
at each candidate op, times both kernels back to back (best-of-``reps``
wall time, same warmed scratch buffers) and records the winner on the op.

The pass runs only when ``PlanConfig.kernel == "auto"`` finds candidates —
layers still carrying dead rows after pruning — so models without sparsity
pay no calibration cost at all.
"""

from __future__ import annotations

import time

import numpy as np

from repro.infer.plan import ExecutionContext

__all__ = ["autotune_ops"]

_IMPLS = ("dense", "shift_plane")


def autotune_ops(
    ops: list,
    candidates: list[int],
    input_shape: tuple[int, int, int, int],
    dtype: np.dtype,
    reps: int = 3,
) -> dict[int, dict]:
    """Time dense vs shift-plane per candidate op; set each op's winner.

    Args:
        ops: The compiled (post-pruning, post-plane-attachment) op list.
        candidates: ``op.index`` values with planes attached and an
            undecided kernel.
        input_shape: NCHW shape of the synthetic calibration batch.
        dtype: Plan compute dtype.
        reps: Timing repetitions per kernel; minimum wins.

    Returns:
        ``{op_index: {"chosen", "dense_s", "shift_plane_s"}}``.
    """
    ctx = ExecutionContext()
    ctx.slots[0] = np.zeros(input_shape, dtype)
    pending = set(candidates)
    report: dict[int, dict] = {}
    for op in ops:
        if op.index not in pending:
            op.run(ctx)
            continue
        timings: dict[str, float] = {}
        for impl in _IMPLS:
            op.impl = impl
            best = float("inf")
            for _ in range(max(1, reps)):
                start = time.perf_counter()
                op.run(ctx)
                best = min(best, time.perf_counter() - start)
            timings[impl] = best
        chosen = "shift_plane" if timings["shift_plane"] <= timings["dense"] else "dense"
        op.impl = chosen
        op.run(ctx)
        report[op.index] = {
            "chosen": chosen,
            "dense_s": timings["dense"],
            "shift_plane_s": timings["shift_plane"],
        }
    return report
