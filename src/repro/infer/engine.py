"""The compiled inference engine: fast grad-free prediction and evaluation.

:class:`InferenceEngine` compiles a trained model once
(:func:`~repro.infer.plan.compile_network`) and then serves predictions from
the flat plan: quantized weights are cached, batch-norm is folded away, no
autograd graph is built, scratch buffers are reused across batches, and
batches can be sharded across a worker pool
(:func:`~repro.infer.pool.run_sharded`).

Staleness: the plan snapshots version counters and content fingerprints of
every source weight at build time.  ``on_stale`` controls what happens when
the model has since been trained or mutated:

* ``"refresh"`` (default) — transparently re-quantize/re-fold just the
  changed layers before predicting;
* ``"error"`` — raise :class:`~repro.errors.StalePlanError`;
* ``"ignore"`` — serve the cached weights anyway (explicit opt-out).

Concurrency contract (what the serving layer in :mod:`repro.serve` relies
on):

* the stale-check/refresh path is serialized by an internal lock, so two
  threads can never rebuild the same op concurrently;
* :meth:`predict_logits` / :meth:`evaluate` are re-entrant — each call
  borrows a private :class:`ExecutionContext` from an internal pool and
  copies results out of its scratch buffers before returning it;
* :meth:`forward_batch` returns a live scratch buffer, so concurrent callers
  **must** each pass their own context from :meth:`make_context` — one
  context per worker thread, never shared between in-flight batches;
* a refresh that races an in-flight batch swaps that op's weight arrays
  mid-execution.  Callers needing a strict "whole batch sees one weight
  version" guarantee must quiesce execution around :meth:`refresh` — the
  serving registry does exactly that by pausing its batcher
  (:meth:`repro.serve.registry.ModelRegistry.refresh`).
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.errors import ConfigurationError, StalePlanError
from repro.infer.plan import ExecutionContext, ExecutionPlan, PlanConfig, compile_network
from repro.infer.pool import run_sharded, shard_slices
from repro.nn.functional import _log_softmax_data
from repro.nn.module import Module
from repro.train.metrics import accuracy, topk_accuracy
from repro.utils.profiler import PhaseProfiler, use_profiler

__all__ = ["InferenceEngine"]

_ON_STALE = ("refresh", "error", "ignore")


class InferenceEngine:
    """Compiled, cache-backed inference for a (quantized) network.

    Args:
        model: Model to compile — typically a
            :class:`~repro.models.network.QuantizedNetwork`.
        batch_size: Default internal batch size for :meth:`predict_logits` /
            :meth:`evaluate`.  Purely an execution granularity — results are
            identical at any value.  The default of 32 keeps each im2col
            column matrix cache-resident, which on the small Table-1
            networks beats batch 256 by 20-40% on one core.
        on_stale: Stale-weight policy (see module docstring).
        dtype: Compute precision override.  Defaults to float64, which
            reproduces eager logits to ~1e-13; pass
            ``dtype=plan_dtype(model)`` to opt into the float32 deployment
            mode for quantized networks (see
            :func:`~repro.infer.plan.plan_dtype`).
        config: Sparsity/trace-pass knobs
            (:class:`~repro.infer.plan.PlanConfig`): dead-filter pruning,
            kernel selection (dense / shift-plane / autotuned), traced-
            program execution (``trace``/``fuse``) and the all-dead-layer
            policy.  The same config is reused on every structural rebuild.
        profile: Attach a :class:`~repro.utils.profiler.PhaseProfiler` to
            this engine and time every execution phase with per-IR-op names
            (``ir3:conv[dense]+lrelu+aq`` on the traced path,
            ``op3:ConvOp`` on the interpreter), accumulated across batches
            and surfaced through :meth:`plan_summary` under ``"timings"``.
            Off by default — the per-op timer calls cost a few percent.
    """

    def __init__(
        self,
        model: Module,
        batch_size: int = 32,
        on_stale: str = "refresh",
        dtype: "np.dtype | None" = None,
        config: PlanConfig | None = None,
        profile: bool = False,
    ) -> None:
        if on_stale not in _ON_STALE:
            raise ConfigurationError(f"unknown on_stale policy {on_stale!r}; use one of {_ON_STALE}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.batch_size = batch_size
        self.on_stale = on_stale
        self.config = config or PlanConfig()
        self.profiler: "PhaseProfiler | None" = PhaseProfiler() if profile else None
        self.plan: ExecutionPlan = compile_network(model, dtype=dtype, config=self.config)
        self._ctx = ExecutionContext()
        # Serializes stale-check/refresh so concurrent callers never rebuild
        # the same op twice or interleave partial weight/bias swaps.
        self._refresh_lock = threading.Lock()
        # Reuse pool backing the re-entrant predict/evaluate paths: contexts
        # are borrowed per call and returned once results are copied out.
        self._ctx_pool: "queue.SimpleQueue[ExecutionContext]" = queue.SimpleQueue()

    # -- execution contexts ----------------------------------------------------

    def make_context(self) -> ExecutionContext:
        """A fresh private scratch context for one worker thread.

        Concurrent callers of :meth:`forward_batch` must each own one —
        scratch buffers are reused across batches *within* a context, so
        sharing one between in-flight batches corrupts both.
        """
        return ExecutionContext()

    def _borrow_context(self) -> ExecutionContext:
        try:
            return self._ctx_pool.get_nowait()
        except queue.Empty:
            return ExecutionContext()

    # -- staleness -------------------------------------------------------------

    def _refresh_stale_locked(self, stale: list) -> int:
        """Refresh under the lock: patch arrays in place when the dead-filter
        structure is intact, rebuild the whole plan when it is not.

        A pruned plan (cross-layer constant folds) or a stale layer whose
        dead mask moved (new thresholds → new k histogram → new channel
        layout) cannot be patched — re-quantizing into the old layout would
        silently mis-shape or mis-fold.  Recompiling reruns pruning,
        shift-plane attachment and autotuning against the fresh weights;
        the plan swap is atomic under the refresh lock, and execution
        contexts re-bind their scratch buffers by shape automatically.
        """
        for b in stale:
            # Quantize caches may hold arrays from raw .data mutations that
            # never bumped a version; drop them so both the structure check
            # and any rebuild see fresh weights.
            if hasattr(b.layer, "invalidate_weight_cache"):
                b.layer.invalidate_weight_cache()
        if self.plan.pruned or self.plan.structure_changed(stale):
            self.plan = compile_network(self.model, dtype=self.plan.dtype, config=self.config)
            return len(self.plan.ops)
        return self.plan.refresh(stale)

    def check_stale(self, fingerprint: bool = True) -> int:
        """Apply the ``on_stale`` policy; returns the number of ops rebuilt.

        Thread-safe: the check-and-refresh runs under the engine's refresh
        lock, so concurrent callers see each binding rebuilt exactly once.
        """
        if self.on_stale == "ignore":
            return 0
        with self._refresh_lock:
            stale = self.plan.stale_bindings(fingerprint=fingerprint)
            if not stale:
                return 0
            if self.on_stale == "error":
                layers = sorted({type(b.layer).__name__ for b in stale})
                raise StalePlanError(
                    f"{len(stale)} plan op(s) reference mutated weights ({', '.join(layers)}); "
                    "call refresh() or construct the engine with on_stale='refresh'"
                )
            return self._refresh_stale_locked(stale)

    def refresh(self) -> int:
        """Force re-derivation of every stale op; returns ops rebuilt.

        Falls back to a full plan rebuild when the stale weights changed
        the dead-filter structure (see :meth:`_refresh_stale_locked`) — the
        serving layer's hot weight refresh relies on this to rebuild
        pruning/shift-plane/autotune state instead of re-quantizing into a
        stale channel layout.
        """
        with self._refresh_lock:
            stale = self.plan.stale_bindings()
            if not stale:
                return 0
            return self._refresh_stale_locked(stale)

    def plan_summary(self) -> dict:
        """Current plan metadata (kernel choices, k histograms, pruning,
        traced-program stats) plus accumulated per-phase timings when the
        engine was built with ``profile=True``."""
        summary = self.plan.summary()
        if self.profiler is not None:
            summary["timings"] = {
                "totals": self.profiler.summary(),
                "counts": dict(self.profiler.counts),
            }
        return summary

    # -- prediction ------------------------------------------------------------

    def forward_batch(
        self,
        images: np.ndarray,
        check_stale: bool = True,
        ctx: ExecutionContext | None = None,
    ) -> np.ndarray:
        """Logits for one NCHW batch.

        The returned array is a scratch buffer owned by the context, valid
        until that context's next batch — copy it to keep it.  ``ctx``
        defaults to the engine's own single-threaded context; concurrent
        callers (e.g. micro-batcher workers) must pass a private context
        from :meth:`make_context` instead.  ``check_stale`` here uses the
        cheap version-counter check only (no content fingerprints), to keep
        the hot path hot.
        """
        if check_stale:
            self.check_stale(fingerprint=False)
        with use_profiler(self.profiler):
            return self.plan.execute(images, ctx if ctx is not None else self._ctx)

    def predict_logits(
        self,
        images: "np.ndarray | ArrayDataset",
        batch_size: int | None = None,
        workers: int = 1,
        backend: str = "thread",
    ) -> np.ndarray:
        """Logits for a full dataset/array, in input order.

        Re-entrant: each call borrows a private scratch context, so the same
        engine may serve overlapping calls from several threads.

        Args:
            images: NCHW array or :class:`ArrayDataset`.
            batch_size: Per-batch size (defaults to the engine's).
            workers: Worker count for batch sharding; 1 runs serially in
                this thread with zero pool overhead.
            backend: ``"thread"`` or ``"process"`` (see
                :mod:`repro.infer.pool`).
        """
        if isinstance(images, ArrayDataset):
            images = images.images
        # One up-front cast to the plan's compute dtype, so per-batch
        # execute() sees its native precision and converts nothing.
        images = np.asarray(images, dtype=self.plan.dtype)
        batch_size = batch_size or self.batch_size
        self.check_stale()
        if workers > 1:
            return run_sharded(self.plan, images, batch_size, workers, backend)
        out: np.ndarray | None = None
        ctx = self._borrow_context()
        try:
            with use_profiler(self.profiler):
                for sl in shard_slices(len(images), batch_size):
                    logits = self.plan.execute(images[sl], ctx)
                    if out is None:
                        out = np.empty((len(images),) + logits.shape[1:], dtype=logits.dtype)
                    out[sl] = logits
        finally:
            # Rows were copied into `out`, so the context's scratch buffers
            # are free to recycle for the next (possibly concurrent) call.
            self._ctx_pool.put(ctx)
        if out is None:
            raise ConfigurationError("cannot run inference on an empty image array")
        return out

    def predict(self, images: "np.ndarray | ArrayDataset", **kwargs) -> np.ndarray:
        """Predicted class indices (argmax of :meth:`predict_logits`)."""
        return np.argmax(self.predict_logits(images, **kwargs), axis=1)

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        dataset: ArrayDataset,
        batch_size: int | None = None,
        workers: int = 1,
        backend: str = "thread",
    ) -> dict[str, float]:
        """Loss / top-1 / top-5 on ``dataset`` — drop-in for eager evaluation.

        Matches :meth:`repro.train.trainer.Trainer.evaluate` output exactly
        (same mean cross-entropy, same accuracy definitions).
        """
        logits = self.predict_logits(dataset, batch_size=batch_size, workers=workers, backend=backend)
        labels = dataset.labels
        log_probs = _log_softmax_data(logits)
        loss = float(-log_probs[np.arange(len(labels)), labels].mean())
        k5 = min(5, dataset.num_classes)
        return {
            "loss": loss,
            "accuracy": accuracy(logits, labels),
            "top5": topk_accuracy(logits, labels, k5),
        }
