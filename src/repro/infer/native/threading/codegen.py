"""Tile-parameterized C emitters — the threaded twins of
:mod:`repro.infer.native.codegen`.

Every threaded translation unit keeps the uniform ``run(ptrs, dims,
scalars)`` ABI but restructures the body into ``static`` *tile functions*
``tf_x(void *ctx, i64 tile, i64 wk)`` dispatched through a parallel-for
function pointer riding ``ptrs[0]`` (either ``rt_parallel_for`` or
``rt_serial_for`` — the self-check swaps one address for the other and
nothing else).  ``dims[0]`` carries the participant limit; every serial
slot shifts up by one.

Determinism rules, enforced structurally in every emitter here:

* the tile grid is a pure function of the problem shape — block sizes are
  compile-time constants (``FB``/``CB``/``RB``/``PANEL``/``CHUNK``
  below), never derived from the thread count;
* every output element is written by exactly one tile;
* inside a tile, the per-element operation order equals the serial
  kernel's (same loop nests, same reduction order, same epilogue);
* cross-phase ordering is sequenced by the caller: each ``pf(...)`` call
  is a full barrier, and shift planes run in plane order with ``ctx->j``
  updated between barriers.

Which thread executes a tile therefore cannot influence any output bit.

The ``gemm="micro"`` variant replaces the per-tile OpenBLAS call with a
blocked native micro-kernel: the im2col source is repacked into 8-column
panels and each (filter row, panel) pair is reduced with a fixed
k-ascending 8-lane MAC.  Its bits differ from OpenBLAS (different
blocking) but are identical for any thread count, which is the contract
that matters here; the autotuner picks micro only when it times faster.
"""

from __future__ import annotations

from repro.infer.native import codegen
from repro.infer.native.codegen import (
    _INT_REQUANT_CONV,
    _INT_REQUANT_LINEAR,
    _dims_decl,
    _emit_epilogue,
    _fn,
)

__all__ = [
    "conv_source_mt",
    "linear_source_mt",
    "pool_source_mt",
    "gap_source_mt",
    "add_source_mt",
    "eltwise_source_mt",
    "int_conv_source_mt",
    "int_linear_source_mt",
]

#: Static block sizes (compile-time; the tile grid depends on these and the
#: shape only, never on the thread count).
FB = 16  # filter rows per conv/epilogue tile
RB = 16  # shift-plane rows per tile
CB = 32  # linear output columns per tile
PANEL = 8  # micro-kernel column-panel width (8 doubles = one AVX-512 lane pair)
PG = 4  # panels per linear micro tile
CHUNK = 8192  # elements per eltwise/add tile


def _mt_prelude(blas: bool, ilp64: bool = True) -> str:
    return codegen._prelude(blas=blas, ilp64=ilp64) + "\n".join(
        [
            "typedef void (*mt_tile_fn)(void *, i64, i64);",
            "typedef void (*mt_pf)(mt_tile_fn, void *, i64, i64);",
            "typedef struct { void **p; i64 *d; double *s; i64 j; } mtctx;",
        ]
    ) + "\n"


def _tile_fn(name: str, body: list[str]) -> str:
    head = [
        f"static void {name}(void *vc, i64 tile, i64 wk) {{",
        "    mtctx *cx = (mtctx *)vc;",
        "    void **ptrs = cx->p; i64 *dims = cx->d; double *scalars = cx->s;",
        "    (void)ptrs; (void)dims; (void)scalars; (void)wk; (void)tile; (void)cx;",
    ]
    inner = ["    " + ln if ln else "" for ln in body]
    return "\n".join(head + inner + ["}"]) + "\n"


def _run_mt(body: list[str]) -> str:
    head = [
        "mt_pf pf = (mt_pf)ptrs[0];",
        "mtctx cx; cx.p = ptrs; cx.d = dims; cx.s = scalars; cx.j = 0;",
        "i64 limit = dims[0];",
    ]
    return _fn(head + body)


# -- conv ---------------------------------------------------------------------

# mt conv ptrs: 0 pf 1 gemm 2 gemv 3 dot 4 x 5 pad 6 cols 7 bias 8 dead 9 out,
#   dense: 10 w (+ 11 packbuf for gemm="micro"); planes append 5 at 10+5j:
#   w idx sel part rows
# mt conv dims: 0 limit 1 nb 2 C 3 H 4 W 5 K 6 S 7 P 8 F 9 CKK 10 L 11 OH
#   12 OW 13 haspad 14 onebyone 15 hb 16 hd 17 nplanes, planes at 18+4j:
#   rows_j kk_j has_sel_j has_rows_j

_CONV_SLOTS = [
    ("nb", 1), ("C", 2), ("H", 3), ("W", 4), ("K", 5), ("S", 6), ("P", 7),
    ("F", 8), ("CKK", 9), ("L", 10), ("OH", 11), ("OW", 12),
]
_CONV_VOID = (
    "(void)nb; (void)C; (void)H; (void)W; (void)K; (void)S; (void)P;"
    " (void)F; (void)CKK; (void)L; (void)OH; (void)OW;"
)


def _conv_decl(consts: dict) -> list[str]:
    return _dims_decl(_CONV_SLOTS, consts) + [_CONV_VOID]


def _conv_src_expr(onebyone: bool) -> str:
    """Per-sample GEMM source: the raw input for 1x1/s1 convs (im2col is
    the identity there), the im2col scratch otherwise."""
    return "x + n * C * H * W" if onebyone else "cols + n * CKK * L"


def _conv_epi_rows(epi: tuple, hb: bool, hd: bool) -> list[str]:
    """bias/dead/epilogue over filter rows ``f0..f1`` of sample plane
    ``on`` — byte-for-byte the serial epilogue body, row-windowed."""
    lines = [
        "double v, t; (void)t;",
        "for (i64 f = f0; f < f1; f++) {",
        "    for (i64 l = 0; l < L; l++) {",
        "        v = on[f * L + l];",
    ]
    if hb:
        lines.append("        v += bias[f];")
    if hd:
        lines.append("        v += dead[f * L + l];")
    lines += ["        " + ln for ln in _emit_epilogue(epi, 0)]
    lines += ["        on[f * L + l] = v;", "    }", "}"]
    return lines


def conv_source_mt(
    impl: str,
    epi: tuple,
    ilp64: bool,
    haspad: bool = True,
    onebyone: bool = False,
    hb: bool = True,
    hd: bool = True,
    gemm: str = "blas",
    consts: dict | None = None,
) -> str:
    """Threaded conv producer.

    Phases (each ``pf`` call a barrier): im2col over (sample, channel)
    tiles; then dense → GEMM over (sample, FB-filter-row) tiles (BLAS or
    the packed micro-kernel), or shift_plane → zero over samples, per
    plane select + (sample, RB-row) GEMM/accumulate tiles, final epilogue
    over (sample, FB-row) tiles.
    """
    consts = consts or {}
    shift = impl == "shift_plane"
    common = [
        "const double *x = (const double *)ptrs[4];",
        "double *pad = (double *)ptrs[5]; (void)pad;",
        "double *cols = (double *)ptrs[6]; (void)cols;",
        "const double *bias = (const double *)ptrs[7]; (void)bias;",
        "const double *dead = (const double *)ptrs[8]; (void)dead;",
        "double *out = (double *)ptrs[9];",
    ]
    tiles: list[str] = []

    if not onebyone:
        body = common + _conv_decl(consts) + [
            "(void)out;",
            "i64 n = tile / C, ch = tile % C;",
            "const double *xs = x + (n * C + ch) * H * W;",
            "double *cl = cols + n * CKK * L + ch * K * K * L;",
            "const double *base; i64 BW;",
        ]
        if haspad:
            body += [
                "i64 HP = H + 2 * P, WP = W + 2 * P; (void)HP;",
                "double *pd = pad + (n * C + ch) * HP * WP;",
                "for (i64 i = 0; i < H; i++) {",
                "    double *pr = pd + (i + P) * WP + P;",
                "    const double *xr = xs + i * W;",
                "    for (i64 jj = 0; jj < W; jj++) pr[jj] = xr[jj];",
                "}",
                "base = pd; BW = WP;",
            ]
        else:
            body += ["base = xs; BW = W;"]
        body += [
            "for (i64 ki = 0; ki < K; ki++)",
            " for (i64 kj = 0; kj < K; kj++) {",
            "    double *dst = cl + (ki * K + kj) * L;",
            "    const double *sr = base + ki * BW + kj;",
            "    if (S == 1) {",
            "        for (i64 oi = 0; oi < OH; oi++) {",
            "            const double *r = sr + oi * BW;",
            "            double *d = dst + oi * OW;",
            "            for (i64 oj = 0; oj < OW; oj++) d[oj] = r[oj];",
            "        }",
            "    } else {",
            "        for (i64 oi = 0; oi < OH; oi++) {",
            "            const double *r = sr + oi * S * BW;",
            "            for (i64 oj = 0; oj < OW; oj++) dst[oi * OW + oj] = r[oj * S];",
            "        }",
            "    }",
            " }",
        ]
        tiles.append(_tile_fn("tf_cols", body))

    if shift:
        tiles.append(
            _tile_fn(
                "tf_zero",
                common
                + _conv_decl(consts)
                + ["memset(out + tile * F * L, 0, (size_t)(F * L) * sizeof(double));"],
            )
        )
        sel_body = common + _conv_decl(consts) + [
            "(void)out;",
            "i64 j = cx->j;",
            "i64 kk = dims[19 + 4 * j];",
            "const i64 *idx = (const i64 *)ptrs[11 + 5 * j];",
            "double *sel = (double *)ptrs[12 + 5 * j];",
            "i64 n = tile;",
            f"const double *src = {_conv_src_expr(onebyone)};",
            "double *sn = sel + n * kk * L;",
            "for (i64 ki = 0; ki < kk; ki++)",
            "    memcpy(sn + ki * L, src + idx[ki] * L, (size_t)L * sizeof(double));",
        ]
        tiles.append(_tile_fn("tf_sel", sel_body))
        plane_body = common + _conv_decl(consts) + [
            "void *gemm = ptrs[1], *gemv = ptrs[2], *dot = ptrs[3];",
            "i64 j = cx->j;",
            "i64 rows_m = dims[18 + 4 * j], kk = dims[19 + 4 * j];",
            "i64 has_sel = dims[20 + 4 * j], has_rows = dims[21 + 4 * j];",
            "const double *wj = (const double *)ptrs[10 + 5 * j];",
            "double *sel = (double *)ptrs[12 + 5 * j];",
            "double *part = (double *)ptrs[13 + 5 * j];",
            "const i64 *rows = (const i64 *)ptrs[14 + 5 * j];",
            f"i64 RT = (rows_m + {RB - 1}) / {RB};",
            "i64 n = tile / RT, rb = tile % RT;",
            f"i64 r0 = rb * {RB}, r1 = r0 + {RB};",
            "if (r1 > rows_m) r1 = rows_m;",
            f"const double *psrc = has_sel ? sel + n * kk * L : {_conv_src_expr(onebyone)};",
            "double *pn = part + n * rows_m * L;",
            "mm(gemm, gemv, dot, r1 - r0, kk, L, wj + r0 * kk, psrc, pn + r0 * L);",
            "double *on = out + n * F * L;",
            "for (i64 r = r0; r < r1; r++) {",
            "    double *orow = on + (has_rows ? rows[r] : r) * L;",
            "    const double *prow = pn + r * L;",
            "    for (i64 l = 0; l < L; l++) orow[l] += prow[l];",
            "}",
        ]
        tiles.append(_tile_fn("tf_plane", plane_body))
        if hb or hd or epi:
            epi_body = common + _conv_decl(consts) + [
                f"i64 FT = (F + {FB - 1}) / {FB};",
                "i64 n = tile / FT, fb = tile % FT;",
                f"i64 f0 = fb * {FB}, f1 = f0 + {FB};",
                "if (f1 > F) f1 = F;",
                "double *on = out + n * F * L;",
            ] + _conv_epi_rows(epi, hb, hd)
            tiles.append(_tile_fn("tf_epi", epi_body))
    elif gemm == "micro":
        pack_body = common + _conv_decl(consts) + [
            "(void)out;",
            "double *pk = (double *)ptrs[11];",
            f"i64 NP = (L + {PANEL - 1}) / {PANEL};",
            "i64 n = tile / NP, p = tile % NP;",
            f"const double *src = {_conv_src_expr(onebyone)};",
            f"double *pan = pk + (n * NP + p) * CKK * {PANEL};",
            f"i64 c0 = p * {PANEL};",
            f"i64 jlim = L - c0; if (jlim > {PANEL}) jlim = {PANEL};",
            "for (i64 k = 0; k < CKK; k++) {",
            "    const double *sr = src + k * L + c0;",
            f"    double *pr = pan + k * {PANEL};",
            "    for (i64 jj = 0; jj < jlim; jj++) pr[jj] = sr[jj];",
            f"    for (i64 jj = jlim; jj < {PANEL}; jj++) pr[jj] = 0.0;",
            "}",
        ]
        tiles.append(_tile_fn("tf_pack", pack_body))
        micro_body = common + _conv_decl(consts) + [
            "const double *w = (const double *)ptrs[10];",
            "const double *pk = (const double *)ptrs[11];",
            f"i64 NP = (L + {PANEL - 1}) / {PANEL};",
            f"i64 FT = (F + {FB - 1}) / {FB};",
            "i64 n = tile / FT, fb = tile % FT;",
            f"i64 f0 = fb * {FB}, f1 = f0 + {FB};",
            "if (f1 > F) f1 = F;",
            "double *on = out + n * F * L;",
            "double v, t; (void)t;",
            "for (i64 f = f0; f < f1; f++) {",
            "    const double *wr = w + f * CKK;",
            "    for (i64 p = 0; p < NP; p++) {",
            f"        const double *pan = pk + (n * NP + p) * CKK * {PANEL};",
            "        double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};",
            "        for (i64 k = 0; k < CKK; k++) {",
            "            double wv = wr[k];",
            f"            const double *pr = pan + k * {PANEL};",
            f"            for (i64 jj = 0; jj < {PANEL}; jj++) acc[jj] += wv * pr[jj];",
            "        }",
            f"        i64 c0 = p * {PANEL};",
            f"        i64 jlim = L - c0; if (jlim > {PANEL}) jlim = {PANEL};",
            "        for (i64 jj = 0; jj < jlim; jj++) {",
            "            v = acc[jj];",
        ]
        if hb:
            micro_body.append("            v += bias[f];")
        if hd:
            micro_body.append("            v += dead[f * L + c0 + jj];")
        micro_body += ["            " + ln for ln in _emit_epilogue(epi, 0)]
        micro_body += [
            "            on[f * L + c0 + jj] = v;",
            "        }",
            "    }",
            "}",
        ]
        tiles.append(_tile_fn("tf_micro", micro_body))
    else:
        gemm_body = common + _conv_decl(consts) + [
            "void *gemm = ptrs[1], *gemv = ptrs[2], *dot = ptrs[3];",
            "const double *w = (const double *)ptrs[10];",
            f"i64 FT = (F + {FB - 1}) / {FB};",
            "i64 n = tile / FT, fb = tile % FT;",
            f"i64 f0 = fb * {FB}, f1 = f0 + {FB};",
            "if (f1 > F) f1 = F;",
            f"const double *src = {_conv_src_expr(onebyone)};",
            "double *on = out + n * F * L;",
            "mm(gemm, gemv, dot, f1 - f0, CKK, L, w + f0 * CKK, src, on + f0 * L);",
        ] + (_conv_epi_rows(epi, hb, hd) if (hb or hd or epi) else [])
        tiles.append(_tile_fn("tf_gemm", gemm_body))

    run = _dims_decl([("nb", 1), ("C", 2), ("F", 8), ("L", 10)], consts)
    run += ["(void)C; (void)F; (void)L;"]
    if not onebyone:
        run.append("pf(tf_cols, &cx, nb * C, limit);")
    if shift:
        run += [
            "pf(tf_zero, &cx, nb, limit);",
            "i64 nplanes = dims[17];",
            "for (i64 j = 0; j < nplanes; j++) {",
            "    cx.j = j;",
            "    if (dims[20 + 4 * j]) pf(tf_sel, &cx, nb, limit);",
            f"    pf(tf_plane, &cx, nb * ((dims[18 + 4 * j] + {RB - 1}) / {RB}), limit);",
            "}",
        ]
        if hb or hd or epi:
            run += ["cx.j = 0;", f"pf(tf_epi, &cx, nb * ((F + {FB - 1}) / {FB}), limit);"]
    elif gemm == "micro":
        run += [
            f"pf(tf_pack, &cx, nb * ((L + {PANEL - 1}) / {PANEL}), limit);",
            f"pf(tf_micro, &cx, nb * ((F + {FB - 1}) / {FB}), limit);",
        ]
    else:
        run.append(f"pf(tf_gemm, &cx, nb * ((F + {FB - 1}) / {FB}), limit);")
    return _mt_prelude(blas=True, ilp64=ilp64) + "".join(tiles) + _run_mt(run)


# -- linear -------------------------------------------------------------------

# mt linear ptrs: 0 pf 1 gemm 2 gemv 3 dot 4 x 5 bias 6 out, dense: 7 w
#   (blas: row-major (IN, F); micro: packed (NP, IN, PANEL)); planes append
#   5 at 7+5j: w idx sel part rows
# mt linear dims: 0 limit 1 nb 2 IN 3 F 4 hb 5 nplanes, planes at 6+4j:
#   rows_j kk_j has_sel_j has_rows_j

_LIN_SLOTS = [("nb", 1), ("IN", 2), ("F", 3)]
_LIN_VOID = "(void)nb; (void)IN; (void)F;"


def _lin_decl(consts: dict) -> list[str]:
    return _dims_decl(_LIN_SLOTS, consts) + [_LIN_VOID]


def linear_source_mt(
    impl: str,
    epi: tuple,
    ilp64: bool,
    hb: bool = True,
    gemm: str = "blas",
    consts: dict | None = None,
) -> str:
    """Threaded linear producer: output columns partitioned into CB-wide
    blocks (dense) or RB within each shift plane; the whole-batch GEMM
    becomes one column-sliced GEMM per tile."""
    consts = consts or {}
    shift = impl == "shift_plane"
    common = [
        "const double *x = (const double *)ptrs[4];",
        "const double *bias = (const double *)ptrs[5]; (void)bias;",
        "double *out = (double *)ptrs[6];",
    ]
    tiles: list[str] = []
    epi_cols = [
        "double v, t; (void)t;",
        "for (i64 n = 0; n < nb; n++) {",
        "    for (i64 f = c0; f < c1; f++) {",
        "        v = out[n * F + f];",
    ]
    if hb:
        epi_cols.append("        v += bias[f];")
    epi_cols += ["        " + ln for ln in _emit_epilogue(epi, 0)]
    epi_cols += ["        out[n * F + f] = v;", "    }", "}"]

    if shift:
        tiles.append(
            _tile_fn(
                "tf_zero",
                common
                + _lin_decl(consts)
                + ["memset(out + tile * F, 0, (size_t)F * sizeof(double));"],
            )
        )
        sel_body = common + _lin_decl(consts) + [
            "(void)out;",
            "i64 j = cx->j;",
            "i64 kk = dims[7 + 4 * j];",
            "const i64 *idx = (const i64 *)ptrs[8 + 5 * j];",
            "double *sel = (double *)ptrs[9 + 5 * j];",
            "i64 n = tile;",
            "for (i64 ki = 0; ki < kk; ki++)",
            "    sel[n * kk + ki] = x[n * IN + idx[ki]];",
        ]
        tiles.append(_tile_fn("tf_sel", sel_body))
        plane_body = common + _lin_decl(consts) + [
            "void *gemm = ptrs[1];",
            "i64 j = cx->j;",
            "i64 rows_m = dims[6 + 4 * j], kk = dims[7 + 4 * j];",
            "i64 has_sel = dims[8 + 4 * j], has_rows = dims[9 + 4 * j];",
            "const double *wj = (const double *)ptrs[7 + 5 * j];",
            "double *sel = (double *)ptrs[9 + 5 * j];",
            "double *part = (double *)ptrs[10 + 5 * j];",
            "const i64 *rows = (const i64 *)ptrs[11 + 5 * j];",
            f"i64 r0 = tile * {RB}, r1 = r0 + {RB};",
            "if (r1 > rows_m) r1 = rows_m;",
            "const double *psrc = has_sel ? sel : x;",
            "((gemm_t)gemm)(101, 111, 111, (blasint)nb, (blasint)(r1 - r0), (blasint)kk,",
            "               1.0, psrc, (blasint)kk, wj + r0, (blasint)rows_m,",
            "               0.0, part + r0, (blasint)rows_m);",
            "for (i64 n = 0; n < nb; n++) {",
            "    const double *pr = part + n * rows_m;",
            "    double *orow = out + n * F;",
            "    for (i64 r = r0; r < r1; r++)",
            "        orow[has_rows ? rows[r] : r] += pr[r];",
            "}",
        ]
        tiles.append(_tile_fn("tf_plane", plane_body))
        if hb or epi:
            epi_body = common + _lin_decl(consts) + [
                f"i64 c0 = tile * {CB}, c1 = c0 + {CB};",
                "if (c1 > F) c1 = F;",
            ] + epi_cols
            tiles.append(_tile_fn("tf_epi", epi_body))
    elif gemm == "micro":
        micro_body = common + _lin_decl(consts) + [
            "const double *wp = (const double *)ptrs[7];",
            f"i64 NP = (F + {PANEL - 1}) / {PANEL};",
            f"i64 p0 = tile * {PG}, p1 = p0 + {PG};",
            "if (p1 > NP) p1 = NP;",
            "double v, t; (void)t;",
            "for (i64 p = p0; p < p1; p++) {",
            f"    const double *pb = wp + p * IN * {PANEL};",
            f"    i64 c0 = p * {PANEL};",
            f"    i64 jlim = F - c0; if (jlim > {PANEL}) jlim = {PANEL};",
            "    for (i64 n = 0; n < nb; n++) {",
            "        const double *xr = x + n * IN;",
            "        double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};",
            "        for (i64 k = 0; k < IN; k++) {",
            "            double xv = xr[k];",
            f"            const double *pr = pb + k * {PANEL};",
            f"            for (i64 jj = 0; jj < {PANEL}; jj++) acc[jj] += xv * pr[jj];",
            "        }",
            "        for (i64 jj = 0; jj < jlim; jj++) {",
            "            v = acc[jj];",
        ]
        if hb:
            micro_body.append("            v += bias[c0 + jj];")
        micro_body += ["            " + ln for ln in _emit_epilogue(epi, 0)]
        micro_body += [
            "            out[n * F + c0 + jj] = v;",
            "        }",
            "    }",
            "}",
        ]
        tiles.append(_tile_fn("tf_micro", micro_body))
    else:
        dense_body = common + _lin_decl(consts) + [
            "void *gemm = ptrs[1];",
            "const double *w = (const double *)ptrs[7];",
            f"i64 c0 = tile * {CB}, c1 = c0 + {CB};",
            "if (c1 > F) c1 = F;",
            "((gemm_t)gemm)(101, 111, 111, (blasint)nb, (blasint)(c1 - c0), (blasint)IN,",
            "               1.0, x, (blasint)IN, w + c0, (blasint)F,",
            "               0.0, out + c0, (blasint)F);",
        ] + ((epi_cols) if (hb or epi) else [])
        tiles.append(_tile_fn("tf_dense", dense_body))

    run = _dims_decl(_LIN_SLOTS, consts) + ["(void)IN;"]
    if shift:
        run += [
            "pf(tf_zero, &cx, nb, limit);",
            "i64 nplanes = dims[5];",
            "for (i64 j = 0; j < nplanes; j++) {",
            "    cx.j = j;",
            "    if (dims[8 + 4 * j]) pf(tf_sel, &cx, nb, limit);",
            f"    pf(tf_plane, &cx, (dims[6 + 4 * j] + {RB - 1}) / {RB}, limit);",
            "}",
        ]
        if hb or epi:
            run += ["cx.j = 0;", f"pf(tf_epi, &cx, (F + {CB - 1}) / {CB}, limit);"]
    elif gemm == "micro":
        run.append(
            f"pf(tf_micro, &cx, ((F + {PANEL - 1}) / {PANEL} + {PG - 1}) / {PG}, limit);"
        )
    else:
        run.append(f"pf(tf_dense, &cx, (F + {CB - 1}) / {CB}, limit);")
    return _mt_prelude(blas=True, ilp64=ilp64) + "".join(tiles) + _run_mt(run)


# -- pools / add / eltwise ----------------------------------------------------

# mt pool ptrs: 0 pf 1 x 2 out; dims: 0 limit 1 nb 2 C 3 H 4 W 5 K 6 S
#   7 OH 8 OW 9 is_avg; scalars unchanged (slot 0 = 1/(K*K), epilogue base 1).


def pool_source_mt(
    epi: tuple, kernel: int = 0, is_avg: bool = False, consts: dict | None = None
) -> str:
    """Threaded pool: one tile per (sample, channel) plane, the serial
    window-reduction body inside."""
    consts = consts or {}
    body = [
        "const double *x = (const double *)ptrs[1];",
        "double *out = (double *)ptrs[2];",
    ]
    body += _dims_decl(
        [("nb", 1), ("C", 2), ("H", 3), ("W", 4), ("K", 5), ("S", 6),
         ("OH", 7), ("OW", 8)],
        consts,
    )
    body += [
        "(void)nb; (void)K;",
        "const double *xc = x + tile * H * W;",
        "double *oc = out + tile * OH * OW;",
        "double v, t; (void)t;",
        "for (i64 oi = 0; oi < OH; oi++) {",
        "    for (i64 oj = 0; oj < OW; oj++) {",
        "        const double *wbase = xc + oi * S * W + oj * S;",
        "        v = wbase[0];",
    ]
    acc = "v += {e};" if is_avg else "v = NPMAX(v, {e});"
    if 0 < kernel <= 4:
        for ki in range(kernel):
            for kj in range(1 if ki == 0 else 0, kernel):
                at = f"wbase[{ki} * W + {kj}]" if ki else f"wbase[{kj}]"
                body.append("        " + acc.format(e=at))
    else:
        body += [
            "        for (i64 ki = 0; ki < K; ki++)",
            "            for (i64 kj = (ki ? 0 : 1); kj < K; kj++) {",
            "                double e = wbase[ki * W + kj];",
            "                " + acc.format(e="e"),
            "            }",
        ]
    if is_avg:
        body.append("        v *= scalars[0];")
    body += ["        " + ln for ln in _emit_epilogue(epi, 1)]
    body += ["        oc[oi * OW + oj] = v;", "    }", "}"]
    run = _dims_decl([("nb", 1), ("C", 2)], consts) + [
        "pf(tf_pool, &cx, nb * C, limit);",
    ]
    return _mt_prelude(blas=False) + _tile_fn("tf_pool", body) + _run_mt(run)


# mt gap ptrs: 0 pf 1 x 2 out; dims: 0 limit 1 nb 2 C 3 HW.


def gap_source_mt(epi: tuple, consts: dict | None = None) -> str:
    consts = consts or {}
    # pw() replicates numpy's pairwise reduction; body identical to the
    # serial gap kernel's (see codegen.gap_source for the derivation).
    pw_lines = [
        "static double pw(const double *a, i64 n) {",
        "    if (n < 8) {",
        "        double res = 0.0;",
        "        for (i64 i = 0; i < n; i++) res += a[i];",
        "        return res;",
        "    }",
        "    if (n <= 128) {",
        "        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];",
        "        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];",
        "        i64 i;",
        "        for (i = 8; i < n - (n % 8); i += 8) {",
        "            r0 += a[i]; r1 += a[i + 1]; r2 += a[i + 2]; r3 += a[i + 3];",
        "            r4 += a[i + 4]; r5 += a[i + 5]; r6 += a[i + 6]; r7 += a[i + 7];",
        "        }",
        "        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));",
        "        for (; i < n; i++) res += a[i];",
        "        return res;",
        "    }",
        "    i64 n2 = n / 2;",
        "    n2 -= n2 % 8;",
        "    return pw(a, n2) + pw(a + n2, n - n2);",
        "}",
    ]
    body = [
        "const double *x = (const double *)ptrs[1];",
        "double *out = (double *)ptrs[2];",
    ]
    body += _dims_decl([("HW", 3)], consts)
    body += [
        "double v, t; (void)t;",
        "v = (0.0 + pw(x + tile * HW, HW)) / (double)HW;",
    ]
    body += _emit_epilogue(epi, 0)
    body += ["out[tile] = v;"]
    run = _dims_decl([("nb", 1), ("C", 2)], consts) + [
        "pf(tf_gap, &cx, nb * C, limit);",
    ]
    return (
        _mt_prelude(blas=False)
        + "\n".join(pw_lines)
        + "\n"
        + _tile_fn("tf_gap", body)
        + _run_mt(run)
    )


# mt add ptrs: 0 pf 1 a 2 b 3 out; dims: 0 limit 1 count.


def add_source_mt(epi: tuple) -> str:
    body = [
        "const double *a = (const double *)ptrs[1];",
        "const double *b = (const double *)ptrs[2];",
        "double *out = (double *)ptrs[3];",
        "i64 count = dims[1];",
        f"i64 e0 = tile * {CHUNK}, e1 = e0 + {CHUNK};",
        "if (e1 > count) e1 = count;",
        "double v, t; (void)t;",
        "for (i64 e = e0; e < e1; e++) {",
        "    v = a[e] + b[e];",
    ]
    body += ["    " + ln for ln in _emit_epilogue(epi, 0)]
    body += ["    out[e] = v;", "}"]
    run = [
        "i64 count = dims[1];",
        f"pf(tf_add, &cx, (count + {CHUNK - 1}) / {CHUNK}, limit);",
    ]
    return _mt_prelude(blas=False) + _tile_fn("tf_add", body) + _run_mt(run)


# mt eltwise ptrs: 0 pf 1 x 2 out; dims: 0 limit 1 count.


def eltwise_source_mt(chain: tuple) -> str:
    body = [
        "const double *x = (const double *)ptrs[1];",
        "double *out = (double *)ptrs[2];",
        "i64 count = dims[1];",
        f"i64 e0 = tile * {CHUNK}, e1 = e0 + {CHUNK};",
        "if (e1 > count) e1 = count;",
        "double v, t; (void)t;",
        "for (i64 e = e0; e < e1; e++) {",
        "    v = x[e];",
    ]
    body += ["    " + ln for ln in _emit_epilogue(chain, 0)]
    body += ["    out[e] = v;", "}"]
    run = [
        "i64 count = dims[1];",
        f"pf(tf_elt, &cx, (count + {CHUNK - 1}) / {CHUNK}, limit);",
    ]
    return _mt_prelude(blas=False) + _tile_fn("tf_elt", body) + _run_mt(run)


# -- integer kernels ----------------------------------------------------------

# mt int conv ptrs: 0 pf 1 cols(CT) 2 W(CT) 3 accbuf(i64, threads x FB*L)
#   4 M0 5 RND 6 SH 7 DMAP 8 GB 9 out
# dims: 0 limit 1 nb 2 F 3 K 4 L 5 hd 6 hg 7 out32
# Per-worker scratch rows are indexed by the worker id (``wk``), which is
# always < limit <= the scratch's first dimension.


def int_conv_source_mt(ctype: str = "int32_t") -> str:
    body = [
        f"const {ctype} *cols = (const {ctype} *)ptrs[1];",
        f"const {ctype} *Wm = (const {ctype} *)ptrs[2];",
        "i64 *accbuf = (i64 *)ptrs[3];",
        "const i64 *M0 = (const i64 *)ptrs[4];",
        "const i64 *RND = (const i64 *)ptrs[5];",
        "const i64 *SH = (const i64 *)ptrs[6];",
        "const i64 *DMAP = (const i64 *)ptrs[7];",
        "const i64 *GB = (const i64 *)ptrs[8];",
        "void *outv = ptrs[9];",
        "i64 nb = dims[1], F = dims[2], K = dims[3], L = dims[4];",
        "i64 hd = dims[5], hg = dims[6], out32 = dims[7];",
        "(void)nb;",
        f"i64 FT = (F + {FB - 1}) / {FB};",
        "i64 n = tile / FT, fb = tile % FT;",
        f"i64 f0 = fb * {FB}, f1 = f0 + {FB};",
        "if (f1 > F) f1 = F;",
        f"const {ctype} *cn = cols + n * K * L;",
        f"i64 *acc = accbuf + wk * ({FB} * L);",
        "for (i64 f = f0; f < f1; f++) {",
        "    i64 *arow = acc + (f - f0) * L;",
        "    memset(arow, 0, (size_t)L * sizeof(i64));",
        "    for (i64 k = 0; k < K; k++) {",
        "        i64 wv = (i64)Wm[f * K + k];",
        "        if (!wv) continue;",
        f"        const {ctype} *crow = cn + k * L;",
        "        for (i64 l = 0; l < L; l++) arow[l] += wv * (i64)crow[l];",
        "    }",
        "}",
        "for (i64 f = f0; f < f1; f++) {",
        "    for (i64 l = 0; l < L; l++) {",
        "        i64 a = acc[(f - f0) * L + l];",
        "        i64 ooff = (n * F + f) * L + l;",
    ]
    body += ["        " + ln for ln in _INT_REQUANT_CONV]
    body += ["    }", "}"]
    run = [
        "i64 nb = dims[1], F = dims[2];",
        f"pf(tf_iconv, &cx, nb * ((F + {FB - 1}) / {FB}), limit);",
    ]
    return _mt_prelude(blas=False) + _tile_fn("tf_iconv", body) + _run_mt(run)


# mt int linear ptrs: 0 pf 1 x(CT) 2 W(CT) 3 rowbuf(i64, threads x F)
#   4 M0 5 RND 6 SH 7 DMAP 8 GB 9 out
# dims: 0 limit 1 nb 2 IN 3 F 4 hd 5 hg 6 out32


def int_linear_source_mt(ctype: str = "int32_t") -> str:
    body = [
        f"const {ctype} *x = (const {ctype} *)ptrs[1];",
        f"const {ctype} *Wm = (const {ctype} *)ptrs[2];",
        "i64 *rowbuf = (i64 *)ptrs[3];",
        "const i64 *M0 = (const i64 *)ptrs[4];",
        "const i64 *RND = (const i64 *)ptrs[5];",
        "const i64 *SH = (const i64 *)ptrs[6];",
        "const i64 *DMAP = (const i64 *)ptrs[7];",
        "const i64 *GB = (const i64 *)ptrs[8];",
        "void *outv = ptrs[9];",
        "i64 nb = dims[1], IN = dims[2], F = dims[3];",
        "i64 hd = dims[4], hg = dims[5], out32 = dims[6];",
        "(void)nb;",
        "i64 n = tile;",
        "i64 *row = rowbuf + wk * F;",
        "memset(row, 0, (size_t)F * sizeof(i64));",
        "for (i64 k = 0; k < IN; k++) {",
        "    i64 xv = (i64)x[n * IN + k];",
        "    if (!xv) continue;",
        f"    const {ctype} *wrow = Wm + k * F;",
        "    for (i64 f = 0; f < F; f++) row[f] += xv * (i64)wrow[f];",
        "}",
        "for (i64 f = 0; f < F; f++) {",
        "    i64 a = row[f];",
        "    i64 ooff = n * F + f;",
    ]
    body += ["    " + ln for ln in _INT_REQUANT_LINEAR]
    body += ["}"]
    run = [
        "i64 nb = dims[1];",
        "pf(tf_ilin, &cx, nb, limit);",
    ]
    return _mt_prelude(blas=False) + _tile_fn("tf_ilin", body) + _run_mt(run)
