"""Deterministic intra-op threading for the native kernel backend.

Two halves:

* :mod:`.runtime` — a persistent C-level pthread worker pool (compiled and
  loaded once per process) exposing ``rt_parallel_for``: execute a static
  tile decomposition over N participants with atomic tile claiming.
* :mod:`.codegen` — C source emitters for tile-parameterized kernel bodies
  (the threaded twins of :mod:`repro.infer.native.codegen`), including the
  blocked native GEMM micro-kernel.

The contract that makes results **bitwise identical for any thread
count**: the tile grid is derived only from the problem *shape* (never
from the thread count), every output element is written by exactly one
tile, and the per-element operation order inside a tile equals the serial
kernel's.  Which thread runs a tile therefore cannot change any value —
only the wall-clock.
"""

from repro.infer.native.threading import runtime  # noqa: F401

__all__ = ["runtime"]
