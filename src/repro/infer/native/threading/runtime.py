"""The persistent C worker pool behind threaded native kernels.

One pool per process, spawned lazily on the first threaded kernel bind and
reused by every kernel afterwards.  The C side exports:

* ``rt_parallel_for(fn, arg, ntiles, limit)`` — run ``fn(arg, tile,
  worker)`` for every tile in ``[0, ntiles)`` across up to ``limit``
  participants (the caller plus pool workers ``1..limit-1``).  Tiles are
  claimed from a shared atomic counter, so load balancing is dynamic while
  the *work itself* stays static: the tile grid never depends on the
  thread count, which is what keeps threaded results bitwise identical for
  any ``limit``.  The call is a full barrier — it returns only after every
  participant finished, with mutex-ordered memory visibility.
* ``rt_serial_for`` — same signature, runs every tile inline on the
  caller.  Generated kernels receive one of the two addresses through a
  pointer slot; swapping it is how the first-call self-check compares
  threaded against serial execution of the *same* tiles.
* ``rt_start`` / ``rt_shutdown`` / ``rt_reset_after_fork`` / ``rt_stats``
  — pool lifecycle and utilization counters.

Process hygiene: ``atexit`` shuts the pool down (workers are joined, so no
thread outlives the interpreter's C teardown), and ``os.register_at_fork``
resets the pool state in forked children — pthreads do not survive fork,
so the child starts with zero workers and either restarts its own pool on
the next threaded call or degrades to caller-inline execution.  A host
where the pool cannot start at all (thread creation failing, compile
failure) degrades the same way: ``rt_parallel_for`` clamps ``limit`` to
the live worker count + 1 and runs caller-inline, still over the identical
tile grid.
"""

from __future__ import annotations

import atexit
import ctypes
import logging
import os
import threading

from repro.infer.native import toolchain

__all__ = [
    "available",
    "resolve_threads",
    "ensure_pool",
    "pool_size",
    "pf_addr",
    "serial_addr",
    "stats",
    "shutdown",
    "reset",
    "MAX_WORKERS",
]

logger = logging.getLogger("repro.infer.native.threading")

#: Hard cap on pool threads (worker ids above this would overrun the
#: per-worker counter arrays; nothing sane asks for more).
MAX_WORKERS = 64

_RUNTIME_SOURCE = r"""
#include <pthread.h>
#include <stdatomic.h>
#include <stdint.h>
#include <string.h>

typedef long long i64;
typedef void (*rt_tile_fn)(void *, i64, i64);

#define RT_MAX_WORKERS 64

static pthread_mutex_t rt_mu = PTHREAD_MUTEX_INITIALIZER;
/* One job at a time: concurrent callers (batch-sharding threads that each
   run threaded kernels) serialize here instead of corrupting job state. */
static pthread_mutex_t rt_job_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t rt_newjob = PTHREAD_COND_INITIALIZER;
static pthread_cond_t rt_done = PTHREAD_COND_INITIALIZER;

static int rt_nworkers = 0;        /* live pool threads (caller excluded) */
static int rt_stop = 0;
static unsigned long long rt_seq = 0;

/* current job (valid only between broadcast and the caller's done-wait) */
static rt_tile_fn rt_fn = 0;
static void *rt_arg = 0;
static i64 rt_ntiles = 0;
static int rt_limit = 0;           /* participants, caller included */
static int rt_expected = 0;        /* pool workers that must finish */
static int rt_finished = 0;
static atomic_llong rt_next_tile;

static pthread_t rt_threads[RT_MAX_WORKERS];

/* stats */
static atomic_llong rt_jobs;
static atomic_llong rt_tiles_caller;
static atomic_llong rt_tiles_stolen;  /* tiles run by pool workers */

static void rt_run_tiles(i64 wk) {
    for (;;) {
        i64 t = atomic_fetch_add(&rt_next_tile, 1);
        if (t >= rt_ntiles) return;
        rt_fn(rt_arg, t, wk);
        if (wk == 0) atomic_fetch_add(&rt_tiles_caller, 1);
        else atomic_fetch_add(&rt_tiles_stolen, 1);
    }
}

static void *rt_worker(void *argp) {
    i64 wk = (i64)(intptr_t)argp;   /* 1..nworkers */
    unsigned long long seen = 0;
    for (;;) {
        pthread_mutex_lock(&rt_mu);
        while (!rt_stop && rt_seq == seen)
            pthread_cond_wait(&rt_newjob, &rt_mu);
        if (rt_stop) { pthread_mutex_unlock(&rt_mu); return 0; }
        seen = rt_seq;
        int participate = wk < (i64)rt_limit;
        pthread_mutex_unlock(&rt_mu);
        if (!participate) continue;
        rt_run_tiles(wk);
        pthread_mutex_lock(&rt_mu);
        if (++rt_finished >= rt_expected) pthread_cond_signal(&rt_done);
        pthread_mutex_unlock(&rt_mu);
    }
}

void rt_parallel_for(rt_tile_fn fn, void *arg, i64 ntiles, i64 limit) {
    if (ntiles <= 0) return;
    atomic_fetch_add(&rt_jobs, 1);
    int lim = (int)limit;
    if (lim > rt_nworkers + 1) lim = rt_nworkers + 1;
    if (lim > (int)ntiles) lim = (int)ntiles;
    if (lim < 2) {
        for (i64 t = 0; t < ntiles; t++) fn(arg, t, 0);
        atomic_fetch_add(&rt_tiles_caller, ntiles);
        return;
    }
    pthread_mutex_lock(&rt_job_mu);
    pthread_mutex_lock(&rt_mu);
    rt_fn = fn; rt_arg = arg; rt_ntiles = ntiles;
    atomic_store(&rt_next_tile, 0);
    rt_limit = lim;
    rt_expected = lim - 1;
    rt_finished = 0;
    rt_seq++;
    pthread_cond_broadcast(&rt_newjob);
    pthread_mutex_unlock(&rt_mu);
    rt_run_tiles(0);
    pthread_mutex_lock(&rt_mu);
    while (rt_finished < rt_expected)
        pthread_cond_wait(&rt_done, &rt_mu);
    pthread_mutex_unlock(&rt_mu);
    pthread_mutex_unlock(&rt_job_mu);
}

void rt_serial_for(rt_tile_fn fn, void *arg, i64 ntiles, i64 limit) {
    (void)limit;
    for (i64 t = 0; t < ntiles; t++) fn(arg, t, 0);
}

int rt_start(int want) {
    if (want > RT_MAX_WORKERS) want = RT_MAX_WORKERS;
    pthread_mutex_lock(&rt_mu);
    while (rt_nworkers < want) {
        pthread_t th;
        if (pthread_create(&th, 0, rt_worker,
                           (void *)(intptr_t)(rt_nworkers + 1)) != 0)
            break;
        rt_threads[rt_nworkers++] = th;
    }
    int have = rt_nworkers;
    pthread_mutex_unlock(&rt_mu);
    return have;
}

int rt_pool_size(void) { return rt_nworkers; }

void rt_shutdown(void) {
    pthread_mutex_lock(&rt_mu);
    int n = rt_nworkers;
    rt_stop = 1;
    pthread_cond_broadcast(&rt_newjob);
    pthread_mutex_unlock(&rt_mu);
    for (int i = 0; i < n; i++) pthread_join(rt_threads[i], 0);
    pthread_mutex_lock(&rt_mu);
    rt_nworkers = 0;
    rt_stop = 0;   /* allow a later restart */
    pthread_mutex_unlock(&rt_mu);
}

void rt_reset_after_fork(void) {
    /* The forked child inherits no threads and possibly a mutex frozen
       mid-lock; reinitialize everything so the child can restart (or just
       run caller-inline). */
    pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
    pthread_mutex_t m2 = PTHREAD_MUTEX_INITIALIZER;
    pthread_cond_t c1 = PTHREAD_COND_INITIALIZER;
    pthread_cond_t c2 = PTHREAD_COND_INITIALIZER;
    memcpy(&rt_mu, &m, sizeof(m));
    memcpy(&rt_job_mu, &m2, sizeof(m2));
    memcpy(&rt_newjob, &c1, sizeof(c1));
    memcpy(&rt_done, &c2, sizeof(c2));
    rt_nworkers = 0;
    rt_stop = 0;
    rt_seq = 0;
    rt_limit = rt_expected = rt_finished = 0;
    rt_fn = 0; rt_arg = 0; rt_ntiles = 0;
    atomic_store(&rt_next_tile, 0);
    atomic_store(&rt_jobs, 0);
    atomic_store(&rt_tiles_caller, 0);
    atomic_store(&rt_tiles_stolen, 0);
}

void rt_stats(long long *out) {
    out[0] = rt_nworkers;
    out[1] = atomic_load(&rt_jobs);
    out[2] = atomic_load(&rt_tiles_caller);
    out[3] = atomic_load(&rt_tiles_stolen);
}
"""

_lock = threading.Lock()
_lib: tuple | None = None  # memo: (ctypes lib | None, reason | None)
_hooks_installed = False


def resolve_threads(setting) -> int:
    """Effective intra-op thread count from ``PlanConfig.threads``.

    ``0`` means "legacy untiled kernels" (the pre-threading behavior —
    bitwise-bound to numpy's own GEMM dispatch).  Any value ``>= 1`` means
    "tiled threaded kernels with that many participants"; ``1`` dispatches
    every tile inline on the caller, which is why ``threads=1/2/4`` are
    bitwise identical by construction.  ``"auto"`` consults
    ``$REPRO_NUM_THREADS`` and keeps the legacy kernels unless it asks for
    2 or more — so the default configuration is byte-for-byte unchanged.
    """
    if setting == "auto":
        env = os.environ.get("REPRO_NUM_THREADS", "").strip()
        if not env:
            return 0
        try:
            n = int(env)
        except ValueError:
            logger.warning("ignoring non-integer REPRO_NUM_THREADS=%r", env)
            return 0
        return n if n >= 2 else 0
    n = int(setting)
    if n < 1:
        raise ValueError(f"threads must be >= 1 or 'auto', got {setting!r}")
    return n


def _install_hooks() -> None:
    global _hooks_installed
    if _hooks_installed:
        return
    _hooks_installed = True
    atexit.register(shutdown)
    if hasattr(os, "register_at_fork"):
        os.register_at_fork(after_in_child=_after_fork_child)


def _after_fork_child() -> None:
    lib = _lib[0] if _lib is not None else None
    if lib is not None:
        try:
            lib.rt_reset_after_fork()
        except Exception:  # pragma: no cover - defensive
            pass


def _load():
    """Compile/load the runtime library once; returns (lib, reason)."""
    global _lib
    with _lock:
        if _lib is not None:
            return _lib
        try:
            so_path = toolchain.compile_source(_RUNTIME_SOURCE, extra_flags=("-pthread",))
            try:
                lib = ctypes.CDLL(so_path)
            except OSError:
                # Corrupt cached binary: drop and rebuild once.
                try:
                    os.unlink(so_path)
                except OSError:
                    pass
                lib = ctypes.CDLL(
                    toolchain.compile_source(_RUNTIME_SOURCE, extra_flags=("-pthread",))
                )
        except (toolchain.NativeUnavailable, OSError) as err:
            _lib = (None, str(err))
            logger.warning("threading runtime unavailable: %s", err)
            return _lib
        lib.rt_start.argtypes = [ctypes.c_int]
        lib.rt_start.restype = ctypes.c_int
        lib.rt_pool_size.argtypes = []
        lib.rt_pool_size.restype = ctypes.c_int
        lib.rt_shutdown.argtypes = []
        lib.rt_shutdown.restype = None
        lib.rt_reset_after_fork.argtypes = []
        lib.rt_reset_after_fork.restype = None
        lib.rt_stats.argtypes = [ctypes.POINTER(ctypes.c_longlong)]
        lib.rt_stats.restype = None
        _lib = (lib, None)
        _install_hooks()
        return _lib


def available() -> bool:
    """Can threaded kernels run here (runtime compiled and loaded)?"""
    return _load()[0] is not None


def ensure_pool(workers: int) -> int:
    """Grow the pool to at least ``workers`` threads; returns the live
    count (possibly smaller — thread creation may fail, and the kernels
    then run with fewer participants, same tiles)."""
    lib, _ = _load()
    if lib is None:
        return 0
    want = max(0, min(int(workers), MAX_WORKERS))
    if want == 0:
        return int(lib.rt_pool_size())
    return int(lib.rt_start(want))


def pool_size() -> int:
    lib, _ = _load()
    return int(lib.rt_pool_size()) if lib is not None else 0


def _fn_addr(lib, name: str) -> int:
    return ctypes.cast(getattr(lib, name), ctypes.c_void_p).value


def pf_addr() -> int | None:
    """Address of ``rt_parallel_for`` (rides a kernel pointer slot)."""
    lib, _ = _load()
    return _fn_addr(lib, "rt_parallel_for") if lib is not None else None


def serial_addr() -> int | None:
    """Address of ``rt_serial_for`` (the self-check's serial dispatch)."""
    lib, _ = _load()
    return _fn_addr(lib, "rt_serial_for") if lib is not None else None


def stats(initialize: bool = False) -> dict:
    """Pool utilization block for ``summary()`` / serve ``/metrics``.

    Non-forcing by default: when no threaded kernel has touched the
    runtime yet, reports that instead of compiling the pool library just
    to answer a diagnostics call.
    """
    if _lib is None and not initialize:
        return {"available": False, "reason": "not initialized (no threaded kernels bound)"}
    lib, reason = _load()
    if lib is None:
        return {"available": False, "reason": reason}
    raw = (ctypes.c_longlong * 4)()
    lib.rt_stats(raw)
    workers, jobs, caller_tiles, stolen_tiles = (int(v) for v in raw)
    total = caller_tiles + stolen_tiles
    return {
        "available": True,
        "workers": workers,
        "parallel_for_calls": jobs,
        "tiles_total": total,
        "tiles_caller": caller_tiles,
        "tiles_stolen": stolen_tiles,
        # Fraction of tile executions pool workers took off the caller —
        # 0.0 when everything ran inline, approaching (limit-1)/limit under
        # perfect balance.
        "steal_fraction": (stolen_tiles / total) if total else 0.0,
    }


def shutdown() -> None:
    """Join every pool thread (atexit hook; safe to call repeatedly)."""
    lib = _lib[0] if _lib is not None else None
    if lib is not None:
        try:
            lib.rt_shutdown()
        except Exception:  # pragma: no cover - defensive
            pass


def reset() -> None:
    """Drop the loaded-runtime memo (tests flipping $CC / cache dirs).

    The library itself stays mapped if it was loaded (unloading shared
    objects with live threads is never safe); only the decision to retry
    compilation is forgotten.
    """
    global _lib
    shutdown()
    with _lock:
        _lib = None
