"""C toolchain discovery, the on-disk compile cache, and library loading.

The native backend compiles small self-contained C translation units (no
``Python.h``; a single exported ``run`` entry point with a uniform pointer
ABI) with whatever host compiler exists.  Everything here degrades
gracefully: no compiler, a failing compile, an unwritable cache directory
or a corrupted cached ``.so`` must each surface as
:class:`NativeUnavailable` (or a silent recompile) — never an exception
escaping into plan compilation.

Layout of the disk cache (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)::

    <root>/native/k<sha256[:24]>.c    generated source (kept for debugging)
    <root>/native/k<sha256[:24]>.so   compiled shared object
    <root>/autotune_<hosthash>.json   persisted autotune decisions

The key hashes the *source text plus the compiler command line*, so a flag
or codegen change never reuses a stale binary; a warm plan build therefore
skips the toolchain entirely.  A cached ``.so`` that fails to ``dlopen``
(torn write, wrong arch after a cache-dir copy) is deleted and recompiled
once.

Compiler choice honors ``$CC`` *strictly* when set — pointing it at a
non-executable path (CI's ``CC=/nonexistent`` leg, the forced-fallback
tests) disables the backend rather than silently picking up ``cc``.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import threading

__all__ = [
    "NativeUnavailable",
    "cache_root",
    "native_cache_dir",
    "find_compiler",
    "compile_flags",
    "compile_source",
    "load_library",
    "loader_kind",
    "toolchain_fingerprint",
    "reset",
]

#: Baseline flags.  ``-ffp-contract=off`` matters for bitwise parity (gcc
#: contracts a*b+c into fma by default at -O2+); ``-ffast-math`` must never
#: appear.  ``-fno-math-errno``/``-fno-trapping-math`` are value-preserving —
#: they relax errno/FP-exception bookkeeping only, which lets the epilogue's
#: NaN-propagating compares and ``rint`` calls if-convert and vectorize.
#: ``-march=native`` is safe because the cache is host-local and keyed by the
#: full command line; it is probed once and dropped on compilers that reject
#: it.
_BASE_FLAGS = (
    "-O3",
    "-fPIC",
    "-shared",
    "-fno-math-errno",
    "-fno-trapping-math",
    "-ffp-contract=off",
)
_ARCH_FLAG = "-march=native"

_lock = threading.RLock()
_compiler: tuple | None = None  # memo: (path | None, reason | None)
_flags: tuple | None = None
_libs: dict[str, object] = {}  # so path -> loaded library (never closed)
_loader: str | None = None
_ffi = None


class NativeUnavailable(RuntimeError):
    """The native backend cannot be used here; callers fall back to numpy."""


def cache_root() -> str:
    root = os.environ.get("REPRO_CACHE_DIR")
    if not root:
        root = os.path.join(os.path.expanduser("~"), ".cache", "repro")
    return root


def native_cache_dir() -> str:
    """The compile-cache directory, created (or a tempdir fallback) on use."""
    path = os.path.join(cache_root(), "native")
    try:
        os.makedirs(path, exist_ok=True)
        return path
    except OSError:
        path = os.path.join(tempfile.gettempdir(), "repro-native-cache")
        os.makedirs(path, exist_ok=True)
        return path


def find_compiler() -> str:
    """Resolve the C compiler; raises :class:`NativeUnavailable` if none.

    ``$CC`` is authoritative when set (no fallback), so ``CC=/nonexistent``
    deterministically simulates a toolchain-free host.
    """
    global _compiler
    with _lock:
        if _compiler is None:
            env = os.environ.get("CC")
            if env:
                path = shutil.which(env)
                _compiler = (path, None if path else f"$CC={env!r} is not executable")
            else:
                path = next(
                    (p for c in ("cc", "gcc", "clang") if (p := shutil.which(c))), None
                )
                _compiler = (path, None if path else "no C compiler (cc/gcc/clang) on PATH")
        path, reason = _compiler
        if path is None:
            raise NativeUnavailable(reason)
        return path


def compile_flags() -> tuple:
    """Compiler flags, with ``-march=native`` probed once per process."""
    global _flags
    with _lock:
        if _flags is not None:
            return _flags
        cc = find_compiler()
        probe = "int probe_fn(int x) { return x + 1; }\n"
        with tempfile.TemporaryDirectory(prefix="repro-ccprobe-") as tmp:
            src = os.path.join(tmp, "p.c")
            out = os.path.join(tmp, "p.so")
            with open(src, "w") as fh:
                fh.write(probe)
            for flags in ((*_BASE_FLAGS, _ARCH_FLAG), _BASE_FLAGS):
                proc = subprocess.run(
                    [cc, *flags, "-o", out, src, "-lm"],
                    capture_output=True,
                    text=True,
                )
                if proc.returncode == 0:
                    _flags = flags
                    return _flags
        raise NativeUnavailable(
            f"compiler {cc!r} failed the probe compile: {proc.stderr.strip()[:200]}"
        )


def toolchain_fingerprint() -> str:
    """Short stable id of (compiler, flags) for autotune host keys."""
    try:
        cc = find_compiler()
        flags = compile_flags()
    except NativeUnavailable:
        return "none"
    return hashlib.sha256((cc + " " + " ".join(flags)).encode()).hexdigest()[:12]


def _cache_key(source: str, cc: str, flags: tuple) -> str:
    blob = "\x00".join([source, cc, *flags]).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


def compile_source(source: str, extra_flags: tuple = ()) -> str:
    """Compile ``source`` (or reuse the disk cache); returns the ``.so`` path.

    The write is atomic (temp file + ``os.replace``), so concurrent
    processes racing on the same key both end up with a whole binary.
    ``extra_flags`` (e.g. ``-pthread`` for the threading runtime) join the
    command line *and* the cache key, so a flag change never reuses a stale
    binary.
    """
    cc = find_compiler()
    flags = compile_flags() + tuple(extra_flags)
    cdir = native_cache_dir()
    key = _cache_key(source, cc, flags)
    so_path = os.path.join(cdir, f"k{key}.so")
    if os.path.exists(so_path):
        return so_path
    fd, tmp_c = tempfile.mkstemp(suffix=".c", prefix=f"k{key}-", dir=cdir)
    tmp_so = tmp_c[:-2] + ".so"
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(source)
        proc = subprocess.run(
            [cc, *flags, "-o", tmp_so, tmp_c, "-lm"], capture_output=True, text=True
        )
        if proc.returncode != 0:
            raise NativeUnavailable(
                f"native kernel compile failed: {proc.stderr.strip()[:300]}"
            )
        os.replace(tmp_so, so_path)
        c_path = os.path.join(cdir, f"k{key}.c")
        try:
            os.replace(tmp_c, c_path)
        except OSError:
            pass
    finally:
        for leftover in (tmp_c, tmp_so):
            try:
                os.unlink(leftover)
            except OSError:
                pass
    return so_path


def loader_kind() -> str:
    """``"cffi"`` when available (lower per-call overhead), else ``"ctypes"``."""
    global _loader, _ffi
    with _lock:
        if _loader is None:
            try:
                import cffi

                _ffi = cffi.FFI()
                _ffi.cdef("void run(void **ptrs, long long *dims, double *scalars);")
                _loader = "cffi"
            except Exception:
                _loader = "ctypes"
        return _loader


def ffi():
    loader_kind()
    return _ffi


def _dlopen(so_path: str):
    if loader_kind() == "cffi":
        lib = _ffi.dlopen(so_path)
        return lib.run
    import ctypes

    lib = ctypes.CDLL(so_path)
    fn = lib.run
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_void_p),
        ctypes.POINTER(ctypes.c_longlong),
        ctypes.POINTER(ctypes.c_double),
    ]
    fn.restype = None
    return fn


def load_library(so_path: str, source: str | None = None):
    """``dlopen`` a compiled kernel, recovering once from a corrupt entry.

    Returns the raw ``run`` entry point (a cffi function or a ctypes
    function, per :func:`loader_kind`).  Libraries stay mapped for the
    process lifetime — the number of distinct sources is structurally
    bounded (a few dozen), so eviction of cache *entries* never unloads
    code that bound kernels still point into.
    """
    with _lock:
        fn = _libs.get(so_path)
        if fn is not None:
            return fn
        try:
            fn = _dlopen(so_path)
        except OSError as first_err:
            # Corrupted disk-cache entry (torn write / truncation / foreign
            # arch): drop it and recompile once if we still have the source.
            try:
                os.unlink(so_path)
            except OSError:
                pass
            if source is None:
                raise NativeUnavailable(f"cannot load {so_path}: {first_err}") from first_err
            rebuilt = compile_source(source)
            try:
                fn = _dlopen(rebuilt)
            except OSError as err:  # pragma: no cover - recompile also broken
                raise NativeUnavailable(f"cannot load recompiled kernel: {err}") from err
        _libs[so_path] = fn
        return fn


def reset() -> None:
    """Forget process-level memos (tests flip ``$CC`` / cache dirs)."""
    global _compiler, _flags
    with _lock:
        _compiler = None
        _flags = None
        _libs.clear()
