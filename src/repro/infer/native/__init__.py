"""Native C kernel backend for the traced plan compiler.

Lowers the same fused IR the numpy codegen executes into small C
translation units — dense GEMM + im2col, shift-plane accumulate, the
conv→BN→LeakyReLU→ActQuant epilogues, and the intq shift/requant path —
compiled per structural signature via cffi (ctypes fallback) with an
on-disk compile cache.  Every kernel self-verifies bitwise against the
numpy codegen on its first call; any failure anywhere in the ladder
(no compiler, compile error, no verifiable BLAS, parity mismatch) falls
back to the numpy kernels without crashing.  See DESIGN.md §11.

Import of this package itself must never fail on a toolchain-free host —
heavy probing happens lazily inside :func:`binding.available`.
"""

from repro.infer.native.binding import available, reset, status
from repro.infer.native.toolchain import NativeUnavailable, cache_root

__all__ = ["available", "status", "reset", "NativeUnavailable", "cache_root"]
