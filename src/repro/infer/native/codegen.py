"""C source emission for the native kernel backend.

Every generated translation unit exports one entry point with a uniform
ABI::

    void run(void **ptrs, long long *dims, double *scalars);

Shapes, strides-free geometry and presence flags (bias? dead-map? padded?)
travel through ``dims`` at *runtime*; the C text varies only with the
**structural signature** — op kind, epilogue-op structure, the BLAS
integer width and the integer element type.  A whole model therefore
compiles a couple dozen distinct sources (each ~150 ms cold, disk-cached
afterwards), not one per layer shape.

Bitwise-parity ground rules (each was probed against numpy on real data
before this backend was committed):

* float64 GEMMs call the exact OpenBLAS entry points numpy's ``matmul``
  loop calls, replicating its per-shape dispatch (``mm()`` below): gemm
  for m>1 and n>1, ddot for 1x1, gemv NoTrans/Trans for the vector cases.
  A hand-written C GEMM would *not* be bitwise-equal (different blocking
  and FMA use), which is why the BLAS addresses ride in ``ptrs[0..2]``.
* per-element epilogues replay numpy ufunc semantics exactly:
  ``NPMAX``/``NPMIN`` propagate NaN like ``np.maximum``/``np.minimum``,
  ``rint()`` is round-half-to-even like ``np.rint``, and optional adds
  (bias, dead-map) are branch-guarded — unconditionally adding ``0.0``
  would flip ``-0.0`` outputs to ``+0.0``.
* compiled with ``-ffp-contract=off`` (see toolchain) so no FMA
  contraction reorders the epilogue arithmetic.
* integer kernels are bitwise by integer exactness: every accumulator
  value is an exact integer below the static overflow bound, so any
  summation order — including routing int32-bracket layers through
  ``dgemm`` on float64 (products and partial sums stay below 2^53) —
  reproduces the numpy result digit for digit, and ``>>`` on gcc/clang
  is the same arithmetic shift as ``np.right_shift``.
"""

from __future__ import annotations

__all__ = [
    "epilogue_struct",
    "epilogue_scalars",
    "conv_source",
    "linear_source",
    "pool_source",
    "gap_source",
    "add_source",
    "eltwise_source",
    "int_conv_source",
    "int_linear_source",
]


# -- epilogue helpers ---------------------------------------------------------


def epilogue_struct(sig) -> tuple | None:
    """Structural op list of a numpy epilogue signature; None if any step
    has no native equivalent (e.g. the per-channel affine head)."""
    out = []
    for step in sig:
        if step[0] == "lrelu":
            out.append("lrelu0" if step[1] == "0.0" else "lrelu")
        elif step[0] == "aq":
            out.append("aq")
        else:
            return None
    return tuple(out)


def epilogue_scalars(sig) -> list[float]:
    """Runtime scalar slots of a signature, in emission order.

    The signature carries ``repr``'d float64 literals (that is what the
    numpy codegen inlines); ``float()`` round-trips them exactly, so the
    C kernel sees bit-identical constants.
    """
    vals: list[float] = []
    for step in sig:
        if step[0] == "lrelu":
            if step[1] != "0.0":
                vals.append(float(step[1]))
        elif step[0] == "aq":
            vals.extend(float(s) for s in step[1:])
    return vals


def _emit_epilogue(struct: tuple, base: int) -> list[str]:
    """C statements applying the epilogue chain to ``v`` (scalar slots are
    baked as literal indices — part of the structural signature)."""
    lines: list[str] = []
    si = base
    for kind in struct:
        if kind == "lrelu0":
            lines.append("v = NPMAX(v, 0.0);")
        elif kind == "lrelu":
            lines.append(f"t = v * scalars[{si}]; v = NPMAX(v, t);")
            si += 1
        else:  # aq: *= 1/step; rint; clip[lo, hi]; *= step
            lines.append(f"v *= scalars[{si}]; v = rint(v);")
            lines.append(f"v = NPMIN(NPMAX(v, scalars[{si + 1}]), scalars[{si + 2}]);")
            lines.append(f"v *= scalars[{si + 3}];")
            si += 4
    return lines


# -- shared prelude -----------------------------------------------------------


def _prelude(blas: bool, ilp64: bool = True) -> str:
    head = [
        "#include <math.h>",
        "#include <string.h>",
        "#include <stdint.h>",
        "typedef long long i64;",
        "#define NPMAX(a,b) (((a)>(b)||(a)!=(a))?(a):(b))",
        "#define NPMIN(a,b) (((a)<(b)||(a)!=(a))?(a):(b))",
    ]
    if blas:
        head += [
            f"typedef {'long long' if ilp64 else 'int'} blasint;",
            # CBLAS order/transpose enums stay 32-bit ints even under ILP64.
            "typedef void (*gemm_t)(int,int,int,blasint,blasint,blasint,double,"
            "const double*,blasint,const double*,blasint,double,double*,blasint);",
            "typedef void (*gemv_t)(int,int,blasint,blasint,double,const double*,"
            "blasint,const double*,blasint,double,double*,blasint);",
            "typedef double (*dot_t)(blasint,const double*,blasint,const double*,blasint);",
            # np.matmul's float64 per-shape dispatch, replicated: the gemm
            # kernel is NOT bitwise-equal to the gemv/dot ones on degenerate
            # shapes, so the branch structure matters as much as the lib.
            "static void mm(void *gemm, void *gemv, void *dot, i64 m, i64 k, i64 n,",
            "               const double *A, const double *B, double *C) {",
            "    if (m > 1 && n > 1) {",
            "        ((gemm_t)gemm)(101, 111, 111, (blasint)m, (blasint)n, (blasint)k,",
            "                       1.0, A, (blasint)k, B, (blasint)n, 0.0, C, (blasint)n);",
            "    } else if (m == 1 && n == 1) {",
            "        C[0] = ((dot_t)dot)((blasint)k, A, 1, B, 1);",
            "    } else if (n == 1) {",
            "        ((gemv_t)gemv)(101, 111, (blasint)m, (blasint)k, 1.0, A, (blasint)k,",
            "                       B, 1, 0.0, C, 1);",
            "    } else {",
            "        ((gemv_t)gemv)(101, 112, (blasint)k, (blasint)n, 1.0, B, (blasint)n,",
            "                       A, 1, 0.0, C, 1);",
            "    }",
            "}",
        ]
    return "\n".join(head) + "\n"


def _fn(body: list[str]) -> str:
    inner = "\n".join("    " + ln if ln else "" for ln in body)
    return f"void run(void **ptrs, long long *dims, double *scalars) {{\n{inner}\n}}\n"


def _dims_decl(slots: list, consts: dict) -> list[str]:
    """Declarations for the dims-array names.  Any name present in
    ``consts`` is emitted as a compile-time constant instead of a runtime
    ``dims[]`` read — constant trip counts let the compiler emit
    straight-line copies and unrolled epilogues (worth ~15% on a batch-1
    conv).  Only spec-derivable dims may be baked: the in-process kernel
    cache keys native functions by spec, so a baked value the spec does
    not pin (the batch dimension) would leak across bindings.
    """
    out = []
    for name, slot in slots:
        if name in consts:
            out.append(f"const i64 {name} = {int(consts[name])}; (void)dims[{slot}];")
        else:
            out.append(f"i64 {name} = dims[{slot}];")
    return out


# -- float64 producer kernels (conv / linear) ---------------------------------

# conv ptr slots: 0 gemm 1 gemv 2 dot 3 x 4 pad 5 cols 6 bias 7 dead 8 out,
#   shift planes append 5 slots each at 9+5j: w idx sel part rows
#   (dense uses slot 9 for the single weight matrix).
# conv dims: 0 nb 1 C 2 H 3 W 4 K 5 S 6 P 7 F 8 CKK 9 L 10 OH 11 OW
#   12 haspad 13 onebyone 14 hb 15 hd 16 nplanes, planes append 4 at 17+4j:
#   rows_j kk_j has_sel_j has_rows_j

# Row copies are plain loops, not memcpy: rows here are a few dozen doubles
# and the ~C*K*K*OH call overhead of tiny memcpys dominates the actual copy
# (the compiler vectorizes the loops to the same wide moves, inline).
def _conv_im2col(haspad: bool, onebyone: bool) -> list[str]:
    """im2col statements specialized on the op's structural flags (the
    flags live in the kernel spec, so each combination is its own cached
    source — no runtime branches survive into the copy loops)."""
    if onebyone:
        return ["const double *src = xs;"]
    out = ["const double *base; i64 BH, BW;"]
    if haspad:
        out += [
            "double *pd = pad + n * C * HP * WP;",
            "for (i64 c = 0; c < C; c++)",
            "    for (i64 i = 0; i < H; i++) {",
            "        double *pr = pd + (c * HP + i + P) * WP + P;",
            "        const double *xr = xs + (c * H + i) * W;",
            "        for (i64 j = 0; j < W; j++) pr[j] = xr[j];",
            "    }",
            "base = pd; BH = HP; BW = WP;",
        ]
    else:
        out += ["base = xs; BH = H; BW = W;"]
    out += [
        "double *cl = cols + n * CKK * L;",
        "for (i64 c = 0; c < C; c++)",
        " for (i64 ki = 0; ki < K; ki++)",
        "  for (i64 kj = 0; kj < K; kj++) {",
        "    double *dst = cl + ((c * K + ki) * K + kj) * L;",
        "    const double *sr = base + (c * BH + ki) * BW + kj;",
        "    if (S == 1) {",
        "        for (i64 oi = 0; oi < OH; oi++) {",
        "            const double *r = sr + oi * BW;",
        "            double *d = dst + oi * OW;",
        "            for (i64 oj = 0; oj < OW; oj++) d[oj] = r[oj];",
        "        }",
        "    } else {",
        "        for (i64 oi = 0; oi < OH; oi++) {",
        "            const double *r = sr + oi * S * BW;",
        "            for (i64 oj = 0; oj < OW; oj++) dst[oi * OW + oj] = r[oj * S];",
        "        }",
        "    }",
        "  }",
        "const double *src = cl;",
    ]
    return out


def conv_source(
    impl: str,
    epi: tuple,
    ilp64: bool,
    haspad: bool = True,
    onebyone: bool = False,
    hb: bool = True,
    hd: bool = True,
    consts: dict | None = None,
) -> str:
    """conv producer: im2col + per-sample GEMM (dense) or shift-plane
    accumulate, then the bias/dead adds and the fused epilogue.

    ``haspad``/``onebyone``/``hb``/``hd`` are structural facts already in
    the kernel spec (padding geometry, the ``bias``/``dead`` flags), so
    they are baked into the source: the epilogue loop body is branch-free
    and vectorizes.  A guarded ``v += hb ? bias[f] : 0.0`` would NOT be
    equivalent — adding literal ``+0.0`` flips a ``-0.0`` output.
    ``consts`` bakes spec-derivable dims (everything but the batch) as
    compile-time constants; see :func:`_dims_decl`.
    """
    body = [
        "void *gemm = ptrs[0], *gemv = ptrs[1], *dot = ptrs[2];",
        "const double *x = (const double *)ptrs[3];",
        "double *pad = (double *)ptrs[4];",
        "double *cols = (double *)ptrs[5];",
        "const double *bias = (const double *)ptrs[6];",
        "const double *dead = (const double *)ptrs[7];",
        "double *out = (double *)ptrs[8];",
    ]
    body += _dims_decl(
        [("nb", 0), ("C", 1), ("H", 2), ("W", 3), ("K", 4), ("S", 5), ("P", 6),
         ("F", 7), ("CKK", 8), ("L", 9), ("OH", 10), ("OW", 11)],
        consts or {},
    )
    body += [
        "i64 HP = H + 2 * P, WP = W + 2 * P;",
        "(void)pad; (void)cols; (void)bias; (void)dead;",
        "(void)HP; (void)WP; (void)dims[12];",
        "double v, t; (void)t;",
        "for (i64 n = 0; n < nb; n++) {",
        "    const double *xs = x + n * C * H * W;",
        "    double *on = out + n * F * L;",
    ]
    body += ["    " + ln for ln in _conv_im2col(haspad, onebyone)]
    if impl == "shift_plane":
        body += [
            "    memset(on, 0, (size_t)(F * L) * sizeof(double));",
            "    i64 nplanes = dims[16];",
            "    for (i64 j = 0; j < nplanes; j++) {",
            "        i64 rows_m = dims[17 + 4 * j], kk = dims[18 + 4 * j];",
            "        i64 has_sel = dims[19 + 4 * j], has_rows = dims[20 + 4 * j];",
            "        const double *wj = (const double *)ptrs[9 + 5 * j];",
            "        const i64 *idx = (const i64 *)ptrs[10 + 5 * j];",
            "        double *sel = (double *)ptrs[11 + 5 * j];",
            "        double *part = (double *)ptrs[12 + 5 * j];",
            "        const i64 *rows = (const i64 *)ptrs[13 + 5 * j];",
            "        const double *psrc = src;",
            "        if (has_sel) {",
            "            double *sn = sel + n * kk * L;",
            "            for (i64 ki = 0; ki < kk; ki++)",
            "                memcpy(sn + ki * L, src + idx[ki] * L, (size_t)L * sizeof(double));",
            "            psrc = sn;",
            "        }",
            "        double *pn = part + n * rows_m * L;",
            "        mm(gemm, gemv, dot, rows_m, kk, L, wj, psrc, pn);",
            "        if (has_rows) {",
            "            for (i64 r = 0; r < rows_m; r++) {",
            "                double *orow = on + rows[r] * L;",
            "                const double *prow = pn + r * L;",
            "                for (i64 l = 0; l < L; l++) orow[l] += prow[l];",
            "            }",
            "        } else {",
            "            for (i64 e = 0; e < F * L; e++) on[e] += pn[e];",
            "        }",
            "    }",
        ]
    else:
        body += [
            "    const double *w = (const double *)ptrs[9];",
            "    mm(gemm, gemv, dot, F, CKK, L, w, src, on);",
        ]
    if hb or hd or epi:
        body += [
            "    for (i64 f = 0; f < F; f++) {",
            "        for (i64 l = 0; l < L; l++) {",
            "            v = on[f * L + l];",
        ]
        if hb:
            body.append("            v += bias[f];")
        if hd:
            body.append("            v += dead[f * L + l];")
        body += ["            " + ln for ln in _emit_epilogue(epi, 0)]
        body += [
            "            on[f * L + l] = v;",
            "        }",
            "    }",
        ]
    body.append("}")
    return _prelude(blas=True, ilp64=ilp64) + _fn(body)


# linear ptr slots: 0 gemm 1 gemv 2 dot 3 x 4 bias 5 out, planes at 6+5j:
#   w idx sel part rows (dense uses slot 6 for the weight matrix).
# linear dims: 0 nb 1 IN 2 F 3 hb 4 nplanes, planes at 5+4j:
#   rows_j kk_j has_sel_j has_rows_j


def linear_source(
    impl: str, epi: tuple, ilp64: bool, hb: bool = True, consts: dict | None = None
) -> str:
    """linear producer: one whole-batch GEMM (numpy's layout: ``x @ w``).

    ``hb`` (bias presence, a spec flag) is baked in like the conv flags.
    """
    body = [
        "void *gemm = ptrs[0], *gemv = ptrs[1], *dot = ptrs[2];",
        "const double *x = (const double *)ptrs[3];",
        "const double *bias = (const double *)ptrs[4];",
        "double *out = (double *)ptrs[5];",
    ]
    body += _dims_decl([("nb", 0), ("IN", 1), ("F", 2)], consts or {})
    body += [
        "(void)bias; (void)dims[3];",
        "double v, t; (void)t;",
    ]
    if impl == "shift_plane":
        body += [
            "memset(out, 0, (size_t)(nb * F) * sizeof(double));",
            "i64 nplanes = dims[4];",
            "for (i64 j = 0; j < nplanes; j++) {",
            "    i64 rows_m = dims[5 + 4 * j], kk = dims[6 + 4 * j];",
            "    i64 has_sel = dims[7 + 4 * j], has_rows = dims[8 + 4 * j];",
            "    const double *wj = (const double *)ptrs[6 + 5 * j];",
            "    const i64 *idx = (const i64 *)ptrs[7 + 5 * j];",
            "    double *sel = (double *)ptrs[8 + 5 * j];",
            "    double *part = (double *)ptrs[9 + 5 * j];",
            "    const i64 *rows = (const i64 *)ptrs[10 + 5 * j];",
            "    const double *psrc = x;",
            "    if (has_sel) {",
            "        for (i64 n = 0; n < nb; n++)",
            "            for (i64 ki = 0; ki < kk; ki++)",
            "                sel[n * kk + ki] = x[n * IN + idx[ki]];",
            "        psrc = sel;",
            "    }",
            "    mm(gemm, gemv, dot, nb, kk, rows_m, psrc, wj, part);",
            "    if (has_rows) {",
            "        for (i64 n = 0; n < nb; n++)",
            "            for (i64 r = 0; r < rows_m; r++)",
            "                out[n * F + rows[r]] += part[n * rows_m + r];",
            "    } else {",
            "        for (i64 e = 0; e < nb * F; e++) out[e] += part[e];",
            "    }",
            "}",
        ]
    else:
        body += [
            "const double *w = (const double *)ptrs[6];",
            "mm(gemm, gemv, dot, nb, IN, F, x, w, out);",
        ]
    if hb or epi:
        body += [
            "for (i64 n = 0; n < nb; n++) {",
            "    for (i64 f = 0; f < F; f++) {",
            "        v = out[n * F + f];",
        ]
        if hb:
            body.append("        v += bias[f];")
        body += ["        " + ln for ln in _emit_epilogue(epi, 0)]
        body += [
            "        out[n * F + f] = v;",
            "    }",
            "}",
        ]
    return _prelude(blas=True, ilp64=ilp64) + _fn(body)


# -- pools / add / eltwise ----------------------------------------------------

# pool ptrs: 0 x 1 out; dims: 0 nb 1 C 2 H 3 W 4 K 5 S 6 OH 7 OW 8 is_avg;
#   scalars[0] = 1/(K*K) for avgpool, epilogue scalars start at slot 1.


def pool_source(
    epi: tuple, kernel: int = 0, is_avg: bool = False, consts: dict | None = None
) -> str:
    """max/avg pool: window reduction in the numpy kernel's (i-major,
    j-minor) view order, seeded from the first window element.

    Small windows (K <= 4, the only sizes the paper's nets use) are fully
    unrolled into straight-line code — same reduce order, but the branch-free
    body vectorizes across output columns; larger K keeps the runtime loop.
    """
    body = [
        "const double *x = (const double *)ptrs[0];",
        "double *out = (double *)ptrs[1];",
    ]
    body += _dims_decl(
        [("nb", 0), ("C", 1), ("H", 2), ("W", 3), ("K", 4), ("S", 5),
         ("OH", 6), ("OW", 7)],
        consts or {},
    )
    body += [
        "(void)K; (void)dims[8];",
        "double v, t; (void)t;",
        "for (i64 n = 0; n < nb; n++) {",
        " for (i64 c = 0; c < C; c++) {",
        "    const double *xc = x + (n * C + c) * H * W;",
        "    double *oc = out + (n * C + c) * OH * OW;",
        "    for (i64 oi = 0; oi < OH; oi++) {",
        "        for (i64 oj = 0; oj < OW; oj++) {",
        "            const double *wbase = xc + oi * S * W + oj * S;",
        "            v = wbase[0];",
    ]
    acc = "v += {e};" if is_avg else "v = NPMAX(v, {e});"
    if 0 < kernel <= 4:
        for ki in range(kernel):
            for kj in range(1 if ki == 0 else 0, kernel):
                at = f"wbase[{ki} * W + {kj}]" if ki else f"wbase[{kj}]"
                body.append("            " + acc.format(e=at))
    else:
        body += [
            "            for (i64 ki = 0; ki < K; ki++)",
            "                for (i64 kj = (ki ? 0 : 1); kj < K; kj++) {",
            "                    double e = wbase[ki * W + kj];",
            "                    " + acc.format(e="e"),
            "                }",
        ]
    if is_avg:
        body.append("            v *= scalars[0];")
    body += ["            " + ln for ln in _emit_epilogue(epi, 1)]
    body += [
        "            oc[oi * OW + oj] = v;",
        "        }",
        "    }",
        " }",
        "}",
    ]
    return _prelude(blas=False) + _fn(body)


def gap_source(epi: tuple, consts: dict | None = None) -> str:
    """Global average pool: np.mean over the contiguous H*W tail.

    The sum replicates numpy's scalar pairwise reduction exactly (sequential
    below 8 elements, an 8-accumulator unrolled block up to 128, recursive
    halving above — the same tree np.add.reduce builds for a contiguous
    float64 axis), then divides by the count like ``np.mean`` does.  The
    8 partial accumulators are independent lanes, so the compiler may
    vectorize them without reassociating anything.

    The ``0.0 +`` seed is load-bearing: numpy's reduce starts from the add
    identity (+0.0), so an all ``-0.0`` channel sums to *positive* zero.
    gcc keeps the add because eliding ``x + 0.0`` is only legal under
    ``-fno-signed-zeros``, which we never pass.
    """
    pw = [
        "static double pw(const double *a, i64 n) {",
        "    if (n < 8) {",
        "        double res = 0.0;",
        "        for (i64 i = 0; i < n; i++) res += a[i];",
        "        return res;",
        "    }",
        "    if (n <= 128) {",
        "        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];",
        "        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];",
        "        i64 i;",
        "        for (i = 8; i < n - (n % 8); i += 8) {",
        "            r0 += a[i]; r1 += a[i + 1]; r2 += a[i + 2]; r3 += a[i + 3];",
        "            r4 += a[i + 4]; r5 += a[i + 5]; r6 += a[i + 6]; r7 += a[i + 7];",
        "        }",
        "        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));",
        "        for (; i < n; i++) res += a[i];",
        "        return res;",
        "    }",
        "    i64 n2 = n / 2;",
        "    n2 -= n2 % 8;",
        "    return pw(a, n2) + pw(a + n2, n - n2);",
        "}",
    ]
    body = [
        "const double *x = (const double *)ptrs[0];",
        "double *out = (double *)ptrs[1];",
    ]
    body += _dims_decl([("nb", 0), ("C", 1), ("HW", 2)], consts or {})
    body += [
        "double v, t; (void)t;",
        "for (i64 nc = 0; nc < nb * C; nc++) {",
        "    v = (0.0 + pw(x + nc * HW, HW)) / (double)HW;",
    ]
    body += ["    " + ln for ln in _emit_epilogue(epi, 0)]
    body += ["    out[nc] = v;", "}"]
    return _prelude(blas=False) + "\n".join(pw) + "\n" + _fn(body)


def add_source(epi: tuple) -> str:
    body = [
        "const double *a = (const double *)ptrs[0];",
        "const double *b = (const double *)ptrs[1];",
        "double *out = (double *)ptrs[2];",
        "i64 count = dims[0];",
        "double v, t; (void)t;",
        "for (i64 e = 0; e < count; e++) {",
        "    v = a[e] + b[e];",
    ]
    body += ["    " + ln for ln in _emit_epilogue(epi, 0)]
    body += ["    out[e] = v;", "}"]
    return _prelude(blas=False) + _fn(body)


def eltwise_source(chain: tuple) -> str:
    """Standalone elementwise chain (head included); safe when out == x."""
    body = [
        "const double *x = (const double *)ptrs[0];",
        "double *out = (double *)ptrs[1];",
        "i64 count = dims[0];",
        "double v, t; (void)t;",
        "for (i64 e = 0; e < count; e++) {",
        "    v = x[e];",
    ]
    body += ["    " + ln for ln in _emit_epilogue(chain, 0)]
    body += ["    out[e] = v;", "}"]
    return _prelude(blas=False) + _fn(body)


# -- integer kernels (intq) ---------------------------------------------------

_INT_REQUANT_CONV = [
    "a = a * M0[f] + RND[f];",
    "a >>= SH[f];",
    "if (hd) a += DMAP[f * L + l];",
    "if (hg) a += GB[f];",
    "if (out32) ((int32_t *)outv)[ooff] = (int32_t)a; else ((i64 *)outv)[ooff] = a;",
]

_INT_REQUANT_LINEAR = [
    "a = a * M0[f] + RND[f];",
    "a >>= SH[f];",
    "if (hd) a += DMAP[f];",
    "if (hg) a += GB[f];",
    "if (out32) ((int32_t *)outv)[ooff] = (int32_t)a; else ((i64 *)outv)[ooff] = a;",
]


def int_conv_source(variant: str, ilp64: bool = True, ctype: str = "int32_t") -> str:
    """Integer conv over pre-built im2col columns.

    ``variant="blas"`` (int32 accumulator bracket only): columns are cast
    to float64 and routed through dgemm — exact because the static MAC
    bound keeps every product and partial sum an integer below 2^31 ≪
    2^53 — then truncated back (the truncation is of an exact integer).
    ``variant="loops"``: plain C MAC loops accumulating in int64 with a
    zero-weight skip (the decoded shift weights are sparse).

    blas ptrs: 0 gemm 1 gemv 2 dot 3 cols(i32) 4 w64 5 colsf 6 accf
               7 M0 8 RND 9 SH 10 DMAP 11 GB 12 out
    loops ptrs: 0 cols(CT) 1 W(CT) 2 acc(i64, F*L scratch)
               3 M0 4 RND 5 SH 6 DMAP 7 GB 8 out
    dims (both): 0 nb 1 F 2 K 3 L 4 hd 5 hg 6 out32
    """
    if variant == "blas":
        body = [
            "void *gemm = ptrs[0], *gemv = ptrs[1], *dot = ptrs[2];",
            "const int32_t *cols = (const int32_t *)ptrs[3];",
            "const double *w64 = (const double *)ptrs[4];",
            "double *colsf = (double *)ptrs[5];",
            "double *accf = (double *)ptrs[6];",
            "const i64 *M0 = (const i64 *)ptrs[7];",
            "const i64 *RND = (const i64 *)ptrs[8];",
            "const i64 *SH = (const i64 *)ptrs[9];",
            "const i64 *DMAP = (const i64 *)ptrs[10];",
            "const i64 *GB = (const i64 *)ptrs[11];",
            "void *outv = ptrs[12];",
            "i64 nb = dims[0], F = dims[1], K = dims[2], L = dims[3];",
            "i64 hd = dims[4], hg = dims[5], out32 = dims[6];",
            "for (i64 n = 0; n < nb; n++) {",
            "    const int32_t *cn = cols + n * K * L;",
            "    for (i64 e = 0; e < K * L; e++) colsf[e] = (double)cn[e];",
            "    mm(gemm, gemv, dot, F, K, L, w64, colsf, accf);",
            "    for (i64 f = 0; f < F; f++) {",
            "        for (i64 l = 0; l < L; l++) {",
            "            i64 a = (i64)accf[f * L + l];",
            "            i64 ooff = (n * F + f) * L + l;",
        ]
        body += ["            " + ln for ln in _INT_REQUANT_CONV]
        body += ["        }", "    }", "}"]
        return _prelude(blas=True, ilp64=ilp64) + _fn(body)
    body = [
        f"const {ctype} *cols = (const {ctype} *)ptrs[0];",
        f"const {ctype} *Wm = (const {ctype} *)ptrs[1];",
        "i64 *acc = (i64 *)ptrs[2];",
        "const i64 *M0 = (const i64 *)ptrs[3];",
        "const i64 *RND = (const i64 *)ptrs[4];",
        "const i64 *SH = (const i64 *)ptrs[5];",
        "const i64 *DMAP = (const i64 *)ptrs[6];",
        "const i64 *GB = (const i64 *)ptrs[7];",
        "void *outv = ptrs[8];",
        "i64 nb = dims[0], F = dims[1], K = dims[2], L = dims[3];",
        "i64 hd = dims[4], hg = dims[5], out32 = dims[6];",
        "for (i64 n = 0; n < nb; n++) {",
        f"    const {ctype} *cn = cols + n * K * L;",
        "    memset(acc, 0, (size_t)(F * L) * sizeof(i64));",
        "    for (i64 f = 0; f < F; f++) {",
        "        i64 *arow = acc + f * L;",
        "        for (i64 k = 0; k < K; k++) {",
        "            i64 wv = (i64)Wm[f * K + k];",
        "            if (!wv) continue;",
        f"            const {ctype} *crow = cn + k * L;",
        "            for (i64 l = 0; l < L; l++) arow[l] += wv * (i64)crow[l];",
        "        }",
        "    }",
        "    for (i64 f = 0; f < F; f++) {",
        "        for (i64 l = 0; l < L; l++) {",
        "            i64 a = acc[f * L + l];",
        "            i64 ooff = (n * F + f) * L + l;",
    ]
    body += ["            " + ln for ln in _INT_REQUANT_CONV]
    body += ["        }", "    }", "}"]
    return _prelude(blas=False) + _fn(body)


def int_linear_source(variant: str, ilp64: bool = True, ctype: str = "int32_t") -> str:
    """Integer linear (``x @ W`` orientation, W pre-transposed ``(IN, F)``).

    blas ptrs: 0 gemm 1 gemv 2 dot 3 x(i32) 4 w64 5 xf 6 accf
               7 M0 8 RND 9 SH 10 DMAP 11 GB 12 out
    loops ptrs: 0 x(CT) 1 W(CT) 2 row(i64, F scratch)
               3 M0 4 RND 5 SH 6 DMAP 7 GB 8 out
    dims (both): 0 nb 1 IN 2 F 3 hd 4 hg 5 out32
    """
    if variant == "blas":
        body = [
            "void *gemm = ptrs[0], *gemv = ptrs[1], *dot = ptrs[2];",
            "const int32_t *x = (const int32_t *)ptrs[3];",
            "const double *w64 = (const double *)ptrs[4];",
            "double *xf = (double *)ptrs[5];",
            "double *accf = (double *)ptrs[6];",
            "const i64 *M0 = (const i64 *)ptrs[7];",
            "const i64 *RND = (const i64 *)ptrs[8];",
            "const i64 *SH = (const i64 *)ptrs[9];",
            "const i64 *DMAP = (const i64 *)ptrs[10];",
            "const i64 *GB = (const i64 *)ptrs[11];",
            "void *outv = ptrs[12];",
            "i64 nb = dims[0], IN = dims[1], F = dims[2];",
            "i64 hd = dims[3], hg = dims[4], out32 = dims[5];",
            "for (i64 e = 0; e < nb * IN; e++) xf[e] = (double)x[e];",
            "mm(gemm, gemv, dot, nb, IN, F, xf, w64, accf);",
            "for (i64 n = 0; n < nb; n++) {",
            "    for (i64 f = 0; f < F; f++) {",
            "        i64 a = (i64)accf[n * F + f];",
            "        i64 ooff = n * F + f;",
        ]
        body += ["        " + ln for ln in _INT_REQUANT_LINEAR]
        body += ["    }", "}"]
        return _prelude(blas=True, ilp64=ilp64) + _fn(body)
    body = [
        f"const {ctype} *x = (const {ctype} *)ptrs[0];",
        f"const {ctype} *Wm = (const {ctype} *)ptrs[1];",
        "i64 *row = (i64 *)ptrs[2];",
        "const i64 *M0 = (const i64 *)ptrs[3];",
        "const i64 *RND = (const i64 *)ptrs[4];",
        "const i64 *SH = (const i64 *)ptrs[5];",
        "const i64 *DMAP = (const i64 *)ptrs[6];",
        "const i64 *GB = (const i64 *)ptrs[7];",
        "void *outv = ptrs[8];",
        "i64 nb = dims[0], IN = dims[1], F = dims[2];",
        "i64 hd = dims[3], hg = dims[4], out32 = dims[5];",
        "for (i64 n = 0; n < nb; n++) {",
        "    memset(row, 0, (size_t)F * sizeof(i64));",
        "    for (i64 k = 0; k < IN; k++) {",
        "        i64 xv = (i64)x[n * IN + k];",
        "        if (!xv) continue;",
        f"        const {ctype} *wrow = Wm + k * F;",
        "        for (i64 f = 0; f < F; f++) row[f] += xv * (i64)wrow[f];",
        "    }",
        "    for (i64 f = 0; f < F; f++) {",
        "        i64 a = row[f];",
        "        i64 ooff = n * F + f;",
    ]
    body += ["        " + ln for ln in _INT_REQUANT_LINEAR]
    body += ["    }", "}"]
    return _prelude(blas=False) + _fn(body)
