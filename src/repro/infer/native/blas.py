"""Locate numpy/scipy's bundled OpenBLAS and export raw CBLAS pointers.

Bitwise parity with ``np.matmul`` on float64 requires calling the *same*
BLAS build numpy calls, with the same per-shape dispatch numpy's matmul
umath loop uses:

* ``m > 1 and n > 1``  → ``cblas_dgemm(RowMajor, NoTrans, NoTrans, ...)``
* ``m == 1, n == 1``   → ``cblas_ddot``
* ``n == 1``           → ``cblas_dgemv(RowMajor, NoTrans, m, k, ...)``
* ``m == 1``           → ``cblas_dgemv(RowMajor, Trans,  k, n, ...)``

(Probed bitwise against np.matmul on this host before this design was
committed; gemm is *not* bitwise-equal to matmul when m or n is 1, which
is why generated C receives all three entry points and replicates the
dispatch at runtime.)

The wheel bundles OpenBLAS under ``numpy.libs`` (or ``scipy.libs``) with
mangled symbol names like ``scipy_cblas_dgemm64_``; we search the known
candidate name sets and record whether the build uses 64-bit (ILP64) or
32-bit integer dimensions so codegen can bake the matching ``blasint``
typedef.  The raw function addresses are handed to the generated kernels
through the pointer array — no linking involved.  The dlopen handle is
kept alive module-globally for the process lifetime.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import glob
import os
import threading

import numpy as np

__all__ = ["blas_info", "BlasUnavailable"]


class BlasUnavailable(RuntimeError):
    pass


_lock = threading.Lock()
_info: dict | None = None
_handle = None  # keep the CDLL referenced forever

# (prefix applied to dgemm/dgemv/ddot, ilp64?) in preference order.  numpy
# >= 1.26 wheels ship scipy-openblas64 with the scipy_ prefix; older wheels
# used bare cblas_ names; a plain system libopenblas uses cblas_ too.
_SYMBOL_SETS = (
    ("scipy_cblas_", "64_", True),
    ("cblas_", "64_", True),
    ("scipy_cblas_", "", False),
    ("cblas_", "", False),
)


def _candidate_libs():
    seen = []
    for mod_dir in (os.path.dirname(np.__file__),):
        base = os.path.dirname(mod_dir)
        for pattern in (
            os.path.join(mod_dir, "*libs", "*openblas*"),
            os.path.join(base, "numpy.libs", "*openblas*"),
            os.path.join(base, "scipy.libs", "*openblas*"),
            os.path.join(mod_dir, "core", "*openblas*"),
            os.path.join(mod_dir, "_core", "*openblas*"),
        ):
            for path in sorted(glob.glob(pattern)):
                if path.endswith((".so", ".dylib")) or ".so." in os.path.basename(path):
                    if path not in seen:
                        seen.append(path)
    for name in ("openblas64_", "openblas", "blas"):
        found = ctypes.util.find_library(name)
        if found and found not in seen:
            seen.append(found)
    return seen


def _probe(path: str):
    lib = ctypes.CDLL(path, mode=ctypes.RTLD_GLOBAL)
    for prefix, suffix, ilp64 in _SYMBOL_SETS:
        try:
            gemm = getattr(lib, f"{prefix}dgemm{suffix}")
            gemv = getattr(lib, f"{prefix}dgemv{suffix}")
            dot = getattr(lib, f"{prefix}ddot{suffix}")
        except AttributeError:
            continue
        return lib, {
            "path": path,
            "ilp64": ilp64,
            "gemm_addr": ctypes.cast(gemm, ctypes.c_void_p).value,
            "gemv_addr": ctypes.cast(gemv, ctypes.c_void_p).value,
            "dot_addr": ctypes.cast(dot, ctypes.c_void_p).value,
        }
    return None, None


def _verify(info: dict) -> bool:
    """One quick bitwise check that the located gemm matches np.matmul."""
    rng = np.random.default_rng(12345)
    a = rng.standard_normal((7, 5))
    b = rng.standard_normal((5, 6))
    want = a @ b
    got = np.zeros_like(want)
    blasint = ctypes.c_longlong if info["ilp64"] else ctypes.c_int
    gemm = ctypes.CFUNCTYPE(
        None,
        ctypes.c_int,  # CBLAS enums stay 32-bit even under ILP64
        ctypes.c_int,
        ctypes.c_int,
        blasint,
        blasint,
        blasint,
        ctypes.c_double,
        ctypes.c_void_p,
        blasint,
        ctypes.c_void_p,
        blasint,
        ctypes.c_double,
        ctypes.c_void_p,
        blasint,
    )(info["gemm_addr"])
    gemm(
        101,  # CblasRowMajor
        111,  # CblasNoTrans
        111,
        7,
        6,
        5,
        1.0,
        a.ctypes.data,
        5,
        b.ctypes.data,
        6,
        0.0,
        got.ctypes.data,
        6,
    )
    return np.array_equal(want.view(np.uint8), got.view(np.uint8))


def blas_info() -> dict:
    """Resolve {gemm_addr, gemv_addr, dot_addr, ilp64, path}; memoized.

    Raises :class:`BlasUnavailable` when no verifiable OpenBLAS is found;
    float64 producer kernels then stay on numpy (int kernels using pure C
    loops still work).
    """
    global _info, _handle
    with _lock:
        if _info is not None:
            if _info.get("error"):
                raise BlasUnavailable(_info["error"])
            return _info
        last = "no OpenBLAS shared library found near numpy"
        for path in _candidate_libs():
            try:
                lib, info = _probe(path)
            except OSError as err:
                last = f"{path}: {err}"
                continue
            if info is None:
                last = f"{path}: no cblas dgemm/dgemv/ddot symbols"
                continue
            try:
                ok = _verify(info)
            except Exception as err:  # pragma: no cover - defensive
                last = f"{path}: verify crashed: {err}"
                continue
            if not ok:
                last = f"{path}: gemm result not bitwise-equal to np.matmul"
                continue
            _handle = lib
            _info = info
            return _info
        _info = {"error": last}
        raise BlasUnavailable(last)
