"""Bind generated C kernels over the same arrays the numpy codegen uses.

This is the bridge between :mod:`repro.infer.kernels` (which owns specs,
scratch planning and the numpy thunks) and the C side (:mod:`.codegen` /
:mod:`.toolchain` / :mod:`.blas`).  Each ``make_*`` function receives the
already-bound numpy kernel plus every array the fused node touches, and
returns a callable drop-in replacement — or ``None`` when the native
backend must decline (no toolchain, no verifiable BLAS, an epilogue step
with no C lowering, a non-contiguous view, a non-float64 dtype).

Fallback ladder (cheapest exit first):

1. *decline at bind* — any precondition above fails; the caller keeps the
   numpy thunk it already built.  Logged once per reason.
2. *first-call parity check* — the returned thunk's first invocation runs
   the C kernel, snapshots the output, re-runs the numpy kernel and
   compares **bytes**.  On mismatch it pins itself to numpy permanently
   (the numpy result, being last, is what downstream nodes consumed) and
   logs once.  On match it pins itself to the C kernel.
3. *never crash* — compile/load errors surface as
   :class:`~.toolchain.NativeUnavailable` and turn into a decline.

The parity check costs one extra kernel execution and one output copy per
bound thunk per process — amortized to nothing over a serving lifetime,
and it is what lets ``backend="auto"`` default to on: a miscompiled or
exotic-platform kernel demotes itself instead of corrupting results.
"""

from __future__ import annotations

import dataclasses
import logging
import threading

import numpy as np

from repro.infer.native import blas, codegen, toolchain

__all__ = [
    "available",
    "status",
    "reset",
    "make_producer",
    "make_eltwise",
    "make_pool",
    "make_gap",
    "make_add",
    "run_int_producer",
]

logger = logging.getLogger("repro.infer.native")

_lock = threading.Lock()
_logged: set = set()
_counters = {"bound": 0, "declined": 0, "check_failures": 0}


def _log_once(key, msg: str, *args) -> None:
    with _lock:
        if key in _logged:
            return
        _logged.add(key)
    logger.warning(msg, *args)


def _count(name: str) -> None:
    with _lock:
        _counters[name] += 1


def available() -> bool:
    """Can this process compile-or-load native kernels at all?"""
    try:
        toolchain.find_compiler()
        toolchain.compile_flags()
        return True
    except toolchain.NativeUnavailable as err:
        _log_once(("toolchain",), "native backend disabled: %s", err)
        return False


def status() -> dict:
    """Diagnostic block for ``ExecutionPlan.summary()`` / ``/metrics``."""
    info: dict = {"loader": None, "compiler": None, "blas": None}
    try:
        info["compiler"] = toolchain.find_compiler()
        info["flags"] = list(toolchain.compile_flags())
        info["available"] = True
    except toolchain.NativeUnavailable as err:
        info["available"] = False
        info["reason"] = str(err)
    try:
        info["loader"] = toolchain.loader_kind()
    except Exception:  # pragma: no cover - defensive
        pass
    try:
        b = blas.blas_info()
        info["blas"] = {"path": b["path"], "ilp64": b["ilp64"]}
    except blas.BlasUnavailable as err:
        info["blas"] = {"error": str(err)}
    try:
        from repro.infer.native.threading import runtime as _mtrt

        # Non-forcing: reports pool utilization when threaded kernels have
        # been bound, without compiling the runtime just to say so.
        info["threading"] = _mtrt.stats()
    except Exception:  # pragma: no cover - defensive
        info["threading"] = {"available": False, "reason": "runtime import failed"}
    with _lock:
        info.update(_counters)
    return info


def reset() -> None:
    """Forget memoized toolchain state and log-once keys (test helper)."""
    toolchain.reset()
    try:
        from repro.infer.native.threading import runtime as _mtrt

        _mtrt.reset()
    except Exception:  # pragma: no cover - defensive
        pass
    with _lock:
        _logged.clear()
        for k in _counters:
            _counters[k] = 0


# -- C ABI invocation ---------------------------------------------------------


def _addresses(arrays: list) -> tuple[list[int], list]:
    """(addresses, keep-alive refs); ``None`` -> NULL, ints pass through."""
    addrs: list[int] = []
    keep: list = []
    for a in arrays:
        if a is None:
            addrs.append(0)
        elif isinstance(a, int):
            addrs.append(a)
        else:
            keep.append(a)
            addrs.append(a.ctypes.data)
    return addrs, keep


def _pack_call(fn, arrays: list, dims: list, scalars: list):
    """A zero-argument callable invoking ``fn`` with prebuilt C argument
    blocks (addresses resolved once at bind time — array *identities* must
    therefore be stable across calls, which the bound-once register model
    guarantees)."""
    addrs, keep = _addresses(arrays)
    scal = [float(s) for s in scalars] or [0.0]
    idims = [int(d) for d in dims]
    if toolchain.loader_kind() == "cffi":
        f = toolchain.ffi()
        cptrs = f.new("void *[]", [f.cast("void *", a) for a in addrs])
        cdims = f.new("long long[]", idims)
        cscal = f.new("double[]", scal)
    else:
        import ctypes

        cptrs = (ctypes.c_void_p * len(addrs))(*addrs)
        cdims = (ctypes.c_longlong * len(idims))(*idims)
        cscal = (ctypes.c_double * len(scal))(*scal)

    def call() -> None:
        fn(cptrs, cdims, cscal)

    call._keep = (keep, cptrs, cdims, cscal)  # pin the argument blocks
    return call


def _native_fn(spec, source: str, prefix: str = "native:"):
    """Fetch (compiling on first use) the C entry point for ``spec``."""
    from repro.infer.kernels import KERNEL_CACHE

    nspec = dataclasses.replace(spec, impl=prefix + spec.impl)
    return KERNEL_CACHE.get_native(
        nspec,
        source,
        lambda src: toolchain.load_library(toolchain.compile_source(src), src),
    )


# -- the first-call parity check ----------------------------------------------


def _checked(native_call, numpy_thunk, out: np.ndarray, inputs: list, record, key):
    """Wrap ``native_call`` so its first invocation self-verifies bitwise.

    ``inputs`` are the arrays the numpy thunk *reads*; any that share
    memory with ``out`` (the in-place elementwise case, or register
    aliasing) are snapshotted before the native run and restored before
    the numpy re-run.
    """
    aliased = [a for a in inputs if np.shares_memory(a, out)]
    state: list = [None]  # None = unchecked, else the pinned callable

    def first() -> None:
        saved = [a.copy() for a in aliased]
        native_call()
        snap = out.copy()
        for a, s in zip(aliased, saved):
            a[...] = s
        numpy_thunk()
        if np.array_equal(snap.view(np.uint8), out.view(np.uint8)):
            state[0] = native_call
            if record is not None:
                record["backend"] = "native"
        else:
            state[0] = numpy_thunk
            _count("check_failures")
            if record is not None:
                record["backend"] = "numpy"
                record["native_check_failed"] = True
            _log_once(
                ("check", key),
                "native kernel %s failed the bitwise parity self-check; "
                "pinned to the numpy codegen",
                key,
            )

    def kernel() -> None:
        fn = state[0]
        if fn is None:
            first()
        else:
            fn()

    return kernel


# -- intra-op threaded variants -----------------------------------------------


def _mt_runtime(threads: int):
    """The parallel-for address when threaded kernels can run, else None
    (the caller then binds the serial untiled kernel — a host-consistent
    choice, so thread-count invariance is preserved either way)."""
    try:
        from repro.infer.native.threading import runtime
    except Exception:  # pragma: no cover - defensive
        return None
    if not runtime.available():
        _log_once(
            ("mt", "runtime"),
            "threading runtime unavailable; using serial native kernels",
        )
        return None
    runtime.ensure_pool(threads - 1)
    return runtime.pf_addr()


def _checked_mt(par_call, ser_call, out: np.ndarray, inputs: list, record, key):
    """First-call self-check for threaded conv/linear kernels.

    Tiled GEMMs are deliberately *not* bitwise-equal to the untiled numpy/
    BLAS path, so the reference here is the **serial dispatch of the same
    tile grid** — ``ser_call`` is the identical compiled kernel with the
    parallel-for pointer slot swapped for ``rt_serial_for``.  A mismatch
    means the threaded execution itself is broken (a race, a miscompile);
    the thunk then pins to serial tiled execution, which downstream nodes
    already consumed and which stays thread-count invariant trivially.
    """
    aliased = [a for a in inputs if np.shares_memory(a, out)]
    state: list = [None]

    def first() -> None:
        saved = [a.copy() for a in aliased]
        par_call()
        snap = out.copy()
        for a, s in zip(aliased, saved):
            a[...] = s
        ser_call()
        if np.array_equal(snap.view(np.uint8), out.view(np.uint8)):
            state[0] = par_call
        else:
            state[0] = ser_call
            _count("check_failures")
            if record is not None:
                record["mt_check_failed"] = True
            _log_once(
                ("mtcheck", key),
                "threaded kernel %s disagreed with serial dispatch of the same "
                "tiles; pinned to serial tiled execution",
                key,
            )

    def kernel() -> None:
        fn = state[0]
        if fn is None:
            first()
        else:
            fn()

    return kernel


def _pack_linear_weight(weight_t: np.ndarray) -> np.ndarray:
    """Pack a ``(IN, F)`` linear weight into ``(NP, IN, 8)`` column panels
    for the micro-kernel (zero-padded tail panel)."""
    in_f, f = weight_t.shape
    npan = (f + 7) // 8
    wp = np.zeros((npan, in_f, 8), np.float64)
    for p in range(npan):
        c0 = p * 8
        c1 = min(c0 + 8, f)
        wp[p, :, : c1 - c0] = weight_t[:, c0:c1]
    return np.ascontiguousarray(wp.reshape(-1))


def _mt_producer(kind, op, impl, epi, ilp64, spec, arrays, dims, scalars,
                 x, out, record, threads, info):
    """Bind the threaded conv/linear kernel, or None to fall back to the
    serial untiled path.  ``arrays``/``dims`` are the *serial* layouts —
    the threaded ABI is exactly those with the parallel-for address
    prepended to ``ptrs`` and the participant limit prepended to ``dims``
    (plus micro-kernel pack buffers appended)."""
    from repro.infer.native.threading import codegen as mtcodegen
    from repro.infer.native.threading import runtime

    pf = _mt_runtime(threads)
    if pf is None:
        return None
    spf = runtime.serial_addr()
    gv = getattr(op, "gemm", None) or "blas"
    if impl == "shift_plane" or gv not in ("blas", "micro"):
        gv = "blas"
    mt_arrays = [pf, *arrays]
    mt_dims = [threads, *dims]
    if kind == "conv":
        source = mtcodegen.conv_source_mt(
            impl, epi, ilp64,
            haspad=info["haspad"], onebyone=info["onebyone"],
            hb=info["hb"], hd=info["hd"], gemm=gv, consts=info["consts"],
        )
        if impl != "shift_plane" and gv == "micro":
            npan = (info["length"] + 7) // 8
            mt_arrays.append(np.empty(info["nb"] * npan * info["ckk"] * 8, np.float64))
    else:
        if impl != "shift_plane" and gv == "micro":
            mt_arrays[-1] = _pack_linear_weight(op.weight_t)
        source = mtcodegen.linear_source_mt(
            impl, epi, ilp64, hb=info["hb"], gemm=gv, consts=info["consts"],
        )
    nspec = dataclasses.replace(spec, extra=spec.extra + (("mt", gv),))
    try:
        fn = _native_fn(nspec, source, prefix="native-mt:")
    except toolchain.NativeUnavailable as err:
        _log_once(("mtcompile", kind), "threaded kernel compile failed: %s", err)
        return None
    _count("bound")
    if record is not None:
        record["backend"] = "native"
        record["threads"] = threads
        if impl != "shift_plane":
            record["gemm"] = gv
    par = _pack_call(fn, mt_arrays, mt_dims, scalars)
    ser = _pack_call(fn, [spf, *mt_arrays[1:]], mt_dims, scalars)
    return _checked_mt(par, ser, out, [x], record, f"{kind}/{impl}")


def _mt_simple(spec, source, arrays, dims, scalars, numpy_thunk, out, inputs,
               record, threads, key):
    """Threaded pool/gap/add/eltwise binding.  These tile grids preserve
    the numpy kernel's per-element operation order exactly, so the serial
    first-call parity check against numpy still applies unchanged."""
    pf = _mt_runtime(threads)
    if pf is None:
        return None
    try:
        fn = _native_fn(spec, source, prefix="native-mt:")
    except toolchain.NativeUnavailable as err:
        _log_once(("mtcompile", key), "threaded kernel compile failed: %s", err)
        return None
    _count("bound")
    if record is not None:
        record["backend"] = "native"
        record["threads"] = threads
    call = _pack_call(fn, [pf, *arrays], [threads, *dims], scalars)
    return _checked(call, numpy_thunk, out, inputs, record, key)


# -- bind-time gates ----------------------------------------------------------


def _contig_f64(*arrays) -> bool:
    return all(
        a is None or (a.dtype == np.float64 and a.flags.c_contiguous) for a in arrays
    )


def _const(a, dtype=np.float64):
    """Constant array in the exact layout C expects (copies are fine —
    these hold weights/indices, not per-batch data)."""
    return np.ascontiguousarray(a, dtype=dtype)


def _decline(key, why: str):
    _count("declined")
    _log_once(("decline", key), "native backend declined %s: %s", key, why)
    return None


def _blas_slots() -> list[int] | None:
    try:
        b = blas.blas_info()
    except blas.BlasUnavailable:
        return None
    return [b["gemm_addr"], b["gemv_addr"], b["dot_addr"]]


# -- float64 producers --------------------------------------------------------


def make_producer(kind, op, x, out, scratch, impl, sig, spec, numpy_thunk, record,
                  threads: int = 0):
    """Native conv/linear kernel bound over the fused node's arrays, or
    ``None``.  ``sig`` is the pre-``repr``'d epilogue signature and
    ``spec`` the numpy kernel's cache spec (reused, impl-prefixed, as the
    native cache key).  ``threads >= 1`` binds the tiled threaded variant
    (falling back to the serial untiled kernel if the runtime is out)."""
    if not available():
        return None
    if spec.dtype != "float64":
        return _decline((kind, "dtype"), f"dtype {spec.dtype} has no native kernels")
    epi = codegen.epilogue_struct(sig)
    if epi is None:
        return _decline((kind, "epilogue"), "epilogue step with no C lowering")
    bslots = _blas_slots()
    if bslots is None:
        return _decline((kind, "blas"), "no verifiable OpenBLAS for bitwise GEMMs")
    ilp64 = blas.blas_info()["ilp64"]
    if not _contig_f64(x, out):
        return _decline((kind, "layout"), "non-contiguous input/output view")
    shift = impl == "shift_plane" and getattr(op, "shift", None) is not None
    scalars = codegen.epilogue_scalars(sig)
    try:
        if kind == "conv":
            nb, c, h, w = x.shape
            k, s, p = op.kernel, op.stride, op.padding
            oh = (h + 2 * p - k) // s + 1
            ow = (w + 2 * p - k) // s + 1
            length = oh * ow
            f, ckk = op.weight2d.shape
            onebyone = k == 1 and s == 1 and p == 0
            pad = scratch.get("pad")
            cols = scratch.get("cols")
            if not _contig_f64(pad, cols):
                return _decline((kind, "layout"), "non-contiguous scratch view")
            bias = None if op.bias is None else _const(op.bias)
            dead = None
            if op.dead_in_weight2d is not None:
                dead = _const(op._dead_bias_map(h, w))
                if dead.shape != (f, length):
                    return _decline((kind, "dead"), "unexpected dead-map shape")
            arrays = [*bslots, x, pad, cols, bias, dead, out]
            dims = [nb, c, h, w, k, s, p, f, ckk, length, oh, ow,
                    int(pad is not None), int(onebyone),
                    int(bias is not None), int(dead is not None)]
            if shift:
                dims.append(len(op.shift.planes))
                for j, plane in enumerate(op.shift.planes):
                    wj = _const(plane.weight)
                    idx = None if plane.col_index is None else _const(plane.col_index, np.int64)
                    rows = None if plane.rows is None else _const(plane.rows, np.int64)
                    sel = scratch.get(f"sel{j}")
                    part = scratch[f"part{j}"]
                    if not _contig_f64(sel, part):
                        return _decline((kind, "layout"), "non-contiguous plane scratch")
                    arrays += [wj, idx, sel, part, rows]
                    dims += [wj.shape[0], wj.shape[1],
                             int(idx is not None), int(rows is not None)]
            else:
                dims.append(0)
                arrays.append(_const(op.weight2d))
            consts = {"C": c, "H": h, "W": w, "K": k, "S": s, "P": p,
                      "F": f, "CKK": ckk, "L": length, "OH": oh, "OW": ow}
            source = codegen.conv_source(
                impl if shift else "dense",
                epi,
                ilp64,
                haspad=pad is not None,
                onebyone=onebyone,
                hb=bias is not None,
                hd=dead is not None,
                consts=consts,
            )
            mtinfo = {"haspad": pad is not None, "onebyone": onebyone,
                      "hb": bias is not None, "hd": dead is not None,
                      "consts": consts, "nb": nb, "ckk": ckk, "length": length}
        else:  # linear
            nb, in_f = x.shape
            f = op.weight_t.shape[1]
            bias = None if op.bias is None else _const(op.bias)
            arrays = [*bslots, x, bias, out]
            dims = [nb, in_f, f, int(bias is not None)]
            if shift:
                dims.append(len(op.shift.planes))
                for j, plane in enumerate(op.shift.planes):
                    wj = _const(plane.weight)
                    idx = None if plane.col_index is None else _const(plane.col_index, np.int64)
                    rows = None if plane.rows is None else _const(plane.rows, np.int64)
                    sel = scratch.get(f"sel{j}")
                    part = scratch[f"part{j}"]
                    if not _contig_f64(sel, part):
                        return _decline((kind, "layout"), "non-contiguous plane scratch")
                    arrays += [wj, idx, sel, part, rows]
                    dims += [wj.shape[1], wj.shape[0],
                             int(idx is not None), int(rows is not None)]
            else:
                dims.append(0)
                arrays.append(_const(op.weight_t))
            consts = {"IN": in_f, "F": f}
            source = codegen.linear_source(
                impl if shift else "dense",
                epi,
                ilp64,
                hb=bias is not None,
                consts=consts,
            )
            mtinfo = {"hb": bias is not None, "consts": consts, "nb": nb}
        if threads >= 1:
            mt = _mt_producer(kind, op, impl if shift else "dense", epi, ilp64,
                              spec, arrays, dims, scalars, x, out, record,
                              threads, mtinfo)
            if mt is not None:
                return mt
        fn = _native_fn(spec, source)
    except toolchain.NativeUnavailable as err:
        return _decline((kind, "compile"), str(err))
    _count("bound")
    if record is not None:
        record["backend"] = "native"
    call = _pack_call(fn, arrays, dims, scalars)
    return _checked(call, numpy_thunk, out, [x], record, f"{kind}/{impl}")


# -- float64 pools / add / eltwise --------------------------------------------


def make_pool(pool_kind, kernel, stride, x, out, sig, spec, numpy_thunk, record,
              threads: int = 0):
    if not available():
        return None
    if spec.dtype != "float64":
        return _decline((pool_kind, "dtype"), f"dtype {spec.dtype} has no native kernels")
    epi = codegen.epilogue_struct(sig)
    if epi is None:
        return _decline((pool_kind, "epilogue"), "epilogue step with no C lowering")
    if not _contig_f64(x, out):
        return _decline((pool_kind, "layout"), "non-contiguous input/output view")
    nb, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    consts = {"C": c, "H": h, "W": w, "K": kernel, "S": stride, "OH": oh, "OW": ow}
    scalars = [1.0 / (kernel * kernel)] + codegen.epilogue_scalars(sig)
    dims = [nb, c, h, w, kernel, stride, oh, ow, int(pool_kind == "avgpool")]
    if threads >= 1:
        from repro.infer.native.threading import codegen as mtcodegen

        mt = _mt_simple(
            spec,
            mtcodegen.pool_source_mt(epi, kernel, pool_kind == "avgpool", consts=consts),
            [x, out], dims, scalars, numpy_thunk, out, [x], record, threads, pool_kind,
        )
        if mt is not None:
            return mt
    try:
        fn = _native_fn(
            spec,
            codegen.pool_source(epi, kernel, pool_kind == "avgpool", consts=consts),
        )
    except toolchain.NativeUnavailable as err:
        return _decline((pool_kind, "compile"), str(err))
    _count("bound")
    if record is not None:
        record["backend"] = "native"
    call = _pack_call(fn, [x, out], dims, scalars)
    return _checked(call, numpy_thunk, out, [x], record, pool_kind)


def make_gap(x, out, sig, spec, numpy_thunk, record, threads: int = 0):
    if not available():
        return None
    if spec.dtype != "float64":
        return _decline(("gap", "dtype"), f"dtype {spec.dtype} has no native kernels")
    epi = codegen.epilogue_struct(sig)
    if epi is None:
        return _decline(("gap", "epilogue"), "epilogue step with no C lowering")
    if not _contig_f64(x, out):
        return _decline(("gap", "layout"), "non-contiguous input/output view")
    nb, c, h, w = x.shape
    consts = {"C": c, "HW": h * w}
    scalars = codegen.epilogue_scalars(sig)
    if threads >= 1:
        from repro.infer.native.threading import codegen as mtcodegen

        mt = _mt_simple(
            spec, mtcodegen.gap_source_mt(epi, consts=consts),
            [x, out], [nb, c, h * w], scalars, numpy_thunk, out, [x], record,
            threads, "gap",
        )
        if mt is not None:
            return mt
    try:
        fn = _native_fn(spec, codegen.gap_source(epi, consts=consts))
    except toolchain.NativeUnavailable as err:
        return _decline(("gap", "compile"), str(err))
    _count("bound")
    if record is not None:
        record["backend"] = "native"
    call = _pack_call(fn, [x, out], [nb, c, h * w], scalars)
    return _checked(call, numpy_thunk, out, [x], record, "gap")


def make_add(a, b, out, sig, spec, numpy_thunk, record, threads: int = 0):
    if not available():
        return None
    if spec.dtype != "float64":
        return _decline(("add", "dtype"), f"dtype {spec.dtype} has no native kernels")
    epi = codegen.epilogue_struct(sig)
    if epi is None:
        return _decline(("add", "epilogue"), "epilogue step with no C lowering")
    if not _contig_f64(a, b, out):
        return _decline(("add", "layout"), "non-contiguous input/output view")
    scalars = codegen.epilogue_scalars(sig)
    if threads >= 1:
        from repro.infer.native.threading import codegen as mtcodegen

        mt = _mt_simple(
            spec, mtcodegen.add_source_mt(epi), [a, b, out], [a.size], scalars,
            numpy_thunk, out, [a, b], record, threads, "add",
        )
        if mt is not None:
            return mt
    try:
        fn = _native_fn(spec, codegen.add_source(epi))
    except toolchain.NativeUnavailable as err:
        return _decline(("add", "compile"), str(err))
    _count("bound")
    if record is not None:
        record["backend"] = "native"
    call = _pack_call(fn, [a, b, out], [a.size], scalars)
    return _checked(call, numpy_thunk, out, [a, b], record, "add")


def make_eltwise(chain_sig, x, out, spec, numpy_thunk, record, threads: int = 0):
    """Standalone elementwise chain; ``chain_sig`` includes the head step
    (an affine head has no C lowering and declines)."""
    if not available():
        return None
    if spec.dtype != "float64":
        return _decline(("eltwise", "dtype"), f"dtype {spec.dtype} has no native kernels")
    struct = codegen.epilogue_struct(chain_sig)
    if struct is None:
        return _decline(("eltwise", "head"), "chain head with no C lowering")
    if not _contig_f64(x, out):
        return _decline(("eltwise", "layout"), "non-contiguous input/output view")
    scalars = codegen.epilogue_scalars(chain_sig)
    if threads >= 1:
        from repro.infer.native.threading import codegen as mtcodegen

        mt = _mt_simple(
            spec, mtcodegen.eltwise_source_mt(struct), [x, out], [x.size], scalars,
            numpy_thunk, out, [x], record, threads, "eltwise",
        )
        if mt is not None:
            return mt
    try:
        fn = _native_fn(spec, codegen.eltwise_source(struct))
    except toolchain.NativeUnavailable as err:
        return _decline(("eltwise", "compile"), str(err))
    _count("bound")
    if record is not None:
        record["backend"] = "native"
    call = _pack_call(fn, [x, out], [x.size], scalars)
    return _checked(call, numpy_thunk, out, [x], record, "eltwise")


# -- integer producers (intq) -------------------------------------------------


def _int_entry(ctx, op, kind: str):
    """Per-context cached native state for one integer op (ops are plain
    picklable dataclasses, so the invoker state lives on the context)."""
    cache = ctx.__dict__.setdefault("_native_int", {})
    entry = cache.get(op.index)
    if entry is not None and entry.get("op") is op:
        return entry
    entry = {"op": op, "mode": None, "fn": None, "consts": None}
    cache[op.index] = entry
    return entry


def run_int_producer(ctx, op, kind: str, data: np.ndarray, out: np.ndarray, numpy_run) -> bool:
    """Run one integer conv/linear natively; ``True`` iff ``out`` is filled.

    ``data`` is the prebuilt im2col columns (conv) or the cast activation
    matrix (linear), both in the op's accumulator dtype.  The first call
    per (context, op) runs the parity check against ``numpy_run``; a
    mismatch pins the op to numpy (returning ``False`` on later calls so
    the caller's numpy path runs).
    """
    entry = _int_entry(ctx, op, kind)
    if entry["mode"] == "numpy":
        return False
    acc_dt = np.dtype(op.acc_dtype)
    if entry["fn"] is None:
        if not available():
            entry["mode"] = "numpy"
            return False
        if not data.flags.c_contiguous or not out.flags.c_contiguous:
            entry["mode"] = "numpy"
            return False
        bslots = _blas_slots()
        threads = int(getattr(op, "threads", 0) or 0)
        mt_pf = _mt_runtime(threads) if threads >= 1 else None
        if mt_pf is not None:
            # Threaded integer kernels use the loops variant only: each
            # tile owns a per-worker int64 scratch row, and integer
            # exactness makes any tile order bitwise-identical anyway.
            variant = "mtloops"
        else:
            variant = "blas" if acc_dt == np.int32 and bslots is not None else "loops"
        ctype = "int32_t" if acc_dt == np.int32 else "int64_t"
        consts = op.consts
        f = op.filters
        prepared = {
            "M0": _const(consts["M0"], np.int64),
            "RND": _const(consts["RND"], np.int64),
            "SH": _const(consts["SH"], np.int64),
            "DMAP": _const(consts["DMAP"], np.int64) if "dead" in op.flags else None,
            "GB": _const(consts["GB"], np.int64) if "gb" in op.flags else None,
        }
        if variant == "blas":
            prepared["W"] = _const(consts["W"], np.float64)
            prepared["blas"] = bslots
        else:
            prepared["W"] = _const(consts["W"], acc_dt)
        from repro.infer.kernels import KernelSpec

        spec = KernelSpec(
            kind=f"int{kind}",
            impl=variant,
            shape=(),
            dtype=str(acc_dt),
            flags=tuple(sorted(op.flags)),
            epilogue=(("rq",),),
        )
        ilp64 = blas.blas_info()["ilp64"] if variant == "blas" else True
        if variant == "mtloops":
            from repro.infer.native.threading import codegen as mtcodegen

            mt_src = (
                mtcodegen.int_conv_source_mt if kind == "conv"
                else mtcodegen.int_linear_source_mt
            )
            src, prefix = mt_src(ctype), "native-mt:"
        else:
            src_fn = codegen.int_conv_source if kind == "conv" else codegen.int_linear_source
            src, prefix = src_fn(variant, ilp64=ilp64, ctype=ctype), "native:"
        try:
            fn = _native_fn(spec, src, prefix=prefix)
        except toolchain.NativeUnavailable as err:
            _log_once(("intcompile", kind), "native int kernel compile failed: %s", err)
            entry["mode"] = "numpy"
            return False
        entry.update(fn=fn, consts=prepared, variant=variant, pf=mt_pf, threads=threads)
        _count("bound")
    consts = entry["consts"]
    f = op.filters
    hd = int("dead" in op.flags)
    hg = int("gb" in op.flags)
    out32 = int(out.dtype == np.int32)
    nb = data.shape[0]
    # Scratch and data buffers can be reallocated between batch sizes, so
    # the pointer blocks are rebuilt per call (unlike the float path, where
    # register identity is bind-stable).
    if kind == "conv":
        kdim, length = data.shape[1], data.shape[2]
        dims = [nb, f, kdim, length, hd, hg, out32]
        if entry["variant"] == "mtloops":
            from repro.infer.native.threading import codegen as mtcodegen

            lim = entry["threads"]
            acc = ctx.buffer(op.index, "natmtacc", (lim, mtcodegen.FB * length), np.int64)
            arrays = [entry["pf"], data, consts["W"], acc,
                      consts["M0"], consts["RND"], consts["SH"],
                      consts["DMAP"], consts["GB"], out]
            dims = [lim, *dims]
        elif entry["variant"] == "blas":
            colsf = ctx.buffer(op.index, "natcolsf", (kdim, length), np.float64)
            accf = ctx.buffer(op.index, "nataccf", (f, length), np.float64)
            arrays = [*consts["blas"], data, consts["W"], colsf, accf,
                      consts["M0"], consts["RND"], consts["SH"],
                      consts["DMAP"], consts["GB"], out]
        else:
            acc = ctx.buffer(op.index, "natacc", (f, length), np.int64)
            arrays = [data, consts["W"], acc,
                      consts["M0"], consts["RND"], consts["SH"],
                      consts["DMAP"], consts["GB"], out]
    else:
        in_f = data.shape[1]
        dims = [nb, in_f, f, hd, hg, out32]
        if entry["variant"] == "mtloops":
            lim = entry["threads"]
            row = ctx.buffer(op.index, "natmtrow", (lim, f), np.int64)
            arrays = [entry["pf"], data, consts["W"], row,
                      consts["M0"], consts["RND"], consts["SH"],
                      consts["DMAP"], consts["GB"], out]
            dims = [lim, *dims]
        elif entry["variant"] == "blas":
            xf = ctx.buffer(op.index, "natxf", (nb, in_f), np.float64)
            accf = ctx.buffer(op.index, "nataccf", (nb, f), np.float64)
            arrays = [*consts["blas"], data, consts["W"], xf, accf,
                      consts["M0"], consts["RND"], consts["SH"],
                      consts["DMAP"], consts["GB"], out]
        else:
            row = ctx.buffer(op.index, "natrow", (f,), np.int64)
            arrays = [data, consts["W"], row,
                      consts["M0"], consts["RND"], consts["SH"],
                      consts["DMAP"], consts["GB"], out]
    call = _pack_call(entry["fn"], arrays, dims, [])
    if entry["mode"] == "native":
        call()
        return True
    # first call: parity check against the numpy kernel
    call()
    snap = out.copy()
    numpy_run()
    if np.array_equal(snap.view(np.uint8), out.view(np.uint8)):
        entry["mode"] = "native"
    else:
        entry["mode"] = "numpy"
        _count("check_failures")
        _log_once(
            ("intcheck", kind),
            "native int %s kernel failed the bitwise parity self-check; "
            "pinned to the numpy codegen",
            kind,
        )
    return True  # out holds the numpy (authoritative) result either way
