"""FLightNNs reproduction (Ding et al., DAC 2019).

Public API layout:

* :mod:`repro.nn` — numpy autograd / layers / optimizers substrate.
* :mod:`repro.quant` — the paper's contribution: power-of-two quantizers,
  LightNN-k, FLightNN with differentiable per-filter ``k`` selection,
  fixed-point baseline, residual group-lasso regularizer.
* :mod:`repro.models` — the eight Table-1 network configurations.
* :mod:`repro.data` — synthetic stand-ins for CIFAR-10/SVHN/CIFAR-100/ImageNet.
* :mod:`repro.train` — the Algorithm-1 quantization-aware trainer.
* :mod:`repro.hw` — analytical FPGA (Zynq ZC706) and ASIC (65 nm) cost models.
* :mod:`repro.analysis` — Pareto fronts and paper-style table formatting.
* :mod:`repro.experiments` — one entry point per paper table/figure.
"""

from repro.version import __version__

__all__ = ["__version__"]
