"""Analysis utilities: Pareto fronts and paper-style table formatting."""

from repro.analysis.pareto import (
    dominates,
    front_dominates,
    front_value_at,
    pareto_front,
    pareto_front_indices,
)
from repro.analysis.tables import format_table, format_throughput_value
from repro.analysis.shapes import (
    check_energy_ordering,
    check_flightnn_interpolation,
    check_storage_ratios,
    check_throughput_ordering,
    run_all_checks,
)

__all__ = [
    "dominates",
    "pareto_front",
    "pareto_front_indices",
    "front_value_at",
    "front_dominates",
    "format_table",
    "format_throughput_value",
    "check_storage_ratios",
    "check_throughput_ordering",
    "check_energy_ordering",
    "check_flightnn_interpolation",
    "run_all_checks",
]
