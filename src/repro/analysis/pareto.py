"""Pareto-front extraction for cost/accuracy trade-off studies.

Convention throughout: points are (cost, value) pairs where *cost* (storage,
energy, latency) is minimised and *value* (accuracy) is maximised — matching
the axes of the paper's Figs. 1, 5 and 6.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["dominates", "pareto_front_indices", "pareto_front", "front_value_at", "front_dominates"]


def dominates(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """Whether point ``a`` Pareto-dominates ``b`` (<= cost, >= value, one strict)."""
    not_worse = a[0] <= b[0] and a[1] >= b[1]
    strictly_better = a[0] < b[0] or a[1] > b[1]
    return not_worse and strictly_better


def pareto_front_indices(points: Sequence[tuple[float, float]]) -> list[int]:
    """Indices of non-dominated points, sorted by increasing cost."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ConfigurationError(f"expected (N, 2) points, got shape {pts.shape}")
    keep = [
        i
        for i in range(len(pts))
        if not any(dominates(tuple(pts[j]), tuple(pts[i])) for j in range(len(pts)) if j != i)
    ]
    keep.sort(key=lambda i: (pts[i][0], -pts[i][1]))
    return keep


def pareto_front(points: Sequence[tuple[float, float]]) -> list[tuple[float, float]]:
    """Non-dominated (cost, value) points sorted by increasing cost."""
    pts = [tuple(map(float, p)) for p in points]
    return [pts[i] for i in pareto_front_indices(pts)]


def front_value_at(
    front: Sequence[tuple[float, float]],
    cost: float,
    cost_rtol: float = 0.0,
) -> float:
    """Best value achievable at or below ``cost`` on a front (-inf if none).

    ``cost_rtol`` admits points up to ``cost * (1 + cost_rtol)`` — useful
    when comparing fronts whose cost coordinates differ by measurement
    granularity (e.g. FLightNN storage a few percent above LightNN-1's).
    """
    limit = cost * (1.0 + cost_rtol) if cost > 0 else cost
    feasible = [v for c, v in front if c <= limit]
    return max(feasible) if feasible else float("-inf")


def front_dominates(
    upper: Sequence[tuple[float, float]],
    lower: Sequence[tuple[float, float]],
    strict_somewhere: bool = False,
    tolerance: float = 0.0,
    cost_rtol: float = 0.0,
) -> bool:
    """Whether front ``upper`` is everywhere at least as good as ``lower``.

    Evaluated at the cost coordinates of both fronts.  This is the paper's
    Fig. 6 claim: the FLightNN accuracy-storage front is the upper bound of
    the LightNN fronts.

    Args:
        upper / lower: Fronts as (cost, value) sequences.
        strict_somewhere: Additionally require ``upper`` to be strictly
            better at at least one evaluated cost.
        tolerance: Value slack allowed at each cost (absorbs run-to-run
            noise in trained-model accuracies).
        cost_rtol: Relative cost slack when matching points across fronts
            (see :func:`front_value_at`).
    """
    upper = pareto_front(upper)
    lower = pareto_front(lower)
    costs = sorted({c for c, _ in upper} | {c for c, _ in lower})
    ge_everywhere = all(
        front_value_at(upper, c, cost_rtol) >= front_value_at(lower, c) - tolerance - 1e-12
        for c in costs
    )
    if not ge_everywhere:
        return False
    if strict_somewhere:
        return any(
            front_value_at(upper, c, cost_rtol) > front_value_at(lower, c) + 1e-12
            for c in costs
        )
    return True
