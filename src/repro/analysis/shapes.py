"""Programmatic paper-shape checks.

Each check inspects a set of :class:`~repro.experiments.common.ModelResult`
rows for one network and returns a list of human-readable violations
(empty = the paper's qualitative claim holds).  The benchmark suite and
EXPERIMENTS.md generation share these so "who wins, by roughly what factor"
is asserted in exactly one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # typing only — avoids a circular package import
    from repro.experiments.common import ModelResult

__all__ = [
    "check_storage_ratios",
    "check_throughput_ordering",
    "check_energy_ordering",
    "check_flightnn_interpolation",
    "run_all_checks",
]


def _by_key(rows: Iterable["ModelResult"]) -> dict[str, "ModelResult"]:
    return {r.scheme_key: r for r in rows}


def check_storage_ratios(rows: Iterable["ModelResult"]) -> list[str]:
    """Storage: L-2 = 2x L-1 = 2x FP; Full = 4x L-2; FL in [L-1, L-2]."""
    r = _by_key(rows)
    violations = []
    if "L-2" in r and "L-1" in r:
        ratio = r["L-2"].storage_mb / r["L-1"].storage_mb
        if abs(ratio - 2.0) > 0.01:
            violations.append(f"storage L-2/L-1 = {ratio:.3f}, expected 2.0")
    if "FP" in r and "L-1" in r:
        if abs(r["FP"].storage_mb - r["L-1"].storage_mb) > 1e-9:
            violations.append("storage FP != L-1 (both 4-bit weights)")
    if "Full" in r and "L-2" in r:
        ratio = r["Full"].storage_mb / r["L-2"].storage_mb
        if abs(ratio - 4.0) > 0.01:
            violations.append(f"storage Full/L-2 = {ratio:.3f}, expected 4.0")
    for key in ("FL_a", "FL_b"):
        if key in r and "L-1" in r and "L-2" in r:
            s = r[key].storage_mb
            if not (r["L-1"].storage_mb - 1e-9 <= s <= r["L-2"].storage_mb + 1e-9):
                violations.append(f"storage {key} = {s:.4f} outside [L-1, L-2]")
    return violations


def check_throughput_ordering(rows: Iterable["ModelResult"]) -> list[str]:
    """Throughput: L-1 > L-2 > Full; FL_a > FP; L-1 within ~[1.5, 3]x of L-2."""
    r = _by_key(rows)
    violations = []
    chain = [key for key in ("L-1", "L-2", "Full") if key in r]
    for fast, slow in zip(chain, chain[1:]):
        if not r[fast].throughput > r[slow].throughput:
            violations.append(f"throughput {fast} <= {slow}")
    if "L-1" in r and "L-2" in r:
        ratio = r["L-1"].throughput / r["L-2"].throughput
        if not 1.4 <= ratio <= 3.5:
            violations.append(f"throughput L-1/L-2 = {ratio:.2f}, expected ~2x")
    if "FL_a" in r and "FP" in r:
        if not r["FL_a"].throughput > r["FP"].throughput:
            violations.append("throughput FL_a <= FP (paper: up to 2x faster)")
    return violations


def check_energy_ordering(rows: Iterable["ModelResult"]) -> list[str]:
    """Energy: L-1 <= FL_a <= FL_b-ish <= L-2 < FP << Full."""
    r = _by_key(rows)
    violations = []
    eps = 1e-12
    if "L-1" in r and "L-2" in r and not r["L-1"].energy_uj < r["L-2"].energy_uj:
        violations.append("energy L-1 >= L-2")
    for key in ("FL_a", "FL_b"):
        if key in r and "L-1" in r and "L-2" in r:
            e = r[key].energy_uj
            if not (r["L-1"].energy_uj - eps <= e <= r["L-2"].energy_uj + eps):
                violations.append(f"energy {key} outside [L-1, L-2]")
    if "FP" in r and "L-2" in r and not r["FP"].energy_uj > r["L-2"].energy_uj:
        violations.append("energy FP <= L-2")
    if "Full" in r and "FP" in r and not r["Full"].energy_uj > 5 * r["FP"].energy_uj:
        violations.append("energy Full not >> FP")
    return violations


def check_flightnn_interpolation(rows: Iterable["ModelResult"]) -> list[str]:
    """FLightNN k in [0, 2], FL_a at most FL_b, L-1/L-2 at exactly 1/2."""
    r = _by_key(rows)
    violations = []
    if "L-1" in r and r["L-1"].mean_filter_k != 1.0:
        violations.append("L-1 mean k != 1")
    if "L-2" in r and r["L-2"].mean_filter_k != 2.0:
        violations.append("L-2 mean k != 2")
    for key in ("FL_a", "FL_b"):
        if key in r and not 0.0 <= r[key].mean_filter_k <= 2.0:
            violations.append(f"{key} mean k out of range")
    if "FL_a" in r and "FL_b" in r:
        if r["FL_a"].mean_filter_k > r["FL_b"].mean_filter_k + 1e-9:
            violations.append("FL_a mean k exceeds FL_b (lambda ordering broken)")
    return violations


def run_all_checks(rows: Iterable["ModelResult"]) -> list[str]:
    """All shape checks for one network's rows; empty list = all claims hold."""
    rows = list(rows)
    violations = []
    violations += check_storage_ratios(rows)
    violations += check_throughput_ordering(rows)
    violations += check_energy_ordering(rows)
    violations += check_flightnn_interpolation(rows)
    return violations
