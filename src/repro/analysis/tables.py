"""Paper-style table rendering for experiment results."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_throughput_value", "format_table"]


def format_throughput_value(value: float) -> str:
    """Render throughput the way the paper's tables do (e.g. ``2.2e3``).

    Values below 100 are printed plainly (Table 2 shows ``10.2`` and
    ``39.2`` for network 3); larger ones use one-decimal scientific
    notation.
    """
    if value <= 0:
        return "0"
    if value < 100:
        return f"{value:.1f}"
    exponent = len(f"{int(value)}") - 1
    mantissa = value / 10**exponent
    if mantissa >= 9.95:  # would render as "10.0eN"
        mantissa /= 10.0
        exponent += 1
    return f"{mantissa:.1f}e{exponent}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: Column names.
        rows: Cell values (converted with ``str``).
        title: Optional caption printed above the table.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
