"""Server metrics core: counters, queue-depth gauge, latency percentiles.

Builds on the thread-safe accumulators in :mod:`repro.train.metrics`
(:class:`~repro.train.metrics.Counter`,
:class:`~repro.train.metrics.RunningAverage`) so the serving and training
stacks share one metrics vocabulary.  Latency percentiles come from a
fixed-size uniform reservoir (Vitter's algorithm R): memory stays bounded
under sustained traffic while every request ever observed has equal
probability of being represented in the sample.

Counter semantics (the reconciliation invariant the load test asserts):

``offered == accepted + shed`` always — every submit attempt is either
queued or shed at the door.  Accepted requests then finish as exactly one of
``completed``, ``expired`` (deadline hit before/while serving) or
``failed`` (engine raised) or ``cancelled`` (server stopped without drain).
"""

from __future__ import annotations

import random
import threading
from typing import Callable

from repro.train.metrics import Counter, RunningAverage

__all__ = ["ClusterMetrics", "LatencyReservoir", "ServerMetrics", "percentile"]


def percentile(samples: "list[float]", p: float) -> float:
    """Nearest-rank percentile of ``samples`` (``p`` in [0, 100]).

    Returns 0.0 for an empty sample set, matching the "no traffic yet"
    snapshot convention.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if p <= 0:
        return ordered[0]
    rank = min(len(ordered), max(1, -(-len(ordered) * p // 100)))  # ceil
    return ordered[int(rank) - 1]


class LatencyReservoir:
    """Bounded uniform sample of latency observations (algorithm R).

    The first ``capacity`` observations fill the reservoir; observation
    ``n > capacity`` replaces a uniformly random slot with probability
    ``capacity / n``.  A deterministic seed keeps benchmark snapshots
    reproducible for a fixed arrival order.
    """

    def __init__(self, capacity: int = 1024, seed: int = 0) -> None:
        self.capacity = capacity
        self._samples: list[float] = []
        self._seen = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._seen += 1
            if len(self._samples) < self.capacity:
                self._samples.append(seconds)
            else:
                slot = self._rng.randrange(self._seen)
                if slot < self.capacity:
                    self._samples[slot] = seconds

    @property
    def seen(self) -> int:
        with self._lock:
            return self._seen

    def percentiles(self, points: "tuple[float, ...]" = (50.0, 95.0, 99.0)) -> "dict[str, float]":
        """``{"p50": ..., ...}`` over the current sample (0.0 when empty)."""
        with self._lock:
            samples = list(self._samples)
        return {f"p{point:g}": percentile(samples, point) for point in points}


class ServerMetrics:
    """Per-model serving metrics: request accounting, batching, latency.

    All mutators are thread-safe; :meth:`snapshot` returns a plain-JSON
    dict suitable for the ``/metrics`` endpoint.
    """

    def __init__(self, reservoir_capacity: int = 1024) -> None:
        self.offered = Counter()
        self.accepted = Counter()
        self.shed = Counter()
        self.completed = Counter()
        self.expired = Counter()
        self.failed = Counter()
        self.cancelled = Counter()
        self.batches = Counter()
        self.batch_size_mean = RunningAverage()
        self.latency_mean = RunningAverage()
        self.latency = LatencyReservoir(reservoir_capacity)
        self._batch_hist: dict[int, int] = {}
        self._hist_lock = threading.Lock()
        self._depth_gauge: "Callable[[], int] | None" = None

    # -- recording -------------------------------------------------------------

    def record_offered(self) -> None:
        self.offered.increment()

    def record_accepted(self) -> None:
        self.accepted.increment()

    def record_shed(self) -> None:
        self.shed.increment()

    def record_expired(self) -> None:
        self.expired.increment()

    def record_failed(self) -> None:
        self.failed.increment()

    def record_cancelled(self) -> None:
        self.cancelled.increment()

    def record_batch(self, size: int) -> None:
        self.batches.increment()
        self.batch_size_mean.update(size)
        with self._hist_lock:
            self._batch_hist[size] = self._batch_hist.get(size, 0) + 1

    def record_completed(self, latency_s: float) -> None:
        self.completed.increment()
        self.latency_mean.update(latency_s)
        self.latency.record(latency_s)

    def bind_depth_gauge(self, fn: "Callable[[], int]") -> None:
        """Register a live queue-depth read (the batcher binds itself here)."""
        self._depth_gauge = fn

    # -- reading ---------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return self._depth_gauge() if self._depth_gauge is not None else 0

    def batch_size_histogram(self) -> "dict[int, int]":
        with self._hist_lock:
            return dict(self._batch_hist)

    def snapshot(self) -> dict:
        """A consistent-enough, JSON-ready view of every metric.

        Individual counters are internally consistent; cross-counter sums
        can be momentarily off by in-flight requests, so the reconciliation
        invariant holds exactly only at quiescence.
        """
        return self._base_snapshot()

    def _base_snapshot(self) -> dict:
        return {
            "requests": {
                "offered": self.offered.value,
                "accepted": self.accepted.value,
                "shed": self.shed.value,
                "completed": self.completed.value,
                "expired": self.expired.value,
                "failed": self.failed.value,
                "cancelled": self.cancelled.value,
            },
            "queue_depth": self.queue_depth,
            "batches": {
                "count": self.batches.value,
                "mean_size": self.batch_size_mean.value,
                "histogram": {str(k): v for k, v in sorted(self.batch_size_histogram().items())},
            },
            "latency_s": {
                "mean": self.latency_mean.value,
                "samples": self.latency.seen,
                **self.latency.percentiles(),
            },
        }


class ClusterMetrics(ServerMetrics):
    """:class:`ServerMetrics` plus the multi-process cluster's extra axes.

    Adds worker lifecycle counters (deaths, restarts, crash re-dispatches),
    per-priority-class completion counts and latency reservoirs, and a
    gauge hook through which the cluster service merges its live
    supervisor/breaker/admission state into :meth:`snapshot`.
    """

    def __init__(
        self,
        reservoir_capacity: int = 1024,
        priorities: "tuple[str, ...]" = ("interactive", "batch"),
    ) -> None:
        super().__init__(reservoir_capacity)
        self.worker_deaths = Counter()
        self.worker_restarts = Counter()
        self.redispatched = Counter()
        self.completed_by_priority = {p: Counter() for p in priorities}
        self.latency_by_priority = {p: LatencyReservoir(reservoir_capacity) for p in priorities}
        self._cluster_gauge: "Callable[[], dict] | None" = None

    # -- recording -------------------------------------------------------------

    def record_death(self) -> None:
        self.worker_deaths.increment()

    def record_restart(self) -> None:
        self.worker_restarts.increment()

    def record_redispatch(self) -> None:
        self.redispatched.increment()

    def record_completed(self, latency_s: float, priority: "str | None" = None) -> None:
        super().record_completed(latency_s)
        if priority in self.latency_by_priority:
            self.completed_by_priority[priority].increment()
            self.latency_by_priority[priority].record(latency_s)

    def bind_cluster_gauge(self, fn: "Callable[[], dict]") -> None:
        """Register the service's live workers/breaker/admission read."""
        self._cluster_gauge = fn

    # -- reading ---------------------------------------------------------------

    def snapshot(self) -> dict:
        snap = self._base_snapshot()
        snap["priorities"] = {
            priority: {
                "completed": self.completed_by_priority[priority].value,
                "latency_s": {
                    "samples": self.latency_by_priority[priority].seen,
                    **self.latency_by_priority[priority].percentiles(),
                },
            }
            for priority in self.completed_by_priority
        }
        snap["workers_lifecycle"] = {
            "deaths": self.worker_deaths.value,
            "restarts": self.worker_restarts.value,
            "redispatched": self.redispatched.value,
        }
        if self._cluster_gauge is not None:
            snap["cluster"] = self._cluster_gauge()
        return snap
