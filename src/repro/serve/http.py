"""Stdlib-only HTTP front end for the serving layer.

:class:`ModelServer` wraps a :class:`~repro.serve.registry.ModelRegistry`
in a :class:`~http.server.ThreadingHTTPServer` (one handler thread per
connection, no third-party dependencies) exposing:

* ``POST /v1/predict`` — JSON body with one CHW ``"image"`` (or a list
  under ``"images"``), optional ``"model"`` (required only when several
  models are registered) and ``"deadline_ms"``.  Answers logits and argmax
  predictions; float64 logits survive the JSON round-trip exactly
  (``repr``-based float serialization), which the parity load test relies
  on.
* ``GET /healthz`` — liveness plus the registered model names.
* ``GET /metrics`` — JSON snapshot of every model's serving metrics.

Error mapping is explicit: malformed requests → 400, unknown model → 404,
shed by backpressure → **503** (with ``Retry-After``), deadline expired →
504, engine failure → 500.

Shutdown is drain-then-stop: the listener stops accepting, queued and
in-flight requests complete through the batchers, handler threads finish
writing their responses, and only then does the socket close — no future is
ever dropped (``stop(drain=False)`` is the fast path that fails queued
requests with 503-style errors instead).
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    QueueFullError,
    QuotaExceededError,
    ReproError,
    ServerClosedError,
    ShapeError,
    UnknownModelError,
)
from repro.serve.config import ServerConfig
from repro.serve.registry import ModelRegistry
from repro.train.metrics import Counter
from repro.utils.logging import get_logger
from repro.version import __version__

__all__ = ["ModelServer"]

logger = get_logger("serve.http")

_MAX_BODY_BYTES = 64 * 1024 * 1024


class _RequestError(Exception):
    """Internal: carries an HTTP status + message to the response writer."""

    def __init__(self, status: int, message: str, **extra) -> None:
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **extra}


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"
    # Idle keep-alive connections are dropped after this many seconds, so
    # abandoned sockets cannot pin handler threads forever.
    timeout = 60.0

    # -- plumbing --------------------------------------------------------------

    @property
    def registry(self) -> ModelRegistry:
        return self.server.registry

    @property
    def config(self) -> ServerConfig:
        return self.server.config

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        logger.debug("%s - %s", self.address_string(), fmt % args)

    def _send_json(self, status: int, payload: dict, headers: "dict[str, str] | None" = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            self.close_connection = True

    def _read_json_body(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            raise _RequestError(411, "Content-Length required")
        try:
            length = int(length)
        except ValueError:
            raise _RequestError(400, f"bad Content-Length {length!r}") from None
        if not 0 < length <= _MAX_BODY_BYTES:
            raise _RequestError(413, f"body must be 1..{_MAX_BODY_BYTES} bytes, got {length}")
        try:
            payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _RequestError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _RequestError(400, "body must be a JSON object")
        return payload

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:
        with self.server.track_request():
            self._get()

    def do_POST(self) -> None:
        with self.server.track_request():
            self._post()

    def _get(self) -> None:
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok", "models": self.registry.names()})
        elif self.path == "/metrics":
            self._send_json(
                200,
                {
                    "server": {
                        "uptime_s": time.monotonic() - self.server.started_at,
                        "http_requests": self.server.http_requests.value,
                        "drain_timed_out": self.server.drain_timed_out.value,
                        "version": __version__,
                    },
                    "models": self.registry.metrics_snapshot(),
                },
            )
        elif self.path == "/":
            self._send_json(
                200,
                {
                    "service": "repro-serve",
                    "endpoints": ["POST /v1/predict", "GET /healthz", "GET /metrics"],
                },
            )
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _post(self) -> None:
        if self.path != "/v1/predict":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            payload = self._read_json_body()
            response = self._predict(payload)
        except _RequestError as exc:
            self._send_json(exc.status, exc.payload)
        except CircuitOpenError as exc:
            retry_after = max(1, int(-(-getattr(exc, "retry_after_s", 1.0) // 1)))
            self._send_json(
                503,
                {"error": str(exc), "breaker_open": True},
                headers={"Retry-After": str(retry_after)},
            )
        except QuotaExceededError as exc:
            self._send_json(429, {"error": str(exc), "quota": True}, headers={"Retry-After": "1"})
        except QueueFullError as exc:
            self._send_json(503, {"error": str(exc), "shed": True}, headers={"Retry-After": "1"})
        except ServerClosedError as exc:
            self._send_json(503, {"error": str(exc), "shed": True})
        except DeadlineExceededError as exc:
            self._send_json(504, {"error": str(exc)})
        except UnknownModelError as exc:
            self._send_json(404, {"error": str(exc)})
        except (ShapeError, ConfigurationError, ValueError, TypeError) as exc:
            self._send_json(400, {"error": str(exc)})
        except ReproError as exc:
            logger.exception("predict failed")
            self._send_json(500, {"error": str(exc)})
        else:
            self._send_json(200, response)

    # -- prediction ------------------------------------------------------------

    def _predict(self, payload: dict) -> dict:
        name = payload.get("model")
        if name is not None and not isinstance(name, str):
            raise _RequestError(400, '"model" must be a string')
        single = "image" in payload
        if single == ("images" in payload):
            raise _RequestError(400, 'body must carry exactly one of "image" or "images"')
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            raise _RequestError(400, '"deadline_ms" must be a positive number')
        deadline_s = None if deadline_ms is None else deadline_ms / 1000.0
        priority = payload.get("priority", "interactive")
        if not isinstance(priority, str):
            raise _RequestError(400, '"priority" must be a string')
        tenant = payload.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise _RequestError(400, '"tenant" must be a string')

        raw = [payload["image"]] if single else payload["images"]
        if not isinstance(raw, list) or (not single and not raw):
            raise _RequestError(400, '"images" must be a non-empty list of CHW arrays')
        entry = self.registry.get(name)
        try:
            images = [np.asarray(img, dtype=np.float64) for img in raw]
        except (ValueError, TypeError) as exc:
            raise _RequestError(400, f"could not parse image array: {exc}") from None

        # Submit every image before waiting on any, so one HTTP batch can be
        # coalesced into one engine batch by the micro-batcher.  Priority
        # class and tenant flow to the cluster router's admission control;
        # the in-process micro-batcher accepts and ignores them.
        futures = [
            entry.batcher.submit(img, deadline_s=deadline_s, priority=priority, tenant=tenant)
            for img in images
        ]
        timeout = self.config.request_timeout_s
        logits = []
        try:
            for future in futures:
                logits.append(future.result(timeout=timeout))
        except FutureTimeoutError:
            raise DeadlineExceededError(
                f"no result within the server's {timeout:g}s request timeout"
            ) from None
        predictions = [int(np.argmax(row)) for row in logits]
        out: dict = {"model": entry.name}
        if single:
            out["logits"] = logits[0].tolist()
            out["prediction"] = predictions[0]
        else:
            out["logits"] = [row.tolist() for row in logits]
            out["predictions"] = predictions
        return out


class _HTTPServer(ThreadingHTTPServer):
    # Handler threads are daemons and server_close() does not join them:
    # idle keep-alive connections would otherwise stall shutdown.  Graceful
    # stop instead waits on the explicit in-flight request counter below, so
    # every *accepted* request still gets its response written.
    daemon_threads = True
    block_on_close = False
    # Deep accept backlog: load tests legitimately burst dozens of
    # simultaneous connects (the default of 5 sends connection resets).
    request_queue_size = 128

    def __init__(
        self,
        address,
        registry: ModelRegistry,
        config: ServerConfig,
        drain_timed_out: "Counter | None" = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.registry = registry
        self.config = config
        self.http_requests = Counter()
        self.drain_timed_out = drain_timed_out if drain_timed_out is not None else Counter()
        self.started_at = time.monotonic()
        self._inflight = 0
        self._inflight_cond = threading.Condition()

    def track_request(self):
        """Context manager counting one in-flight HTTP request."""
        return _TrackedRequest(self)

    def wait_idle(self, timeout: float) -> bool:
        """Block until no HTTP request is being handled (bounded)."""
        deadline = time.monotonic() + timeout
        with self._inflight_cond:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cond.wait(remaining)
        return True


class _TrackedRequest:
    def __init__(self, server: _HTTPServer) -> None:
        self._server = server

    def __enter__(self) -> None:
        self._server.http_requests.increment()
        with self._server._inflight_cond:
            self._server._inflight += 1

    def __exit__(self, *exc) -> None:
        with self._server._inflight_cond:
            self._server._inflight -= 1
            self._server._inflight_cond.notify_all()


class ModelServer:
    """The serving front end: HTTP listener + registry lifecycle.

    Usage::

        registry = ModelRegistry()
        registry.register("net4", model)
        with ModelServer(registry, ServerConfig(port=0)) as server:
            print(server.url)     # e.g. http://127.0.0.1:40913
            ...
        # exiting the context drains and stops

    ``start``/``stop`` may also be called explicitly; ``stop(drain=True)``
    is the graceful path (see module docstring).
    """

    def __init__(self, registry: ModelRegistry, config: "ServerConfig | None" = None) -> None:
        self.registry = registry
        self.config = config or ServerConfig()
        self._httpd: "_HTTPServer | None" = None
        self._thread: "threading.Thread | None" = None
        #: Times a graceful stop hit its drain deadline with handler threads
        #: still running (surfaced in ``/metrics`` under ``server``).
        self.drain_timed_out = Counter()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ModelServer":
        if self._httpd is not None:
            return self
        self.registry.start()
        self._httpd = _HTTPServer(
            (self.config.host, self.config.port),
            self.registry,
            self.config,
            drain_timed_out=self.drain_timed_out,
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-listener",
            daemon=True,
        )
        self._thread.start()
        logger.info("serving %d model(s) on %s", len(self.registry), self.url)
        return self

    def stop(self, drain: bool = True) -> None:
        """Drain-then-stop by default; idempotent.

        The whole graceful sequence shares **one** ``drain_timeout_s``
        deadline — a wedged handler thread cannot stretch shutdown to the
        sum of per-stage timeouts.  Hitting the deadline with handlers
        still running increments :attr:`drain_timed_out` (surfaced in
        ``/metrics``) and shutdown proceeds anyway.
        """
        httpd, self._httpd = self._httpd, None
        if httpd is None:
            return
        deadline = time.monotonic() + self.config.drain_timeout_s
        httpd.shutdown()  # 1. stop accepting new connections
        # 2. drain queued/in-flight work through the batchers (bounded by
        # what is left of the shared deadline).
        self.registry.stop(drain=drain, timeout=max(0.0, deadline - time.monotonic()))
        timed_out = False
        if drain:
            # 3. let handlers finish writing responses for everything the
            # drain just resolved (idle keep-alive sockets don't count).
            timed_out = not httpd.wait_idle(max(0.0, deadline - time.monotonic()))
        httpd.server_close()  # 4. release the listening socket
        if self._thread is not None:
            self._thread.join(max(0.05, deadline - time.monotonic()))
            self._thread = None
        if timed_out:
            self.drain_timed_out.increment()
            logger.warning(
                "drain deadline (%gs) hit with handler threads still running",
                self.config.drain_timeout_s,
            )
        logger.info("server stopped (drain=%s)", drain)

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- introspection ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The actually bound port (meaningful with ``port=0`` configs)."""
        if self._httpd is None:
            raise ServerClosedError("server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"
