"""Configuration for the serving layer: batcher and HTTP front-end knobs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["BatcherConfig", "ServerConfig", "FULL_POLICIES"]

FULL_POLICIES = ("reject", "block")


@dataclass(frozen=True)
class BatcherConfig:
    """Dynamic micro-batcher tuning.

    Args:
        max_batch_size: Upper bound on how many queued single-image requests
            are coalesced into one engine batch.  ``1`` disables
            micro-batching (every request executes alone — the baseline the
            serving benchmark compares against).
        max_wait_s: How long the batcher may hold the *first* request of a
            forming batch while waiting for more arrivals.  Bounds the
            latency cost of batching: an isolated request is delayed at most
            this long.  ``0`` never waits — it greedily takes whatever is
            already queued.
        queue_depth: High-water mark of the request queue.  Arrivals beyond
            it are handled per ``full_policy``.
        full_policy: ``"reject"`` sheds the request immediately with
            :class:`~repro.errors.QueueFullError` (the HTTP layer maps this
            to 503); ``"block"`` makes ``submit`` wait for queue space —
            backpressure for in-process callers that prefer throttling to
            load-shedding.
        default_deadline_s: Deadline applied to requests that do not carry
            their own; ``None`` means no deadline.  Expired requests are
            dropped *before* compute is spent on them and their futures fail
            with :class:`~repro.errors.DeadlineExceededError`.
        workers: Batcher worker threads.  Each owns a private
            :class:`~repro.infer.plan.ExecutionContext`.  More than one only
            helps when the plan's BLAS kernels release the GIL long enough
            to overlap; the default single worker gives strict run-to-
            completion batch ordering.
    """

    max_batch_size: int = 32
    max_wait_s: float = 0.002
    queue_depth: int = 256
    full_policy: str = "reject"
    default_deadline_s: "float | None" = None
    workers: int = 1

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigurationError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_s < 0:
            raise ConfigurationError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.queue_depth < 1:
            raise ConfigurationError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.full_policy not in FULL_POLICIES:
            raise ConfigurationError(
                f"unknown full_policy {self.full_policy!r}; use one of {FULL_POLICIES}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ConfigurationError(
                f"default_deadline_s must be positive, got {self.default_deadline_s}"
            )
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")


@dataclass(frozen=True)
class ServerConfig:
    """HTTP front-end tuning.

    Args:
        host: Bind address.  The default stays loopback-only; bind
            ``"0.0.0.0"`` explicitly to serve externally.
        port: TCP port; ``0`` lets the OS pick a free one (the bound port is
            readable from :attr:`ModelServer.port` — tests rely on this).
        request_timeout_s: Upper bound a handler thread waits on a
            prediction future before answering 504.  Keeps handler threads
            from blocking forever if their work was dropped.
        drain_timeout_s: Upper bound for the graceful-shutdown drain of
            queued and in-flight requests.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    request_timeout_s: float = 30.0
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(f"port must be in [0, 65535], got {self.port}")
        if self.request_timeout_s <= 0:
            raise ConfigurationError(
                f"request_timeout_s must be positive, got {self.request_timeout_s}"
            )
        if self.drain_timeout_s < 0:
            raise ConfigurationError(
                f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}"
            )
