"""Minimal stdlib HTTP client for the serving front end.

Used by the serving tests, benchmark and example so they all speak the wire
protocol the same way; applications are equally well served by ``curl`` or
any HTTP library.  :class:`PredictClient` is thread-safe — each thread gets
its own persistent keep-alive connection, so concurrent load generators can
share one instance without paying TCP setup per request.

Transport failures — a connect refused, an idle-closed keep-alive, and
equally a :class:`ConnectionResetError`/:class:`BrokenPipeError` that
strikes *mid-response* (headers in, body torn off by a worker crash or a
server restart) — are retried with exponential backoff plus jitter, bounded
by ``max_retries`` and by the request's deadline when one is given.  Every
endpoint is a pure function of its request, so retrying is always safe even
after a partial response.  Exhausted retries surface as
:class:`~repro.errors.RetriesExhaustedError` and a deadline that cannot
accommodate another attempt as
:class:`~repro.errors.DeadlineExceededError` — typed errors, never raw
socket exceptions.

Tail-latency hedging is available via ``hedge_after_s``: when an attempt
has not answered within that budget, a duplicate request races it on a
second connection and the first response wins — the classic p99 defence
for a server that may be mid-restart behind one of its workers.
"""

from __future__ import annotations

import http.client
import json
import queue
import random
import threading
import time
import urllib.parse
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import DeadlineExceededError, RetriesExhaustedError

__all__ = ["PredictClient", "PredictResult", "ServeHTTPError"]

#: Transport-level failures that are safe to retry.  ``ConnectionError``
#: covers ``ConnectionResetError``/``BrokenPipeError`` raised mid-response
#: (between ``getresponse()`` and a complete ``read()``) as well as at
#: connect time; ``http.client.HTTPException`` covers truncated/invalid
#: responses (e.g. ``IncompleteRead``) from a dying server.
_RETRYABLE = (http.client.HTTPException, ConnectionError, TimeoutError, OSError)


class ServeHTTPError(Exception):
    """Non-2xx response, with the parsed JSON error payload attached."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload

    @property
    def shed(self) -> bool:
        """True when the server explicitly load-shed this request (503)."""
        return self.status == 503 and bool(self.payload.get("shed"))


@dataclass
class PredictResult:
    model: str
    logits: np.ndarray  # (C,) single / (N, C) batch
    predictions: "int | list[int]"


class PredictClient:
    """Talk to a :class:`~repro.serve.http.ModelServer` at ``base_url``.

    Connections are keep-alive and thread-local: the first call from each
    thread opens one, later calls reuse it, and a connection the server has
    since closed is transparently reopened on the next retry.

    Args:
        base_url: ``http://host:port`` of the server.
        timeout_s: Socket timeout per attempt.
        max_retries: Transport-failure retries after the first attempt.
        backoff_base_s: First retry delay; doubles per retry.
        backoff_max_s: Delay ceiling.
        backoff_jitter: Each delay is scaled by ``1 + jitter * U[0, 1)`` so
            synchronized clients don't retry in lockstep.
        retry_seed: Seed for the jitter stream (deterministic tests).
        hedge_after_s: Tail-latency hedge budget: when a request has not
            answered within this many seconds, a duplicate is raced on a
            second connection and the first response wins (``None``
            disables; :attr:`hedges_fired` counts firings).  Hedge attempts
            run on short-lived threads with their own connections, so
            enabling hedging trades some keep-alive reuse for p99.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        max_retries: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        backoff_jitter: float = 0.25,
        retry_seed: "int | None" = None,
        hedge_after_s: "float | None" = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if backoff_base_s < 0 or backoff_max_s < 0 or backoff_jitter < 0:
            raise ValueError("backoff parameters must be non-negative")
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.backoff_jitter = backoff_jitter
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ValueError(f"base_url must look like http://host:port, got {base_url!r}")
        self._host = parsed.hostname
        self._port = parsed.port if parsed.port is not None else 80
        if hedge_after_s is not None and hedge_after_s <= 0:
            raise ValueError(f"hedge_after_s must be positive, got {hedge_after_s}")
        self.hedge_after_s = hedge_after_s
        self._local = threading.local()
        self._jitter_rng = random.Random(retry_seed)
        self._stats_lock = threading.Lock()
        #: Hedge requests actually fired (attempt outlived ``hedge_after_s``).
        self.hedges_fired = 0
        #: Test seam: called before every connection attempt; raising one of
        #: the retryable transport errors simulates a dropped connection
        #: (see :class:`repro.testing.faults.ConnectionDropFault`).
        self.pre_request_hook: "Callable[[], None] | None" = None
        #: Test seam: called after response headers arrive, before the body
        #: is read; raising ``ConnectionResetError``/``BrokenPipeError``
        #: simulates a connection torn down mid-response.
        self.mid_response_hook: "Callable[[], None] | None" = None

    # -- connection management -------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(self._host, self._port, timeout=self.timeout_s)
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Close this thread's keep-alive connection (if any)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- raw calls -------------------------------------------------------------

    def _backoff_delay(self, attempt: int) -> float:
        delay = min(self.backoff_max_s, self.backoff_base_s * (2.0 ** attempt))
        return delay * (1.0 + self.backoff_jitter * self._jitter_rng.random())

    def _request(
        self, path: str, body: "dict | None" = None, deadline_s: "float | None" = None
    ) -> dict:
        if self.hedge_after_s is None:
            return self._attempt_loop(path, body, deadline_s)
        return self._hedged_request(path, body, deadline_s)

    def _attempt_loop(
        self,
        path: str,
        body: "dict | None",
        deadline_s: "float | None",
        close_after: bool = False,
    ) -> dict:
        data = None if body is None else json.dumps(body).encode("utf-8")
        method = "GET" if data is None else "POST"
        headers = {"Content-Type": "application/json"} if data is not None else {}
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        try:
            for attempt in range(self.max_retries + 1):
                try:
                    if self.pre_request_hook is not None:
                        self.pre_request_hook()
                    conn = self._connection()
                    conn.request(method, path, body=data, headers=headers)
                    resp = conn.getresponse()
                    if self.mid_response_hook is not None:
                        self.mid_response_hook()
                    raw = resp.read()
                    break
                except _RETRYABLE as exc:
                    # The connection is in an unknown state — whether the drop
                    # struck before the request or mid-response — so close it
                    # and let the next attempt start from a fresh handshake.
                    self.close()
                    if attempt >= self.max_retries:
                        raise RetriesExhaustedError(
                            f"{method} {path} failed after {attempt + 1} attempt(s): {exc}"
                        ) from exc
                    delay = self._backoff_delay(attempt)
                    if deadline is not None and time.monotonic() + delay >= deadline:
                        raise DeadlineExceededError(
                            f"{method} {path}: deadline leaves no room for retry "
                            f"{attempt + 2} (backoff {delay:.3f}s); last error: {exc}"
                        ) from exc
                    time.sleep(delay)
        finally:
            if close_after:  # hedge threads are short-lived: no conn to keep warm
                self.close()
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            payload = {"error": raw.decode("utf-8", "replace") or f"HTTP {resp.status}"}
        if resp.status >= 400:
            raise ServeHTTPError(resp.status, payload)
        return payload

    def _hedged_request(
        self, path: str, body: "dict | None", deadline_s: "float | None"
    ) -> dict:
        """Race a duplicate request once the first exceeds ``hedge_after_s``.

        Both attempts run their full retry loops on their own connections;
        the first to finish wins.  A finisher that *failed* only surfaces
        if no other attempt is still outstanding to save the request.
        """
        results: "queue.SimpleQueue[tuple[str, BaseException | None, dict | None]]" = (
            queue.SimpleQueue()
        )

        def run(tag: str) -> None:
            try:
                results.put((tag, None, self._attempt_loop(path, body, deadline_s, close_after=True)))
            except BaseException as exc:  # delivered to the caller below
                results.put((tag, exc, None))

        threading.Thread(target=run, args=("primary",), daemon=True, name="predict-primary").start()
        outstanding = 1
        first_error: "BaseException | None" = None
        try:
            tag, error, payload = results.get(timeout=self.hedge_after_s)
            outstanding -= 1
        except queue.Empty:
            with self._stats_lock:
                self.hedges_fired += 1
            threading.Thread(target=run, args=("hedge",), daemon=True, name="predict-hedge").start()
            outstanding += 1
            tag, error, payload = results.get()
            outstanding -= 1
        while error is not None and outstanding > 0:
            first_error = first_error or error
            tag, error, payload = results.get()
            outstanding -= 1
        if error is None:
            return payload
        raise first_error or error

    def healthz(self) -> dict:
        return self._request("/healthz")

    def metrics(self) -> dict:
        return self._request("/metrics")

    # -- prediction ------------------------------------------------------------

    def predict(
        self,
        image,
        model: "str | None" = None,
        deadline_ms: "float | None" = None,
    ) -> PredictResult:
        """Predict one CHW image; raises :class:`ServeHTTPError` on non-2xx.

        ``deadline_ms`` is enforced on both sides: the server sheds the
        request once it expires, and the client stops retrying when the next
        backoff would overrun it.
        """
        body: dict = {"image": np.asarray(image).tolist()}
        if model is not None:
            body["model"] = model
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        out = self._request(
            "/v1/predict", body,
            deadline_s=None if deadline_ms is None else deadline_ms / 1000.0,
        )
        return PredictResult(
            model=out["model"],
            logits=np.asarray(out["logits"], dtype=np.float64),
            predictions=out["prediction"],
        )

    def predict_batch(
        self,
        images,
        model: "str | None" = None,
        deadline_ms: "float | None" = None,
    ) -> PredictResult:
        """Predict a list/array of CHW images in one HTTP request."""
        body: dict = {"images": [np.asarray(img).tolist() for img in images]}
        if model is not None:
            body["model"] = model
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        out = self._request(
            "/v1/predict", body,
            deadline_s=None if deadline_ms is None else deadline_ms / 1000.0,
        )
        return PredictResult(
            model=out["model"],
            logits=np.asarray(out["logits"], dtype=np.float64),
            predictions=out["predictions"],
        )
