"""Minimal stdlib HTTP client for the serving front end.

Used by the serving tests, benchmark and example so they all speak the wire
protocol the same way; applications are equally well served by ``curl`` or
any HTTP library.  :class:`PredictClient` is thread-safe — each thread gets
its own persistent keep-alive connection, so concurrent load generators can
share one instance without paying TCP setup per request.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse
from dataclasses import dataclass

import numpy as np

__all__ = ["PredictClient", "PredictResult", "ServeHTTPError"]


class ServeHTTPError(Exception):
    """Non-2xx response, with the parsed JSON error payload attached."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload

    @property
    def shed(self) -> bool:
        """True when the server explicitly load-shed this request (503)."""
        return self.status == 503 and bool(self.payload.get("shed"))


@dataclass
class PredictResult:
    model: str
    logits: np.ndarray  # (C,) single / (N, C) batch
    predictions: "int | list[int]"


class PredictClient:
    """Talk to a :class:`~repro.serve.http.ModelServer` at ``base_url``.

    Connections are keep-alive and thread-local: the first call from each
    thread opens one, later calls reuse it, and a connection the server has
    since closed is transparently reopened (one retry — safe because every
    endpoint is a pure function of its request).
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ValueError(f"base_url must look like http://host:port, got {base_url!r}")
        self._host = parsed.hostname
        self._port = parsed.port if parsed.port is not None else 80
        self._local = threading.local()

    # -- connection management -------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(self._host, self._port, timeout=self.timeout_s)
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Close this thread's keep-alive connection (if any)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- raw calls -------------------------------------------------------------

    def _request(self, path: str, body: "dict | None" = None) -> dict:
        data = None if body is None else json.dumps(body).encode("utf-8")
        method = "GET" if data is None else "POST"
        headers = {"Content-Type": "application/json"} if data is not None else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=data, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
                break
            except (http.client.HTTPException, ConnectionError, TimeoutError, OSError):
                # Stale keep-alive connection (server restarted or idle-closed
                # it): reopen once.  All endpoints are pure, so a retry of a
                # request that never produced a response is safe.
                self.close()
                if attempt:
                    raise
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            payload = {"error": raw.decode("utf-8", "replace") or f"HTTP {resp.status}"}
        if resp.status >= 400:
            raise ServeHTTPError(resp.status, payload)
        return payload

    def healthz(self) -> dict:
        return self._request("/healthz")

    def metrics(self) -> dict:
        return self._request("/metrics")

    # -- prediction ------------------------------------------------------------

    def predict(
        self,
        image,
        model: "str | None" = None,
        deadline_ms: "float | None" = None,
    ) -> PredictResult:
        """Predict one CHW image; raises :class:`ServeHTTPError` on non-2xx."""
        body: dict = {"image": np.asarray(image).tolist()}
        if model is not None:
            body["model"] = model
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        out = self._request("/v1/predict", body)
        return PredictResult(
            model=out["model"],
            logits=np.asarray(out["logits"], dtype=np.float64),
            predictions=out["prediction"],
        )

    def predict_batch(
        self,
        images,
        model: "str | None" = None,
        deadline_ms: "float | None" = None,
    ) -> PredictResult:
        """Predict a list/array of CHW images in one HTTP request."""
        body: dict = {"images": [np.asarray(img).tolist() for img in images]}
        if model is not None:
            body["model"] = model
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        out = self._request("/v1/predict", body)
        return PredictResult(
            model=out["model"],
            logits=np.asarray(out["logits"], dtype=np.float64),
            predictions=out["predictions"],
        )
