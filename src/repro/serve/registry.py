"""Multi-model registry: warm compiled plans, routing, hot weight updates.

A :class:`ModelRegistry` owns one :class:`ServingModel` per name — the
compiled :class:`~repro.infer.engine.InferenceEngine`, its
:class:`~repro.serve.batcher.MicroBatcher` and its
:class:`~repro.serve.metrics.ServerMetrics` — and routes ``submit`` calls by
model name.  Registration compiles the plan up front, so the first request
to every model is already warm.

Hot weight updates integrate with the engine's ``on_stale="refresh"``
machinery two ways:

* *transparent*: each served batch runs the engine's cheap version-counter
  stale check, so ordinary weight mutations (an optimizer step, a
  checkpoint load) are picked up automatically on the next batch;
* *quiesced*: :meth:`ModelRegistry.refresh` pauses the model's batcher,
  waits for in-flight batches to finish, refreshes every stale op under the
  engine's lock, and resumes — guaranteeing no batch ever mixes old and new
  weights.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, UnknownModelError
from repro.infer.engine import InferenceEngine
from repro.nn.module import Module
from repro.serve.batcher import MicroBatcher
from repro.serve.config import BatcherConfig
from repro.serve.metrics import ServerMetrics
from repro.utils.logging import get_logger

__all__ = ["ServingModel", "ModelRegistry"]

logger = get_logger("serve.registry")


@dataclass
class ServingModel:
    """One registered model: engine + batcher + metrics, under one name."""

    name: str
    engine: InferenceEngine
    batcher: MicroBatcher
    metrics: ServerMetrics


class ModelRegistry:
    """Thread-safe name → :class:`ServingModel` map with lifecycle control.

    Args:
        batcher_config: Default :class:`BatcherConfig` applied to models
            registered without their own.
    """

    def __init__(self, batcher_config: "BatcherConfig | None" = None) -> None:
        self.batcher_config = batcher_config or BatcherConfig()
        self._models: "dict[str, ServingModel]" = {}
        self._lock = threading.Lock()
        self._started = False

    # -- registration ----------------------------------------------------------

    def register(
        self,
        name: str,
        model: "Module | None" = None,
        engine: "InferenceEngine | None" = None,
        config: "BatcherConfig | None" = None,
        metrics: "ServerMetrics | None" = None,
    ) -> ServingModel:
        """Compile and register a model under ``name``.

        Exactly one of ``model`` (compiled here with ``on_stale="refresh"``)
        or ``engine`` (pre-built, e.g. with a custom dtype) must be given.
        If the registry is already started, the new model starts serving
        immediately.
        """
        if (model is None) == (engine is None):
            raise ConfigurationError("register() needs exactly one of model= or engine=")
        if engine is None:
            engine = InferenceEngine(model, on_stale="refresh")
        batcher = MicroBatcher(
            engine, config=config or self.batcher_config, metrics=metrics, name=name
        )
        entry = ServingModel(name=name, engine=engine, batcher=batcher, metrics=batcher.metrics)
        with self._lock:
            if name in self._models:
                raise ConfigurationError(f"model {name!r} is already registered")
            self._models[name] = entry
            started = self._started
        if started:
            entry.batcher.start()
        logger.info("registered model %r (%d plan ops)", name, len(engine.plan))
        return entry

    def unregister(self, name: str, drain: bool = True) -> None:
        """Remove ``name``, stopping its batcher (draining by default)."""
        with self._lock:
            entry = self._models.pop(name, None)
        if entry is None:
            raise UnknownModelError(f"unknown model {name!r}")
        entry.batcher.stop(drain=drain)

    # -- lookup / routing ------------------------------------------------------

    def get(self, name: "str | None" = None) -> ServingModel:
        """Resolve ``name``; ``None`` resolves iff exactly one model is registered."""
        with self._lock:
            if name is None:
                if len(self._models) == 1:
                    return next(iter(self._models.values()))
                raise UnknownModelError(
                    f"request names no model and {len(self._models)} are registered; "
                    f"known models: {sorted(self._models)}"
                )
            entry = self._models.get(name)
        if entry is None:
            raise UnknownModelError(
                f"unknown model {name!r}; known models: {sorted(self.names())}"
            )
        return entry

    def names(self) -> "list[str]":
        with self._lock:
            return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def submit(
        self,
        image,
        model: "str | None" = None,
        deadline_s: "float | None" = None,
    ) -> "Future[np.ndarray]":
        """Route one image to ``model``'s batcher (see :meth:`MicroBatcher.submit`)."""
        return self.get(model).batcher.submit(image, deadline_s=deadline_s)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ModelRegistry":
        """Start every registered batcher; later registrations auto-start."""
        with self._lock:
            self._started = True
            entries = list(self._models.values())
        for entry in entries:
            entry.batcher.start()
        return self

    def stop(self, drain: bool = True, timeout: "float | None" = 10.0) -> None:
        """Stop every batcher, all bounded by **one** shared ``timeout``
        deadline (drain-then-stop by default) — one wedged model cannot
        stretch shutdown to models × timeout."""
        with self._lock:
            self._started = False
            entries = list(self._models.values())
        deadline = None if timeout is None else time.monotonic() + timeout
        for entry in entries:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            entry.batcher.stop(drain=drain, timeout=remaining)

    def refresh(self, name: "str | None" = None, timeout: "float | None" = 10.0) -> int:
        """Quiesced hot weight update; returns the number of plan ops rebuilt.

        Pauses the batcher (queued requests wait, none are dropped), lets
        in-flight batches finish, refreshes every stale op, and resumes.
        """
        entry = self.get(name)
        entry.batcher.pause()
        try:
            entry.batcher.join_inflight(timeout)
            rebuilt = entry.engine.refresh()
        finally:
            entry.batcher.resume()
        if rebuilt:
            logger.info(
                "model %r: refreshed %d plan op(s); traced programs recompile on next batch",
                entry.name,
                rebuilt,
            )
        return rebuilt

    def metrics_snapshot(self) -> dict:
        """``{model name: metrics snapshot}`` for every registered model.

        Each snapshot carries the engine's current plan summary under
        ``"plan"`` — kernel choices, k histogram, pruned-filter counts, and
        the traced-program block (fused-op counts, buffers eliminated,
        peak intermediate bytes, kernel/autotune cache hit counters) — so
        ``/metrics`` exposes both the sparsity state and the compilation
        state the model serves with (and reflects structural rebuilds and
        traced-program recompiles after a hot weight refresh).
        """
        with self._lock:
            entries = list(self._models.items())
        return {
            name: {**entry.metrics.snapshot(), "plan": entry.engine.plan_summary()}
            for name, entry in entries
        }
