"""Front router for one model's worker pool.

Owns the priority queues and the dispatcher thread.  A submit passes the
circuit breaker, then admission control (quota → queue bound → degradation
ladder), then lands in its priority-class deque; the dispatcher drains
``interactive`` before ``batch``, checks deadlines, picks the least-loaded
ready worker, and ships the request down that worker's pipe.  Completions
arrive via the supervisor's receiver threads
(:meth:`ClusterRouter.complete` / :meth:`ClusterRouter.fail`); worker
deaths re-enter through :meth:`ClusterRouter.requeue`, which puts surviving
requests back at the *front* of their queue so a crash never reorders a
request behind later arrivals.

Zero-drop invariant: every accepted request's future is resolved exactly
once — with logits, or with a typed error
(:class:`~repro.errors.DeadlineExceededError`,
:class:`~repro.errors.WorkerCrashedError` after the re-dispatch budget,
:class:`~repro.errors.ServerClosedError` on non-drain shutdown).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future

import numpy as np

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    QueueFullError,
    QuotaExceededError,
    ReproError,
    ServerClosedError,
    WorkerCrashedError,
)
from repro.serve.cluster.config import PRIORITIES, ClusterConfig
from repro.utils.logging import get_logger

_log = get_logger("serve.cluster.router")

__all__ = ["ClusterRouter"]


class _Request:
    """One accepted request travelling queue → worker → future."""

    __slots__ = (
        "req_id",
        "image",
        "future",
        "priority",
        "tenant",
        "deadline",
        "submitted_at",
        "attempts",
        "variant",
    )

    def __init__(self, req_id, image, priority, tenant, deadline, submitted_at):
        self.req_id = req_id
        self.image = image
        self.future: Future = Future()
        self.priority = priority
        self.tenant = tenant
        self.deadline = deadline
        self.submitted_at = submitted_at
        self.attempts = 0
        self.variant = None


class ClusterRouter:
    """Priority dispatch + completion plumbing for one worker pool.

    Args:
        name: Model name (log labelling).
        config: The pool's :class:`ClusterConfig`.
        supervisor: The pool's
            :class:`~repro.serve.cluster.supervisor.WorkerSupervisor`.
        admission: The model's
            :class:`~repro.serve.cluster.admission.AdmissionController`.
        breaker: The model's circuit breaker (gates every submit).
        metrics: The model's :class:`~repro.serve.metrics.ClusterMetrics`.
        variants: Plan variant names, primary first, cheapest last.
        clock: Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        name: str,
        config: ClusterConfig,
        supervisor,
        admission,
        breaker,
        metrics,
        variants: "tuple[str, ...]",
        clock=time.monotonic,
    ) -> None:
        self.name = name
        self.config = config
        self.supervisor = supervisor
        self.admission = admission
        self.breaker = breaker
        self.metrics = metrics
        self.variants = tuple(variants)
        self._clock = clock
        self._cond = threading.Condition()
        self._queues: "dict[str, deque]" = {p: deque() for p in PRIORITIES}
        self._ids = itertools.count()
        self._paused = False
        self._stopping = False
        self._dispatcher: "threading.Thread | None" = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        with self._cond:
            self._stopping = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name=f"cluster-dispatch-{self.name}", daemon=True
        )
        self._dispatcher.start()

    def stop(self) -> None:
        """Stop dispatching; cancel everything still queued."""
        with self._cond:
            self._stopping = True
            cancelled = [r for q in self._queues.values() for r in q]
            for q in self._queues.values():
                q.clear()
            self._cond.notify_all()
        for request in cancelled:
            self.metrics.record_cancelled()
            if not request.future.done():
                request.future.set_exception(
                    ServerClosedError("server stopped before the request was dispatched")
                )
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
            self._dispatcher = None

    # -- quiesce (hot refresh) -------------------------------------------------

    def pause(self) -> None:
        """Hold dispatch; queued requests wait, in-flight ones complete."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def join_inflight(self, timeout_s: "float | None" = None) -> bool:
        """Wait until no request is outstanding on any worker."""
        deadline = None if timeout_s is None else self._clock() + timeout_s
        with self._cond:
            while self.supervisor.total_inflight() > 0:
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(0.05 if remaining is None else min(0.05, remaining))
            return True

    def join_idle(self, timeout_s: "float | None" = None) -> bool:
        """Wait until queues are empty *and* nothing is in flight (drain)."""
        deadline = None if timeout_s is None else self._clock() + timeout_s
        with self._cond:
            while self.queue_depth > 0 or self.supervisor.total_inflight() > 0:
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(0.05 if remaining is None else min(0.05, remaining))
            return True

    # -- submit path -----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def submit(
        self,
        image: np.ndarray,
        deadline_s: "float | None" = None,
        priority: str = "interactive",
        tenant: "str | None" = None,
    ) -> Future:
        """Admit one request; returns a future resolving to its logits row.

        Raises:
            ServerClosedError: The router is stopping/stopped.
            CircuitOpenError: The model's breaker is open (carries
                ``retry_after_s``).
            QuotaExceededError: The tenant's token bucket is empty.
            QueueFullError: Shed at the queue bound or by the overload
                ladder.
        """
        self.metrics.record_offered()
        with self._cond:
            if self._stopping:
                raise ServerClosedError(f"cluster router for {self.name!r} is stopped")
        if not self.breaker.allow():
            self.metrics.record_shed()
            exc = CircuitOpenError(
                f"model {self.name!r} circuit breaker is open; "
                f"retry in {self.breaker.retry_after_s():.2f}s"
            )
            exc.retry_after_s = self.breaker.retry_after_s()
            raise exc
        try:
            self.admission.admit(priority, tenant, self.queue_depth, self.config.queue_depth)
        except (QuotaExceededError, QueueFullError):
            self.metrics.record_shed()
            raise
        now = self._clock()
        request = _Request(
            req_id=next(self._ids),
            image=np.asarray(image),
            priority=priority,
            tenant=tenant,
            deadline=None if deadline_s is None else now + deadline_s,
            submitted_at=now,
        )
        self.metrics.record_accepted()
        with self._cond:
            if self._stopping:
                raise ServerClosedError(f"cluster router for {self.name!r} is stopped")
            self._queues[priority].append(request)
            self._cond.notify_all()
        return request.future

    # -- dispatch --------------------------------------------------------------

    def _pop_next_locked(self) -> "_Request | None":
        for priority in PRIORITIES:
            if self._queues[priority]:
                return self._queues[priority].popleft()
        return None

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and (self._paused or self.queue_depth == 0):
                    self._cond.wait(0.1)
                if self._stopping:
                    return
                request = self._pop_next_locked()
            if request is None:
                continue
            if request.deadline is not None and self._clock() > request.deadline:
                self.metrics.record_expired()
                if not request.future.done():
                    request.future.set_exception(
                        DeadlineExceededError("request deadline expired before dispatch")
                    )
                continue
            worker = self.supervisor.pick_worker()
            if worker is None:
                # No capacity right now: park the request back at the front
                # and wait for a completion or a respawn to free a slot.
                with self._cond:
                    self._queues[request.priority].appendleft(request)
                    self._cond.wait(self.config.dispatch_wait_s)
                continue
            variant = self.admission.choose_variant(self.variants)
            request.variant = variant
            request.attempts += 1
            with worker.lock:
                worker.inflight[request.req_id] = request
            try:
                worker.send(("predict", request.req_id, variant, request.image[None]))
            except (BrokenPipeError, OSError):
                with worker.lock:
                    worker.inflight.pop(request.req_id, None)
                self.supervisor._note_down(worker, "pipe broken on dispatch")
                self.requeue([request])

    # -- completion paths (called from supervisor receiver threads) ------------

    def complete(self, request: _Request, logits) -> None:
        latency = self._clock() - request.submitted_at
        self.metrics.record_completed(latency, priority=request.priority)
        if not request.future.done():
            request.future.set_result(np.asarray(logits)[0])
        with self._cond:
            self._cond.notify_all()

    def fail(self, request: _Request, text: str) -> None:
        self.metrics.record_failed()
        if not request.future.done():
            request.future.set_exception(ReproError(f"worker predict failed: {text}"))
        with self._cond:
            self._cond.notify_all()

    def requeue(self, requests: "list[_Request]") -> None:
        """Re-queue a dead worker's in-flight requests (front of queue).

        Requests past the re-dispatch budget fail with
        :class:`WorkerCrashedError` instead of cycling forever against a
        crash loop.
        """
        exhausted = []
        with self._cond:
            for request in reversed(requests):
                if self._stopping:
                    exhausted.append((request, ServerClosedError("server stopped")))
                elif request.attempts > self.config.request_retries:
                    exhausted.append(
                        (
                            request,
                            WorkerCrashedError(
                                f"request lost to {request.attempts} worker crashes "
                                f"(re-dispatch budget {self.config.request_retries})"
                            ),
                        )
                    )
                else:
                    self.metrics.record_redispatch()
                    self._queues[request.priority].appendleft(request)
            self._cond.notify_all()
        for request, exc in exhausted:
            self.metrics.record_failed()
            if not request.future.done():
                request.future.set_exception(exc)
