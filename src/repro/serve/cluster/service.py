"""Cluster service: the registry-shaped front door to worker pools.

:class:`ClusterService` is a drop-in for
:class:`~repro.serve.registry.ModelRegistry` wherever the HTTP layer is
concerned (``register`` / ``get`` / ``submit`` / ``start`` / ``stop`` /
``refresh`` / ``metrics_snapshot``), but each registered model is served by
a supervised pool of worker *processes* instead of in-process threads:

* plans are published once into shared memory
  (:class:`~repro.serve.cluster.shm_store.ShmPlanStore`) and every worker
  attaches the same pages;
* a :class:`~repro.serve.cluster.supervisor.WorkerSupervisor` heartbeats,
  restarts, and reloads the pool behind a per-model circuit breaker;
* a :class:`~repro.serve.cluster.router.ClusterRouter` admits (priority
  classes, tenant quotas, degradation ladder) and dispatches least-loaded.

A model may register several plan *variants* (e.g. ``{"primary": engine,
"int8": cheap_engine}``, primary first, cheapest last); the overload ladder
downshifts to the last variant under sustained pressure.

Use with :class:`~repro.serve.http.ModelServer`::

    service = ClusterService(ClusterConfig(workers=4))
    service.register("net4", model)
    ModelServer(service, ServerConfig(port=8080)).serve_forever()
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np

from repro.errors import ConfigurationError, UnknownModelError
from repro.infer.engine import InferenceEngine
from repro.serve.cluster.admission import AdmissionController
from repro.serve.cluster.breaker import CircuitBreaker
from repro.serve.cluster.config import ClusterConfig
from repro.serve.cluster.router import ClusterRouter
from repro.serve.cluster.shm_store import ShmPlanStore
from repro.serve.cluster.supervisor import WorkerSupervisor
from repro.serve.metrics import ClusterMetrics
from repro.utils.logging import get_logger

_log = get_logger("serve.cluster.service")

__all__ = ["ClusterModel", "ClusterService"]


class ClusterModel:
    """One model's full cluster stack under one name.

    Duck-types :class:`~repro.serve.registry.ServingModel` where the HTTP
    layer cares: ``name``, ``batcher`` (the router — same ``submit``
    contract plus ``priority=``/``tenant=``), ``metrics``, ``engine``.
    """

    def __init__(self, name, engines, config, store, breaker, admission, supervisor, router, metrics):
        self.name = name
        self.engines = engines
        self.config = config
        self.store = store
        self.breaker = breaker
        self.admission = admission
        self.supervisor = supervisor
        self.router = router
        self.metrics = metrics

    @property
    def batcher(self) -> ClusterRouter:
        """The router, under the name the HTTP layer expects."""
        return self.router

    @property
    def engine(self) -> InferenceEngine:
        """The primary plan variant's engine."""
        return next(iter(self.engines.values()))

    def cluster_gauge(self) -> dict:
        """Live supervisor/breaker/admission state for ``/metrics``."""
        current = self.store.current
        return {
            "generation": 0 if current is None else current.generation,
            "variants": list(self.engines),
            "supervisor": self.supervisor.snapshot(),
            "breaker": self.breaker.snapshot(),
            "admission": self.admission.snapshot(),
        }


class ClusterService:
    """Name → :class:`ClusterModel` map with pool lifecycle control.

    Args:
        cluster_config: Default :class:`ClusterConfig` applied to models
            registered without their own.
    """

    def __init__(self, cluster_config: "ClusterConfig | None" = None) -> None:
        self.cluster_config = cluster_config or ClusterConfig()
        self._models: "dict[str, ClusterModel]" = {}
        self._lock = threading.Lock()
        self._started = False

    # -- registration ----------------------------------------------------------

    def register(
        self,
        name: str,
        model=None,
        engines: "dict[str, InferenceEngine] | InferenceEngine | None" = None,
        config: "ClusterConfig | None" = None,
    ) -> ClusterModel:
        """Register ``name``, publishing its plan(s) into shared memory.

        Exactly one of ``model`` (compiled here into a single ``primary``
        variant) or ``engines`` (a pre-built engine, or an ordered
        ``{variant: engine}`` dict — primary first, cheapest last) must be
        given.  If the service is already started the pool spins up now.
        """
        if (model is None) == (engines is None):
            raise ConfigurationError("register() needs exactly one of model= or engines=")
        if engines is None:
            engines = {"primary": InferenceEngine(model, on_stale="refresh")}
        elif isinstance(engines, InferenceEngine):
            engines = {"primary": engines}
        if not engines:
            raise ConfigurationError("engines must name at least one plan variant")
        config = config or self.cluster_config
        metrics = ClusterMetrics()
        store = ShmPlanStore(config.shm_min_bytes)
        breaker = CircuitBreaker(
            restart_budget=config.restart_budget,
            window_s=config.restart_budget_window_s,
            open_s=config.breaker_open_s,
            half_open_probes=config.breaker_half_open_probes,
        )
        admission = AdmissionController(config)
        supervisor = WorkerSupervisor(name, config, store, breaker, metrics)
        router = ClusterRouter(
            name, config, supervisor, admission, breaker, metrics, tuple(engines)
        )
        supervisor.bind(router)
        entry = ClusterModel(
            name, dict(engines), config, store, breaker, admission, supervisor, router, metrics
        )
        metrics.bind_cluster_gauge(entry.cluster_gauge)
        metrics.bind_depth_gauge(lambda: router.queue_depth)
        store.publish({variant: eng.plan.payload() for variant, eng in engines.items()})
        with self._lock:
            if name in self._models:
                store.close()
                raise ConfigurationError(f"model {name!r} is already registered")
            self._models[name] = entry
            started = self._started
        if started:
            self._start_entry(entry)
        _log.info(
            "registered cluster model %r (%d workers, variants %s)",
            name,
            config.workers,
            list(engines),
        )
        return entry

    def unregister(self, name: str, drain: bool = True, timeout: float = 10.0) -> None:
        """Remove ``name``, stopping its pool (draining by default)."""
        with self._lock:
            entry = self._models.pop(name, None)
        if entry is None:
            raise UnknownModelError(f"unknown model {name!r}")
        self._stop_entry(entry, drain=drain, deadline=time.monotonic() + timeout)

    # -- lookup / routing ------------------------------------------------------

    def get(self, name: "str | None" = None) -> ClusterModel:
        """Resolve ``name``; ``None`` resolves iff exactly one model is registered."""
        with self._lock:
            if name is None:
                if len(self._models) == 1:
                    return next(iter(self._models.values()))
                raise UnknownModelError(
                    f"request names no model and {len(self._models)} are registered; "
                    f"known models: {sorted(self._models)}"
                )
            entry = self._models.get(name)
        if entry is None:
            raise UnknownModelError(
                f"unknown model {name!r}; known models: {sorted(self.names())}"
            )
        return entry

    def names(self) -> "list[str]":
        with self._lock:
            return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def submit(
        self,
        image,
        model: "str | None" = None,
        deadline_s: "float | None" = None,
        priority: str = "interactive",
        tenant: "str | None" = None,
    ) -> "Future[np.ndarray]":
        """Route one image to ``model``'s pool (see :meth:`ClusterRouter.submit`)."""
        return self.get(model).router.submit(
            image, deadline_s=deadline_s, priority=priority, tenant=tenant
        )

    # -- lifecycle -------------------------------------------------------------

    def _start_entry(self, entry: ClusterModel) -> None:
        entry.supervisor.start()
        entry.router.start()

    def _stop_entry(self, entry: ClusterModel, drain: bool, deadline: float) -> None:
        if drain:
            entry.router.join_idle(max(0.0, deadline - time.monotonic()))
        entry.router.stop()
        entry.supervisor.stop(timeout_s=max(0.5, deadline - time.monotonic()))
        entry.store.close()

    def start(self) -> "ClusterService":
        """Spin up every registered pool; later registrations auto-start."""
        with self._lock:
            self._started = True
            entries = list(self._models.values())
        for entry in entries:
            self._start_entry(entry)
        return self

    def stop(self, drain: bool = True, timeout: "float | None" = 10.0) -> None:
        """Stop every pool, bounded by one shared ``timeout`` deadline."""
        with self._lock:
            self._started = False
            entries = list(self._models.values())
        deadline = time.monotonic() + (timeout if timeout is not None else 10.0)
        for entry in entries:
            self._stop_entry(entry, drain=drain, deadline=deadline)

    def refresh(self, name: "str | None" = None, timeout: "float | None" = 10.0) -> int:
        """Quiesced hot weight update across the whole pool; returns the
        number of plan ops rebuilt.

        Pauses dispatch (queued requests wait, none are dropped), drains
        in-flight work, refreshes every variant's engine, publishes the new
        generation, and reloads every worker before resuming — so no worker
        ever serves a mix of old and new weights.
        """
        entry = self.get(name)
        entry.router.pause()
        try:
            entry.router.join_inflight(timeout)
            rebuilt = sum(engine.refresh() for engine in entry.engines.values())
            payloads = {variant: eng.plan.payload() for variant, eng in entry.engines.items()}
            generation = entry.supervisor.refresh(payloads, timeout_s=timeout)
        finally:
            entry.router.resume()
        _log.info(
            "model %r: refreshed %d plan op(s), generation %d live on all workers",
            entry.name,
            rebuilt,
            generation,
        )
        return rebuilt

    def metrics_snapshot(self) -> dict:
        """``{model name: metrics snapshot}``, each carrying the cluster
        gauge block (workers, breaker, admission, generation) and the
        primary engine's plan summary."""
        with self._lock:
            entries = list(self._models.items())
        return {
            name: {**entry.metrics.snapshot(), "plan": entry.engine.plan_summary()}
            for name, entry in entries
        }
