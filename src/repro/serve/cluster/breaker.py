"""Per-model circuit breaker over the worker-pool restart budget.

The breaker protects the rest of the service from a model whose workers
die faster than they can be restarted (poisoned weights, a corrupt
shared-memory segment, an OOM loop):

* **closed** — normal serving; worker deaths are recorded into a sliding
  restart window.
* **open** — the restart budget was exhausted; submits are rejected
  immediately with :class:`~repro.errors.CircuitOpenError` and the
  supervisor stops burning restarts.
* **half-open** — after ``open_s`` the supervisor brings up a single probe
  worker and the router lets a bounded number of probe requests through;
  ``half_open_probes`` successes close the breaker (full pool restored),
  any failure re-opens it.

All transitions are clock-driven and the clock is injectable, so the chaos
suite can walk the whole lifecycle deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Restart-budget circuit breaker (see module docstring).

    Args:
        restart_budget: Worker deaths tolerated within ``window_s`` while
            closed; the death that exceeds it trips the breaker.
        window_s: Sliding window for the restart budget.
        open_s: Time the breaker stays open before half-open probing.
        half_open_probes: Probe successes required to close again.
        clock: Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        restart_budget: int = 5,
        window_s: float = 30.0,
        open_s: float = 1.0,
        half_open_probes: int = 1,
        clock=time.monotonic,
    ) -> None:
        self.restart_budget = restart_budget
        self.window_s = window_s
        self.open_s = open_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._restarts: "deque[float]" = deque()
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_successes = 0
        self.trips = 0
        self.rejections = 0

    # -- state ----------------------------------------------------------------

    def _advance_locked(self) -> str:
        if self._state == OPEN and self._clock() - self._opened_at >= self.open_s:
            self._state = HALF_OPEN
            self._probe_successes = 0
        return self._state

    @property
    def state(self) -> str:
        """Current state, advancing ``open`` → ``half_open`` on schedule."""
        with self._lock:
            return self._advance_locked()

    def allow(self) -> bool:
        """Whether a new request may be admitted right now.

        Closed and half-open admit (half-open requests are the probes);
        open rejects and counts the rejection.
        """
        with self._lock:
            if self._advance_locked() == OPEN:
                self.rejections += 1
                return False
            return True

    def retry_after_s(self) -> float:
        """Seconds until the breaker will probe again (0 when not open)."""
        with self._lock:
            if self._advance_locked() != OPEN:
                return 0.0
            return max(0.0, self.open_s - (self._clock() - self._opened_at))

    # -- events ---------------------------------------------------------------

    def record_restart(self) -> bool:
        """Record one worker death; returns True when this death trips the
        breaker (restart budget exceeded within the window).

        While half-open, any worker death is a failed probe and re-opens
        immediately.  While already open it is a no-op.
        """
        now = self._clock()
        with self._lock:
            state = self._advance_locked()
            if state == OPEN:
                return False
            if state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = now
                self.trips += 1
                return True
            self._restarts.append(now)
            while self._restarts and now - self._restarts[0] > self.window_s:
                self._restarts.popleft()
            if len(self._restarts) > self.restart_budget:
                self._state = OPEN
                self._opened_at = now
                self.trips += 1
                return True
            return False

    def record_result(self, success: bool) -> None:
        """Feed a request outcome to the breaker; only half-open cares.

        ``half_open_probes`` successes close the breaker and clear the
        restart window; any failure re-opens it for another ``open_s``.
        """
        with self._lock:
            if self._advance_locked() != HALF_OPEN:
                return
            if success:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._state = CLOSED
                    self._restarts.clear()
            else:
                self._state = OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def restarts_in_window(self) -> int:
        """Worker deaths currently inside the sliding window."""
        now = self._clock()
        with self._lock:
            while self._restarts and now - self._restarts[0] > self.window_s:
                self._restarts.popleft()
            return len(self._restarts)

    def snapshot(self) -> dict:
        """JSON-ready gauge block for ``/metrics``."""
        return {
            "state": self.state,
            "trips": self.trips,
            "rejections": self.rejections,
            "restarts_in_window": self.restarts_in_window(),
            "restart_budget": self.restart_budget,
            "retry_after_s": self.retry_after_s(),
        }
