"""Generational shared-memory store for one model's compiled plans.

The supervisor publishes each plan variant's
:meth:`~repro.infer.plan.ExecutionPlan.payload` exactly once per *generation*
into shared memory (via :mod:`repro.utils.shm`); every worker process then
attaches the same pages instead of receiving its own pickled copy.  A hot
weight refresh publishes a new generation, ships the new handles to the
workers, awaits their acks, and only then retires the old generation — so a
worker is never left holding views over unlinked pages.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ClusterError
from repro.utils.logging import get_logger
from repro.utils.shm import ShmHandle, publish_object

_log = get_logger("serve.cluster.shm")

__all__ = ["PlanGeneration", "ShmPlanStore"]


@dataclass(frozen=True)
class PlanGeneration:
    """One immutable published set of plan variants.

    ``handles`` (variant name → :class:`~repro.utils.shm.ShmHandle`) is what
    travels to workers; ``segments`` are the owning
    :class:`~multiprocessing.shared_memory.SharedMemory` objects kept alive
    by the store until :meth:`ShmPlanStore.retire`.
    """

    generation: int
    handles: dict
    segments: tuple


class ShmPlanStore:
    """Owns the shared-memory lifetime of a model's plan generations.

    Args:
        min_bytes: Hoisting threshold forwarded to
            :func:`~repro.utils.shm.publish_object`.
    """

    def __init__(self, min_bytes: int = 1024) -> None:
        self.min_bytes = min_bytes
        self._lock = threading.Lock()
        self._generation = 0
        self._current: "PlanGeneration | None" = None
        self._retired: "list[PlanGeneration]" = []
        self._closed = False

    @property
    def current(self) -> "PlanGeneration | None":
        """The latest published generation (``None`` before first publish)."""
        with self._lock:
            return self._current

    def publish(self, payloads: "dict[str, dict]") -> PlanGeneration:
        """Publish a new generation from ``{variant: plan.payload()}``.

        The previous generation (if any) stays alive — workers may still be
        serving from it — until the caller confirms every worker has acked
        the new one and calls :meth:`retire`.
        """
        with self._lock:
            if self._closed:
                raise ClusterError("plan store is closed")
            if not payloads:
                raise ClusterError("cannot publish an empty plan generation")
            self._generation += 1
            generation = self._generation
            handles: "dict[str, ShmHandle]" = {}
            segments = []
            for variant, payload in payloads.items():
                handle, segment = publish_object(
                    payload, min_bytes=self.min_bytes, name_prefix=f"repro-plan-g{generation}"
                )
                handles[variant] = handle
                segments.append(segment)
            previous = self._current
            self._current = PlanGeneration(
                generation=generation, handles=handles, segments=tuple(segments)
            )
            if previous is not None:
                self._retired.append(previous)
            _log.debug(
                "published plan generation %d (%d variants, %d bytes)",
                generation,
                len(handles),
                sum(h.total_bytes for h in handles.values()),
            )
            return self._current

    def retire(self, upto_generation: int) -> None:
        """Unlink every superseded generation ``<= upto_generation``.

        Safe to call once all workers have acked a newer generation; until
        then superseded segments are merely queued here.
        """
        with self._lock:
            keep = []
            for gen in self._retired:
                if gen.generation <= upto_generation:
                    _unlink(gen)
                else:
                    keep.append(gen)
            self._retired = keep

    def close(self) -> None:
        """Unlink everything, current generation included (shutdown path)."""
        with self._lock:
            self._closed = True
            for gen in self._retired:
                _unlink(gen)
            self._retired = []
            if self._current is not None:
                _unlink(self._current)
                self._current = None


def _unlink(gen: PlanGeneration) -> None:
    for segment in gen.segments:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a live local view pins the buffer
            pass
