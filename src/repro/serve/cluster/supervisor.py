"""Worker-pool supervisor: spawn, heartbeat, restart, reload.

One :class:`WorkerSupervisor` owns a model's pool of worker *processes*
(entry point :func:`~repro.serve.cluster.worker.worker_main`).  It:

* spawns workers with the current shared-memory plan generation and waits
  for each to attach, verify, and report ready;
* heartbeats every worker (``ping``/``pong``) and declares one *wedged*
  when its last pong is older than ``heartbeat_timeout_s`` — wedged workers
  are killed, crashed workers are detected by pipe EOF / process exit, and
  both paths converge on :meth:`_note_down`;
* on a death: re-queues the worker's in-flight requests with the router
  (zero accepted requests are dropped), records the death against the
  model's :class:`~repro.serve.cluster.breaker.CircuitBreaker`, and
  schedules a replacement with exponential backoff — unless the breaker is
  open, in which case the pool stays down until the half-open window admits
  a single probe worker;
* ships hot weight refreshes: a new plan generation is published first (so
  any restart during the refresh already comes up on it), then every alive
  worker reloads and acks before the old generation is retired.

Threading model: one receiver thread per worker (the only reader of that
worker's pipe), one monitor thread for heartbeats and pool maintenance.
Writes to a worker pipe are serialized by a per-worker send lock.  Lock
order is always ``supervisor lock → router condition``; supervisor methods
are never called while holding the router condition.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time

from repro.errors import ClusterError
from repro.serve.cluster.breaker import CLOSED, HALF_OPEN, OPEN
from repro.serve.cluster.config import ClusterConfig
from repro.serve.cluster.shm_store import ShmPlanStore
from repro.serve.cluster.worker import worker_main
from repro.utils.logging import get_logger

_log = get_logger("serve.cluster.supervisor")

__all__ = ["WorkerHandle", "WorkerSupervisor"]


class WorkerHandle:
    """Supervisor-side state for one pool slot's current process."""

    def __init__(self, slot: int, process, conn, spawned_at: float) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn
        self.spawned_at = spawned_at
        self.alive = True
        self.ready = False
        self.fatal: "str | None" = None
        self.pid: "int | None" = None
        self.last_pong = spawned_at
        self.served = 0
        self.up_event = threading.Event()
        self.lock = threading.Lock()  # guards inflight
        self.inflight: dict = {}
        self._send_lock = threading.Lock()

    def send(self, msg: tuple) -> None:
        """Serialized write to the worker pipe (senders span threads)."""
        with self._send_lock:
            self.conn.send(msg)

    def inflight_count(self) -> int:
        with self.lock:
            return len(self.inflight)


class WorkerSupervisor:
    """Supervises one model's worker pool (see module docstring).

    Args:
        name: Model name (log/metrics labelling).
        config: The pool's :class:`ClusterConfig`.
        store: The model's :class:`ShmPlanStore`; its current generation is
            what freshly spawned workers attach.
        breaker: The model's circuit breaker; fed worker deaths and (via
            the receiver threads) probe outcomes.
        metrics: The model's :class:`~repro.serve.metrics.ClusterMetrics`.
        clock: Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        name: str,
        config: ClusterConfig,
        store: ShmPlanStore,
        breaker,
        metrics,
        clock=time.monotonic,
    ) -> None:
        self.name = name
        self.config = config
        self.store = store
        self.breaker = breaker
        self.metrics = metrics
        self.router = None  # bound via bind() before start()
        self._clock = clock
        self._mp = multiprocessing.get_context(config.start_method)
        self._lock = threading.Lock()
        self._workers: "dict[int, WorkerHandle]" = {}
        self._next_spawn_at: "dict[int, float]" = {}
        self._epoch = itertools.count()
        self._stop_event = threading.Event()
        self._monitor: "threading.Thread | None" = None
        self._reload_cond = threading.Condition()
        self._pending_acks: set = set()

    def bind(self, router) -> None:
        """Wire the router that receives completions and re-queues."""
        self.router = router

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Spawn the full pool and wait for every worker to report ready."""
        if self.router is None:
            raise ClusterError("supervisor.bind(router) must be called before start()")
        if self.store.current is None:
            raise ClusterError("no plan generation published; publish before start()")
        self._stop_event.clear()
        handles = [self._spawn(slot) for slot in range(self.config.workers)]
        deadline = self._clock() + self.config.spawn_timeout_s
        for handle in handles:
            handle.up_event.wait(max(0.0, deadline - self._clock()))
            if handle.fatal is not None or not handle.ready:
                reason = handle.fatal or "did not report ready in time"
                self.stop()
                raise ClusterError(f"worker slot {handle.slot} failed to start: {reason}")
        self._monitor = threading.Thread(
            target=self._monitor_loop, name=f"cluster-monitor-{self.name}", daemon=True
        )
        self._monitor.start()

    def stop(self, timeout_s: float = 5.0) -> None:
        """Stop the monitor and every worker (graceful, then SIGKILL)."""
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=timeout_s)
            self._monitor = None
        with self._lock:
            handles = list(self._workers.values())
        for handle in handles:
            if handle.alive:
                try:
                    handle.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        deadline = self._clock() + timeout_s
        for handle in handles:
            handle.process.join(timeout=max(0.05, deadline - self._clock()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass

    # -- spawning --------------------------------------------------------------

    def _spawn(self, slot: int) -> WorkerHandle:
        generation = self.store.current
        directives = []
        for fault in self.config.chaos:
            directive = fault.arm(slot)
            if directive is not None:
                directives.append(directive)
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=worker_main,
            args=(slot, child_conn, generation.handles, tuple(directives), self.config.service_delay_s),
            name=f"repro-worker-{self.name}-{slot}-e{next(self._epoch)}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = WorkerHandle(slot, process, parent_conn, self._clock())
        with self._lock:
            self._workers[slot] = handle
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(handle,),
            name=f"cluster-recv-{self.name}-{slot}",
            daemon=True,
        )
        receiver.start()
        _log.debug("spawned worker %s slot=%d pid=%s", self.name, slot, process.pid)
        return handle

    def pick_worker(self) -> "WorkerHandle | None":
        """Least-loaded ready worker with spare in-flight capacity."""
        with self._lock:
            handles = [h for h in self._workers.values() if h.alive and h.ready]
        best, best_load = None, None
        for handle in handles:
            load = handle.inflight_count()
            if load >= self.config.max_inflight_per_worker:
                continue
            if best_load is None or load < best_load:
                best, best_load = handle, load
        return best

    def alive_workers(self) -> "list[WorkerHandle]":
        with self._lock:
            return [h for h in self._workers.values() if h.alive]

    def total_inflight(self) -> int:
        with self._lock:
            handles = list(self._workers.values())
        return sum(h.inflight_count() for h in handles if h.alive)

    # -- receive path ----------------------------------------------------------

    def _receive_loop(self, handle: WorkerHandle) -> None:
        while True:
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "ready":
                handle.pid = msg[1]
                handle.ready = True
                handle.last_pong = self._clock()
                handle.up_event.set()
            elif kind == "pong":
                handle.last_pong = self._clock()
                handle.served = msg[2]
            elif kind == "ok":
                _, req_id, variant, logits = msg
                with handle.lock:
                    request = handle.inflight.pop(req_id, None)
                if request is not None:
                    self.router.complete(request, logits)
                self.breaker.record_result(True)
            elif kind == "error":
                _, req_id, text = msg
                request = None
                if req_id is not None:
                    with handle.lock:
                        request = handle.inflight.pop(req_id, None)
                if request is not None:
                    self.router.fail(request, text)
                self.breaker.record_result(False)
            elif kind == "reloaded":
                with self._reload_cond:
                    self._pending_acks.discard(handle.slot)
                    self._reload_cond.notify_all()
            elif kind == "fatal":
                handle.fatal = msg[1]
                handle.up_event.set()
                _log.error("worker %s slot=%d fatal: %s", self.name, handle.slot, msg[1])
        self._note_down(handle, "pipe closed")

    # -- death and restart -----------------------------------------------------

    def _note_down(self, handle: WorkerHandle, reason: str) -> None:
        """Converge every death path; idempotent per handle."""
        with self._lock:
            if not handle.alive:
                return
            handle.alive = False
        handle.up_event.set()
        if handle.process.is_alive():
            handle.process.kill()
        try:
            handle.conn.close()
        except OSError:
            pass
        with handle.lock:
            pending = list(handle.inflight.values())
            handle.inflight.clear()
        with self._reload_cond:
            self._pending_acks.discard(handle.slot)
            self._reload_cond.notify_all()
        self.metrics.record_death()
        if not self._stop_event.is_set():
            tripped = self.breaker.record_restart()
            restarts = self.breaker.restarts_in_window()
            backoff = min(
                self.config.restart_backoff_base_s * (2 ** max(0, restarts - 1)),
                self.config.restart_backoff_max_s,
            )
            with self._lock:
                self._next_spawn_at[handle.slot] = self._clock() + backoff
            if tripped:
                _log.error(
                    "worker %s slot=%d down (%s); restart budget exhausted — breaker OPEN",
                    self.name,
                    handle.slot,
                    reason,
                )
            else:
                _log.warning(
                    "worker %s slot=%d down (%s); %d in-flight re-queued, restart in %.3fs",
                    self.name,
                    handle.slot,
                    reason,
                    len(pending),
                    backoff,
                )
        if pending and self.router is not None:
            self.router.requeue(pending)

    def _monitor_loop(self) -> None:
        interval = self.config.heartbeat_interval_s
        while not self._stop_event.wait(interval):
            now = self._clock()
            with self._lock:
                handles = list(self._workers.values())
            for handle in handles:
                if not handle.alive:
                    continue
                if not handle.process.is_alive():
                    self._note_down(handle, f"exited (code {handle.process.exitcode})")
                    continue
                if not handle.ready:
                    if now - handle.spawned_at > self.config.spawn_timeout_s:
                        self._note_down(handle, "spawn timeout")
                    continue
                if now - handle.last_pong > self.config.heartbeat_timeout_s:
                    self._note_down(handle, "wedged (heartbeat timeout)")
                    continue
                try:
                    handle.send(("ping", now))
                except (BrokenPipeError, OSError):
                    self._note_down(handle, "pipe broken")
            self._maintain_pool(now)

    def _maintain_pool(self, now: float) -> None:
        state = self.breaker.state
        if state == OPEN:
            return
        target = 1 if state == HALF_OPEN else self.config.workers
        with self._lock:
            alive = sum(1 for h in self._workers.values() if h.alive)
            spawnable = []
            for slot in range(self.config.workers):
                current = self._workers.get(slot)
                if current is not None and current.alive:
                    continue
                if self._next_spawn_at.get(slot, 0.0) <= now:
                    spawnable.append(slot)
        for slot in spawnable:
            if alive >= target:
                break
            self._spawn(slot)
            alive += 1
            self.metrics.record_restart()
            if state == HALF_OPEN:
                _log.info("worker %s slot=%d respawned as half-open probe", self.name, slot)

    # -- hot refresh -----------------------------------------------------------

    def refresh(self, payloads: "dict[str, dict]", timeout_s: "float | None" = None) -> int:
        """Publish a new plan generation and reload every alive worker.

        Call with the router quiesced (paused + drained) for an atomic
        switch: the new generation is published *before* any reload is
        sent, so a worker restarting mid-refresh also comes up on it.
        Returns the new generation number once every alive worker acked.

        Raises:
            ClusterError: A worker failed to ack within ``timeout_s``.
        """
        timeout_s = self.config.spawn_timeout_s if timeout_s is None else timeout_s
        generation = self.store.publish(payloads)
        targets = self.alive_workers()
        with self._reload_cond:
            self._pending_acks = {h.slot for h in targets}
        for handle in targets:
            try:
                handle.send(("reload", generation.generation, generation.handles))
            except (BrokenPipeError, OSError):
                self._note_down(handle, "pipe broken during reload")
        deadline = self._clock() + timeout_s
        with self._reload_cond:
            while self._pending_acks:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    stragglers = sorted(self._pending_acks)
                    raise ClusterError(
                        f"plan reload generation {generation.generation} not acked by "
                        f"worker slots {stragglers} within {timeout_s:g}s"
                    )
                self._reload_cond.wait(remaining)
        self.store.retire(generation.generation - 1)
        return generation.generation

    # -- introspection ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready per-worker gauge block for ``/metrics``."""
        with self._lock:
            handles = sorted(self._workers.values(), key=lambda h: h.slot)
        now = self._clock()
        return {
            "workers": [
                {
                    "slot": h.slot,
                    "pid": h.pid,
                    "alive": h.alive,
                    "ready": h.ready,
                    "inflight": h.inflight_count(),
                    "served": h.served,
                    "last_pong_age_s": round(now - h.last_pong, 4) if h.ready else None,
                }
                for h in handles
            ],
            "alive": sum(1 for h in handles if h.alive),
            "configured": self.config.workers,
        }
