"""Admission control: priority classes, tenant quotas, degradation ladder.

Every submit passes through one :class:`AdmissionController` before it may
enter the dispatch queue.  Three gates, in order:

1. **Tenant quota** — a per-tenant token bucket (rate + burst).  An empty
   bucket rejects with :class:`~repro.errors.QuotaExceededError` (HTTP 429)
   regardless of load: quotas are isolation, not overload control.
2. **Queue bound** — beyond ``queue_depth`` every class is shed with
   :class:`~repro.errors.QueueFullError` (HTTP 503).
3. **Degradation ladder** — sustained overload (queue fill above
   ``overload_enter_fraction`` for ``overload_dwell_s``) escalates through
   graceful steps *before* the hard bound is hit:

   * level 1 — shed ``batch`` traffic, keep ``interactive`` flowing;
   * level 2 — additionally downshift served requests to the cheapest
     registered plan variant (e.g. the sparsified or int8 plan);
   * the queue bound itself is the final reject.

   Hysteresis (``overload_exit_fraction``) plus the dwell requirement keep
   the ladder from flapping on bursts.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ConfigurationError, QueueFullError, QuotaExceededError
from repro.serve.cluster.config import PRIORITIES, ClusterConfig

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill up to ``burst``.

    ``try_take`` is thread-safe and never blocks — admission control sheds,
    it does not queue on quota.
    """

    def __init__(self, rate: float, burst: int, clock=time.monotonic) -> None:
        if rate <= 0 or burst < 1:
            raise ConfigurationError(f"need rate > 0 and burst >= 1, got {rate}/{burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def try_take(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; returns False (no debt) otherwise."""
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._refilled_at) * self.rate)
            self._refilled_at = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            now = self._clock()
            return min(self.burst, self._tokens + (now - self._refilled_at) * self.rate)


class AdmissionController:
    """Gatekeeper + overload ladder for one model (see module docstring).

    Args:
        config: The model's :class:`ClusterConfig` (quota/overload knobs).
        clock: Monotonic time source (injectable for deterministic tests).
    """

    def __init__(self, config: ClusterConfig, clock=time.monotonic) -> None:
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: "dict[str, TokenBucket]" = {}
        self._overloaded_since: "float | None" = None
        self.quota_rejected = 0
        self.shed_by_priority = {p: 0 for p in PRIORITIES}
        self.downshifted = 0

    # -- overload ladder -------------------------------------------------------

    def observe(self, queue_depth: int, capacity: int) -> int:
        """Update the overload clock from the current queue fill; returns
        the ladder level (0 normal, 1 shed batch, 2 downshift)."""
        fraction = queue_depth / max(1, capacity)
        now = self._clock()
        with self._lock:
            if fraction >= self.config.overload_enter_fraction:
                if self._overloaded_since is None:
                    self._overloaded_since = now
            elif fraction <= self.config.overload_exit_fraction:
                self._overloaded_since = None
            return self._level_locked(now)

    def _level_locked(self, now: float) -> int:
        if self._overloaded_since is None:
            return 0
        sustained = now - self._overloaded_since
        if sustained >= 2 * self.config.overload_dwell_s:
            return 2
        if sustained >= self.config.overload_dwell_s:
            return 1
        return 0

    def level(self) -> int:
        """Current degradation-ladder level without touching the clock state."""
        with self._lock:
            return self._level_locked(self._clock())

    # -- admission -------------------------------------------------------------

    def admit(self, priority: str, tenant: "str | None", queue_depth: int, capacity: int) -> None:
        """Admit or shed one request (raises; returns None on admit).

        Raises:
            ConfigurationError: Unknown priority class.
            QuotaExceededError: The tenant's token bucket is empty.
            QueueFullError: Queue at capacity, or the overload ladder is
                shedding this priority class.
        """
        if priority not in PRIORITIES:
            raise ConfigurationError(
                f"unknown priority {priority!r}; use one of {PRIORITIES}"
            )
        if tenant is not None and self.config.tenant_rate is not None:
            with self._lock:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = self._buckets[tenant] = TokenBucket(
                        self.config.tenant_rate, self.config.tenant_burst, self._clock
                    )
            if not bucket.try_take():
                with self._lock:
                    self.quota_rejected += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} exceeded its quota "
                    f"({self.config.tenant_rate:g} req/s, burst {self.config.tenant_burst})"
                )
        level = self.observe(queue_depth, capacity)
        if queue_depth >= capacity:
            with self._lock:
                self.shed_by_priority[priority] += 1
            raise QueueFullError(f"queue depth {capacity} exceeded; {priority} request shed")
        if level >= 1 and priority == "batch":
            with self._lock:
                self.shed_by_priority[priority] += 1
            raise QueueFullError(
                "sustained overload: shedding batch traffic (degradation level "
                f"{level}); retry later or use priority='interactive'"
            )

    def choose_variant(self, variants: "tuple[str, ...]") -> str:
        """The plan variant to serve right now: the primary (first) variant
        normally, the cheapest (last) once the ladder reaches level 2."""
        if len(variants) > 1 and self.level() >= 2:
            with self._lock:
                self.downshifted += 1
            return variants[-1]
        return variants[0]

    def snapshot(self) -> dict:
        """JSON-ready admission block for ``/metrics``."""
        with self._lock:
            return {
                "level": self._level_locked(self._clock()),
                "quota_rejected": self.quota_rejected,
                "shed_by_priority": dict(self.shed_by_priority),
                "downshifted": self.downshifted,
                "tenants_tracked": len(self._buckets),
            }
