"""Worker process entry point for the supervised serving cluster.

Each worker attaches the model's shared-memory plan generation (checksum
verified), builds a private :class:`~repro.infer.plan.ExecutionContext` per
plan variant, and then serves a simple serial message loop over its pipe to
the supervisor:

========================  ============================================
parent → worker           worker → parent
========================  ============================================
``("predict", id, v, x)``  ``("ok", id, v, logits)`` / ``("error", id, msg)``
``("ping", token)``        ``("pong", token, served)``
``("reload", gen, hs)``    ``("reloaded", gen)``
``("stop",)``              *(exits)*
========================  ============================================

A worker that cannot attach or verify its plan segment sends
``("fatal", reason)`` and exits — the supervisor counts that against the
restart budget rather than retrying forever against a poisoned segment.

Chaos directives (armed by the fault injectors in
:mod:`repro.testing.faults`) are plain dicts checked at each predict, so
crash/hang schedules survive the trip through ``fork``/``spawn`` and fire
deterministically.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

from repro.infer.plan import ExecutionContext, execute_ops
from repro.utils.shm import load_object

__all__ = ["worker_main"]


class _Program:
    """One plan variant bound to this worker's private scratch context."""

    def __init__(self, payload: dict) -> None:
        self.ops = payload["ops"]
        self.out_slot = payload["out_slot"]
        self.dtype = payload["dtype"]
        self.intq = payload["intq"]
        self.ctx = ExecutionContext()

    def run(self, images: np.ndarray) -> np.ndarray:
        if self.intq is not None:
            return self.intq.run(np.asarray(images), self.ctx)
        return execute_ops(self.ops, images, self.ctx, self.out_slot, self.dtype)


def _load_programs(handles: dict) -> "tuple[dict, list]":
    programs, segments = {}, []
    for variant, handle in handles.items():
        payload, segment = load_object(handle)
        programs[variant] = _Program(payload)
        segments.append(segment)
    return programs, segments


def _exit_fatal(conn, reason: str) -> None:
    try:
        conn.send(("fatal", reason))
        conn.close()
    except (BrokenPipeError, OSError):  # pragma: no cover - parent already gone
        pass
    os._exit(1)


def worker_main(
    slot: int,
    conn,
    handles: dict,
    chaos: tuple = (),
    service_delay_s: float = 0.0,
) -> None:
    """Run one worker's serve loop until ``stop`` or parent disappearance.

    Args:
        slot: Stable pool-slot index (workers are addressed by slot; the
            process behind a slot changes across restarts).
        conn: This worker's end of the supervisor pipe.
        handles: ``{variant: ShmHandle}`` for the current plan generation.
        chaos: Armed chaos directives (dicts) for deterministic fault drills.
        service_delay_s: Artificial per-request service time (accelerator
            offload model; see :class:`~repro.serve.cluster.config.ClusterConfig`).
    """
    # The supervisor owns shutdown via the pipe; a terminal ^C must not kill
    # workers before the server has drained.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        programs, segments = _load_programs(handles)
    except Exception as exc:
        _exit_fatal(conn, f"{type(exc).__name__}: {exc}")
        return  # pragma: no cover - _exit_fatal does not return
    conn.send(("ready", os.getpid()))
    served = 0
    directives = [dict(d) for d in chaos]
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            os._exit(0)
        kind = msg[0]
        if kind == "stop":
            try:
                conn.close()
            finally:
                os._exit(0)
        elif kind == "ping":
            conn.send(("pong", msg[1], served))
        elif kind == "reload":
            _, generation, new_handles = msg
            try:
                programs, new_segments = _load_programs(new_handles)
            except Exception as exc:
                _exit_fatal(conn, f"{type(exc).__name__}: {exc}")
                return  # pragma: no cover
            for segment in segments:
                try:
                    segment.close()
                except BufferError:  # pragma: no cover - stray view pins buffer
                    pass
            segments = new_segments
            conn.send(("reloaded", generation))
        elif kind == "predict":
            _, req_id, variant, images = msg
            served += 1
            for directive in directives:
                if directive.get("_fired") or served < int(directive.get("on_request", 1)):
                    continue
                directive["_fired"] = True
                if directive["kind"] == "crash":
                    os._exit(int(directive.get("exit_code", 9)))
                elif directive["kind"] == "hang":
                    time.sleep(float(directive.get("hang_s", 3600.0)))
            try:
                program = programs[variant]
                if service_delay_s > 0:
                    time.sleep(service_delay_s)
                out = np.array(program.run(np.asarray(images)), copy=True)
            except Exception as exc:
                conn.send(("error", req_id, f"{type(exc).__name__}: {exc}"))
            else:
                conn.send(("ok", req_id, variant, out))
        else:
            conn.send(("error", None, f"unknown message kind {kind!r}"))
