"""Configuration for the supervised multi-process serving tier."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["ClusterConfig", "PRIORITIES", "START_METHODS"]

#: Priority classes in dispatch order: ``interactive`` requests always
#: dequeue before ``batch`` requests and are shed last under overload.
PRIORITIES = ("interactive", "batch")

START_METHODS = ("fork", "spawn")


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for one model's worker pool, router and admission control.

    Args:
        workers: Worker *processes* in the pool.  Each owns a private
            :class:`~repro.infer.plan.ExecutionContext` against the
            shared-memory plan, so a segfault or OOM in one cannot take the
            others down.
        start_method: ``"fork"`` (fast, default where available) or
            ``"spawn"`` (slower, maximally isolated) for worker processes.
        queue_depth: High-water mark of the per-model dispatch queue across
            both priority classes; arrivals beyond it are shed with
            :class:`~repro.errors.QueueFullError`.
        max_inflight_per_worker: Requests allowed outstanding on one worker
            pipe; the router's least-loaded dispatch picks the alive worker
            with the fewest.
        request_retries: Re-dispatch budget per accepted request: how many
            worker crashes/hangs one request may survive (on a different
            worker each time) before failing with
            :class:`~repro.errors.WorkerCrashedError`.
        dispatch_wait_s: How long the dispatcher waits for a dispatchable
            worker before re-checking request deadlines.
        spawn_timeout_s: Upper bound for one worker to come up and report
            ready (includes shared-memory attach + checksum verification).
        heartbeat_interval_s: Supervisor ping period per worker.
        heartbeat_timeout_s: A worker whose last pong is older than this is
            declared *wedged*, killed, and restarted; its in-flight requests
            are re-dispatched.  Must exceed the slowest legitimate
            per-request compute time.
        restart_backoff_base_s: First restart delay; doubles per restart
            within the budget window.
        restart_backoff_max_s: Restart delay ceiling.
        restart_budget: Worker deaths tolerated within
            ``restart_budget_window_s`` before the model's circuit breaker
            trips open.
        restart_budget_window_s: Sliding window for the restart budget.
        breaker_open_s: How long the breaker stays open before allowing a
            half-open probe.
        breaker_half_open_probes: Successful probe requests required to
            close a half-open breaker.
        tenant_rate: Per-tenant token-bucket refill rate (requests/second);
            ``None`` disables tenant quotas.
        tenant_burst: Token-bucket capacity (burst allowance) per tenant.
        overload_enter_fraction: Queue-fill fraction at which the overload
            clock starts.
        overload_exit_fraction: Queue-fill fraction below which the
            overload clock resets (hysteresis).
        overload_dwell_s: Sustained overload required per degradation step:
            after one dwell the ladder sheds ``batch`` traffic, after two it
            additionally downshifts to the cheapest registered plan variant.
        service_delay_s: Artificial per-request service time added inside
            each worker, modeling the accelerator-offload latency of a
            deployed FLightNN (host workers orchestrate, the accelerator
            computes).  Benchmarks use it to study worker-count scaling on
            hosts with fewer cores than workers; ``0`` (default) disables.
        shm_min_bytes: Arrays at or above this size are hoisted into the
            shared-memory segment instead of the pickle skeleton.
        chaos: Fault injectors
            (:class:`~repro.testing.faults.WorkerCrashFault`,
            :class:`~repro.testing.faults.WorkerHangFault`) armed per
            worker spawn — the deterministic chaos harness used by
            ``tests/serve/test_cluster_chaos.py``.  Empty in production.
    """

    workers: int = 2
    start_method: str = "fork"
    queue_depth: int = 256
    max_inflight_per_worker: int = 4
    request_retries: int = 3
    dispatch_wait_s: float = 0.05
    spawn_timeout_s: float = 30.0
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 2.0
    restart_backoff_base_s: float = 0.05
    restart_backoff_max_s: float = 2.0
    restart_budget: int = 5
    restart_budget_window_s: float = 30.0
    breaker_open_s: float = 1.0
    breaker_half_open_probes: int = 1
    tenant_rate: "float | None" = None
    tenant_burst: int = 10
    overload_enter_fraction: float = 0.8
    overload_exit_fraction: float = 0.4
    overload_dwell_s: float = 0.25
    service_delay_s: float = 0.0
    shm_min_bytes: int = 1024
    chaos: tuple = field(default=())

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.start_method not in START_METHODS:
            raise ConfigurationError(
                f"unknown start_method {self.start_method!r}; use one of {START_METHODS}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.max_inflight_per_worker < 1:
            raise ConfigurationError(
                f"max_inflight_per_worker must be >= 1, got {self.max_inflight_per_worker}"
            )
        if self.request_retries < 0:
            raise ConfigurationError(f"request_retries must be >= 0, got {self.request_retries}")
        for name in (
            "dispatch_wait_s",
            "spawn_timeout_s",
            "heartbeat_interval_s",
            "heartbeat_timeout_s",
            "restart_backoff_base_s",
            "restart_backoff_max_s",
            "restart_budget_window_s",
            "breaker_open_s",
            "overload_dwell_s",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive, got {getattr(self, name)}")
        if self.restart_budget < 1:
            raise ConfigurationError(f"restart_budget must be >= 1, got {self.restart_budget}")
        if self.breaker_half_open_probes < 1:
            raise ConfigurationError(
                f"breaker_half_open_probes must be >= 1, got {self.breaker_half_open_probes}"
            )
        if self.tenant_rate is not None and self.tenant_rate <= 0:
            raise ConfigurationError(f"tenant_rate must be positive, got {self.tenant_rate}")
        if self.tenant_burst < 1:
            raise ConfigurationError(f"tenant_burst must be >= 1, got {self.tenant_burst}")
        if not 0.0 < self.overload_exit_fraction <= self.overload_enter_fraction <= 1.0:
            raise ConfigurationError(
                "need 0 < overload_exit_fraction <= overload_enter_fraction <= 1, got "
                f"{self.overload_exit_fraction} / {self.overload_enter_fraction}"
            )
        if self.service_delay_s < 0:
            raise ConfigurationError(f"service_delay_s must be >= 0, got {self.service_delay_s}")
        if self.shm_min_bytes < 0:
            raise ConfigurationError(f"shm_min_bytes must be >= 0, got {self.shm_min_bytes}")
