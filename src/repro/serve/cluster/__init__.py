"""Supervised multi-process serving tier.

Crash-isolated worker pools over shared-memory plans, with heartbeat
supervision, circuit-breaker-guarded restarts, priority admission control,
and a graceful degradation ladder.  See
:class:`~repro.serve.cluster.service.ClusterService` for the front door.
"""

from repro.serve.cluster.admission import AdmissionController, TokenBucket
from repro.serve.cluster.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.cluster.config import PRIORITIES, START_METHODS, ClusterConfig
from repro.serve.cluster.router import ClusterRouter
from repro.serve.cluster.service import ClusterModel, ClusterService
from repro.serve.cluster.shm_store import PlanGeneration, ShmPlanStore
from repro.serve.cluster.supervisor import WorkerHandle, WorkerSupervisor
from repro.serve.cluster.worker import worker_main

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ClusterConfig",
    "PRIORITIES",
    "START_METHODS",
    "ClusterRouter",
    "ClusterModel",
    "ClusterService",
    "PlanGeneration",
    "ShmPlanStore",
    "WorkerHandle",
    "WorkerSupervisor",
    "worker_main",
]
