"""Dynamic micro-batching over :class:`~repro.infer.engine.InferenceEngine`.

Single-image requests enter a bounded FIFO queue and come back as
:class:`concurrent.futures.Future` objects.  Worker threads coalesce queued
requests into engine-sized batches: the first request of a forming batch may
be held for at most ``max_wait_s`` while later arrivals join, so throughput
approaches the engine's full-batch rate under load while an isolated request
pays at most the wait window in extra latency.  Results are split back to
the per-request futures in queue order — request *i* of a batch always
receives row *i* of that batch's logits.

Overload behaviour is explicit, not emergent: beyond ``queue_depth`` the
``full_policy`` either sheds the request immediately
(:class:`~repro.errors.QueueFullError` → HTTP 503) or blocks the submitter
(backpressure).  Requests carry optional deadlines and are dropped *before*
compute is spent once expired.

Each worker thread owns a private
:class:`~repro.infer.plan.ExecutionContext` (see
:meth:`InferenceEngine.make_context`), honouring the engine's
one-context-per-worker contract; batch logits are copied out of the scratch
buffer before futures resolve, so callers may keep results indefinitely.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServerClosedError,
    ShapeError,
)
from repro.infer.engine import InferenceEngine
from repro.serve.config import BatcherConfig
from repro.serve.metrics import ServerMetrics
from repro.utils.logging import get_logger

__all__ = ["MicroBatcher"]

logger = get_logger("serve.batcher")


@dataclass
class _Request:
    image: np.ndarray
    deadline: "float | None"
    enqueued_at: float
    future: "Future[np.ndarray]" = field(default_factory=Future)


def _resolve(future: Future, result=None, error: "BaseException | None" = None) -> bool:
    """Set a future's outcome, tolerating client-side cancellation."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
        return True
    except Exception:  # already cancelled/resolved — the client walked away
        return False


class MicroBatcher:
    """Coalesces single-image requests into engine batches (see module doc).

    Args:
        engine: Compiled engine to serve from.  Its ``on_stale`` policy is
            honoured per batch via the cheap version-counter check.
        config: Batching/queueing knobs (:class:`BatcherConfig`).
        metrics: Metrics sink; a private :class:`ServerMetrics` is created
            when not provided.
        image_shape: Expected CHW shape of every request image.  When
            ``None`` it is pinned by the first accepted request, so one
            malformed image can never poison a whole batch.
        name: Label used in log lines (the registry passes the model name).
    """

    def __init__(
        self,
        engine: InferenceEngine,
        config: "BatcherConfig | None" = None,
        metrics: "ServerMetrics | None" = None,
        image_shape: "tuple[int, int, int] | None" = None,
        name: str = "",
    ) -> None:
        self.engine = engine
        self.config = config or BatcherConfig()
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.name = name
        self._image_shape = None if image_shape is None else tuple(image_shape)
        self._queue: "deque[_Request]" = deque()
        self._cond = threading.Condition()
        self._threads: "list[threading.Thread]" = []
        self._started = False
        self._stopping = False
        self._draining = False
        self._paused = False
        self._inflight = 0
        self.metrics.bind_depth_gauge(lambda: len(self._queue))

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "MicroBatcher":
        """Spawn the worker threads; idempotent."""
        with self._cond:
            if self._stopping:
                raise ServerClosedError(f"batcher {self.name!r} has been stopped")
            if self._started:
                return self
            self._started = True
        for i in range(self.config.workers):
            t = threading.Thread(
                target=self._worker, name=f"repro-batcher-{self.name or 'model'}-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        logger.debug("batcher %r started with %d worker(s)", self.name, self.config.workers)
        return self

    def stop(self, drain: bool = True, timeout: "float | None" = 10.0) -> None:
        """Stop serving; with ``drain`` every queued request completes first.

        With ``drain=False`` queued requests fail fast with
        :class:`~repro.errors.ServerClosedError`; requests already executing
        still resolve.  Either way no future is left unresolved.  Idempotent.
        """
        with self._cond:
            if self._stopping:
                drop: "list[_Request]" = []
            else:
                self._stopping = True
                self._draining = drain
                drop = [] if drain else list(self._queue)
                if not drain:
                    self._queue.clear()
            self._cond.notify_all()
        for req in drop:
            if _resolve(req.future, error=ServerClosedError("server stopped before serving")):
                self.metrics.record_cancelled()
        # One shared deadline across every worker join — a wedged worker
        # must not stretch shutdown to workers × timeout.
        deadline = None if timeout is None else time.monotonic() + timeout
        for t in self._threads:
            t.join(None if deadline is None else max(0.0, deadline - time.monotonic()))
        if drain:
            # Workers exit only once the queue is empty and nothing is in
            # flight, so a clean join implies a complete drain.
            with self._cond:
                leftovers = list(self._queue)
                self._queue.clear()
            for req in leftovers:  # only on join timeout
                if _resolve(req.future, error=ServerClosedError("drain timed out")):
                    self.metrics.record_cancelled()
        logger.debug("batcher %r stopped (drain=%s)", self.name, drain)

    def pause(self) -> None:
        """Hold dequeuing; queued requests wait.  Used to quiesce execution
        around hot weight refreshes (see ``ModelRegistry.refresh``)."""
        with self._cond:
            self._paused = True
            self._cond.notify_all()

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def join_idle(self, timeout: "float | None" = None) -> bool:
        """Block until the queue is empty and no batch is executing."""
        return self._join(lambda: self._queue or self._inflight, timeout)

    def join_inflight(self, timeout: "float | None" = None) -> bool:
        """Block until no batch is executing (queued requests may remain).

        This is the quiesce point for hot weight refreshes on a *paused*
        batcher, where the queue intentionally stays populated.
        """
        return self._join(lambda: self._inflight, timeout)

    def _join(self, busy, timeout: "float | None") -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while busy():
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining if remaining is not None else 0.1)
        return True

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def stopped(self) -> bool:
        return self._stopping

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        image,
        deadline_s: "float | None" = None,
        priority: str = "interactive",
        tenant: "str | None" = None,
    ) -> "Future[np.ndarray]":
        """Enqueue one CHW image; returns a future resolving to its logits.

        ``priority`` and ``tenant`` are accepted for submit-interface parity
        with :meth:`repro.serve.cluster.router.ClusterRouter.submit` and
        ignored here — the in-process micro-batcher has a single FIFO class
        and no tenant quotas.

        Raises:
            ShapeError: Not a single CHW image, or inconsistent with the
                shape this batcher is pinned to.
            QueueFullError: Queue at its high-water mark under the
                ``"reject"`` policy.
            ServerClosedError: The batcher is stopping/stopped.
        """
        image = np.asarray(image, dtype=self.engine.plan.dtype)
        if image.ndim != 3:
            raise ShapeError(f"expected one CHW image, got shape {image.shape}")
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        now = time.monotonic()
        deadline = None if deadline_s is None else now + deadline_s
        req = _Request(image=image, deadline=deadline, enqueued_at=now)
        with self._cond:
            if self._image_shape is None:
                self._image_shape = image.shape
            elif image.shape != self._image_shape:
                raise ShapeError(
                    f"image shape {image.shape} does not match this model's {self._image_shape}"
                )
            # Counted only after validation, so offered == accepted + shed
            # stays an exact invariant (malformed requests are neither).
            self.metrics.record_offered()
            while True:
                if self._stopping:
                    self.metrics.record_shed()
                    raise ServerClosedError("server is shutting down")
                if len(self._queue) < self.config.queue_depth:
                    break
                if self.config.full_policy == "reject":
                    self.metrics.record_shed()
                    raise QueueFullError(
                        f"queue depth {self.config.queue_depth} exceeded; request shed"
                    )
                self._cond.wait(0.05)  # block policy: wait for space
            self._queue.append(req)
            self.metrics.record_accepted()
            self._cond.notify_all()
        return req.future

    # -- worker loop -----------------------------------------------------------

    def _worker(self) -> None:
        ctx = self.engine.make_context()
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            if batch:
                self._run_batch(batch, ctx)

    def _take_batch(self) -> "list[_Request] | None":
        """Dequeue up to ``max_batch_size`` live requests, or ``None`` to exit.

        May return an empty list when every dequeued request had already
        expired — the caller just loops.
        """
        cfg = self.config
        with self._cond:
            while True:
                if self._stopping and (not self._draining or not self._queue):
                    return None
                # A draining shutdown overrides pause() — graceful stop must
                # finish queued work even if someone forgot to resume.
                if self._queue and (not self._paused or self._stopping):
                    break
                self._cond.wait(0.05)
            batch = [self._queue.popleft()]
            if cfg.max_batch_size > 1:
                wait_until = time.monotonic() + cfg.max_wait_s
                while len(batch) < cfg.max_batch_size:
                    if self._queue:
                        batch.append(self._queue.popleft())
                        continue
                    remaining = wait_until - time.monotonic()
                    # Don't hold a forming batch during shutdown or pause —
                    # serve what we have.
                    if remaining <= 0 or self._stopping or self._paused:
                        break
                    self._cond.wait(remaining)
            self._inflight += len(batch)
            self._cond.notify_all()  # queue space freed: wake blocked submitters
        return self._drop_expired(batch)

    def _drop_expired(self, batch: "list[_Request]") -> "list[_Request]":
        now = time.monotonic()
        live = []
        for req in batch:
            if req.deadline is not None and now > req.deadline:
                if _resolve(req.future, error=DeadlineExceededError("deadline expired in queue")):
                    self.metrics.record_expired()
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()
            else:
                live.append(req)
        return live

    def _run_batch(self, batch: "list[_Request]", ctx) -> None:
        self.metrics.record_batch(len(batch))
        try:
            images = np.stack([req.image for req in batch])
            # Copy detaches the logits from ctx's scratch buffer, so futures
            # stay valid after this worker starts its next batch.
            logits = np.array(self.engine.forward_batch(images, ctx=ctx), copy=True)
        except Exception as exc:
            logger.exception("batcher %r: batch of %d failed", self.name, len(batch))
            for req in batch:
                if _resolve(req.future, error=exc):
                    self.metrics.record_failed()
        else:
            done = time.monotonic()
            for i, req in enumerate(batch):
                if _resolve(req.future, result=logits[i]):
                    self.metrics.record_completed(done - req.enqueued_at)
                else:
                    self.metrics.record_cancelled()
        finally:
            with self._cond:
                self._inflight -= len(batch)
                self._cond.notify_all()

    # -- context management ----------------------------------------------------

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
