"""Traffic-serving layer over the compiled inference engine.

Turns :class:`~repro.infer.engine.InferenceEngine` into a concurrent model
server: a dynamic micro-batcher with a bounded, backpressured request queue
(:mod:`repro.serve.batcher`), a multi-model registry with quiesced hot
weight refreshes (:mod:`repro.serve.registry`), a stdlib-only HTTP front
end with drain-then-stop shutdown (:mod:`repro.serve.http`), a serving
metrics core with latency percentiles (:mod:`repro.serve.metrics`), and a
supervised multi-process cluster tier — crash-isolated workers over
shared-memory plans with admission control and circuit breaking
(:mod:`repro.serve.cluster`).

Quickstart::

    from repro.serve import BatcherConfig, ModelRegistry, ModelServer, ServerConfig

    registry = ModelRegistry(BatcherConfig(max_batch_size=32, max_wait_s=0.002))
    registry.register("net4", trained_model)
    with ModelServer(registry, ServerConfig(port=8080)) as server:
        ...  # POST /v1/predict, GET /healthz, GET /metrics
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.client import PredictClient, PredictResult, ServeHTTPError
from repro.serve.cluster import ClusterConfig, ClusterService
from repro.serve.config import BatcherConfig, ServerConfig
from repro.serve.http import ModelServer
from repro.serve.metrics import ClusterMetrics, LatencyReservoir, ServerMetrics, percentile
from repro.serve.registry import ModelRegistry, ServingModel

__all__ = [
    "BatcherConfig",
    "ServerConfig",
    "ClusterConfig",
    "ClusterService",
    "MicroBatcher",
    "ModelRegistry",
    "ServingModel",
    "ModelServer",
    "ServerMetrics",
    "ClusterMetrics",
    "LatencyReservoir",
    "percentile",
    "PredictClient",
    "PredictResult",
    "ServeHTTPError",
]
