"""Activation-range calibration.

The paper fixes 8-bit activations; the quality of an 8-bit code depends on
the clipping range.  This module implements the standard post-training
calibration pass: run sample batches through the network, observe each
:class:`~repro.quant.activations.QuantizedActivation`'s input distribution,
and set its clipping range to a percentile of the observed magnitudes
(rounded up to a power of two so the hardware scale stays a pure shift).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad
from repro.quant.activations import ActivationQuantConfig, QuantizedActivation
from repro.quant.fixed_point import FixedPointFormat

__all__ = [
    "ActivationObserver",
    "calibrate_activations",
    "calibration_scale_zero_point",
    "fixed_point_format_for",
]


class ActivationObserver:
    """Records per-layer absolute-magnitude percentiles during forwards."""

    def __init__(self, percentile: float = 99.9) -> None:
        if not 0.0 < percentile <= 100.0:
            raise ConfigurationError(f"percentile must be in (0, 100], got {percentile}")
        self.percentile = percentile
        self._samples: dict[int, list[float]] = {}

    def observe(self, layer_id: int, values: np.ndarray) -> None:
        """Record one batch's magnitude percentile for ``layer_id``."""
        magnitude = float(np.percentile(np.abs(values), self.percentile))
        self._samples.setdefault(layer_id, []).append(magnitude)

    def range_for(self, layer_id: int) -> float:
        """Aggregate observed range for a layer (max over batches)."""
        if layer_id not in self._samples:
            raise ConfigurationError(f"no observations recorded for layer {layer_id}")
        return max(self._samples[layer_id])


def _next_power_of_two(x: float) -> float:
    """Smallest power of two >= x (minimum 2^-8 to keep a usable grid)."""
    if x <= 0:
        return 2.0**-8
    return float(2.0 ** max(-8, math.ceil(math.log2(x))))


def fixed_point_format_for(
    values: np.ndarray, bits: int = 8, percentile: float = 100.0
) -> FixedPointFormat:
    """Pick a power-of-two fixed-point format covering observed activations.

    The clipping range is the given ``percentile`` of ``|values|`` rounded
    up to a power of two (so the scale stays a pure shift), and the step is
    ``range * 2**(1 - bits)``.  Degenerate calibration data is handled the
    way a deployment must: an empty, all-zero or constant-zero batch falls
    back to the minimum ``2**-8`` range, and a single sample is as valid as
    a thousand — the result is always a finite, non-degenerate format.

    Raises:
        ConfigurationError: If ``values`` contains NaN/Inf (calibration on
            garbage would silently pick a garbage grid).
    """
    if not 0.0 < percentile <= 100.0:
        raise ConfigurationError(f"percentile must be in (0, 100], got {percentile}")
    v = np.abs(np.asarray(values, dtype=np.float64)).reshape(-1)
    if v.size and not np.isfinite(v).all():
        raise ConfigurationError("calibration values contain NaN/Inf")
    max_abs = float(np.percentile(v, percentile)) if v.size else 0.0
    range_pow2 = _next_power_of_two(max_abs)
    frac_bits = int(bits - 1 - round(math.log2(range_pow2)))
    return FixedPointFormat(bits=bits, frac_bits=frac_bits)


def calibration_scale_zero_point(
    values: np.ndarray, bits: int = 8, percentile: float = 100.0
) -> tuple[float, int]:
    """Quantization ``(scale, zero_point)`` for observed activations.

    The repo's activation grids are symmetric, so the zero point is
    structurally 0 and the scale is the step of
    :func:`fixed_point_format_for` — valid (finite, positive) even for
    all-zero, constant, or single-sample calibration batches.
    """
    fmt = fixed_point_format_for(values, bits=bits, percentile=percentile)
    return fmt.step, 0


def calibrate_activations(
    model: Module,
    batches: list[np.ndarray],
    percentile: float = 99.9,
) -> dict[int, float]:
    """Set every activation quantizer's range from observed data.

    Runs ``batches`` through ``model`` in inference mode with quantizers
    temporarily disabled (so observations reflect the unclipped
    distribution), then rewrites each enabled
    :class:`QuantizedActivation`'s ``max_abs`` to the next power of two at
    or above the observed percentile magnitude.

    Returns:
        Mapping from quantizer index (enumeration order in
        ``model.modules()``) to the new ``max_abs``.
    """
    quantizers = [
        m for m in model.modules() if isinstance(m, QuantizedActivation) and m.enabled
    ]
    if not quantizers:
        return {}
    observer = ActivationObserver(percentile)

    # Temporarily record instead of quantizing.
    originals = []
    for index, module in enumerate(quantizers):
        def make_forward(i, m):
            def forward(x: Tensor) -> Tensor:
                observer.observe(i, x.data)
                return x
            return forward
        originals.append(module.forward)
        module.forward = make_forward(index, module)

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            for batch in batches:
                model(Tensor(np.asarray(batch)))
    finally:
        for module, original in zip(quantizers, originals):
            module.forward = original
        model.train(was_training)

    new_ranges: dict[int, float] = {}
    for index, module in enumerate(quantizers):
        max_abs = _next_power_of_two(observer.range_for(index))
        module.config = ActivationQuantConfig(bits=module.config.bits, max_abs=max_abs)
        new_ranges[index] = max_abs
    return new_ranges
