"""Quantized layers: convolution/linear with a pluggable weight quantizer.

Each quantized layer keeps a *full-precision master weight* (Algorithm 1's
``w^{p-1}``); the forward pass quantizes it on the fly through an autograd
op so that STE / threshold gradients reach the master copy and, for
FLightNN, the trainable thresholds ``t``.

Weight-quantization strategies implement a tiny protocol
(:class:`WeightQuantStrategy`) so the same layer class serves the paper's
five model families: full precision, fixed point, LightNN-1, LightNN-2 and
FLightNN.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.quant.fixed_point import FixedPointFormat, quantize_fixed_point
from repro.quant.flightnn import FLightNNConfig, FLightNNQuantizer
from repro.quant.lightnn import LightNNConfig, LightNNQuantizer
from repro.quant.ste import ste_clipped_apply

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.quant.flightnn import FLightNNState
    from repro.quant.workspace import QuantWorkspace

__all__ = [
    "WeightQuantStrategy",
    "FullPrecisionWeights",
    "FixedPointWeights",
    "LightNNWeights",
    "FLightNNWeights",
    "QuantizedLayer",
    "QConv2d",
    "QLinear",
]


class WeightQuantStrategy:
    """Protocol for weight quantizers pluggable into :class:`QConv2d`.

    Attributes:
        needs_thresholds: Whether the layer must allocate a trainable
            threshold vector ``t`` for this strategy.
    """

    needs_thresholds: bool = False

    def apply(
        self,
        weight: Tensor,
        thresholds: Tensor | None,
        workspace: "QuantWorkspace | None" = None,
    ) -> Tensor:
        """Quantize ``weight`` as an autograd op.

        Args:
            workspace: Optional shared quantization-state cache; strategies
                without per-step shared state ignore it.
        """
        raise NotImplementedError

    def quantize_array(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        """Quantize raw arrays (inference / inspection, no graph)."""
        raise NotImplementedError

    def filter_k(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        """Shift terms used per filter (0 for non-shift strategies)."""
        raise NotImplementedError

    def bits_per_weight(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        """Storage cost per weight, reported per filter; shape (F,)."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Short strategy label."""
        return type(self).__name__


class FullPrecisionWeights(WeightQuantStrategy):
    """Identity strategy: 32-bit floating-point weights."""

    def apply(
        self,
        weight: Tensor,
        thresholds: Tensor | None,
        workspace: "QuantWorkspace | None" = None,
    ) -> Tensor:
        return weight

    def quantize_array(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return np.asarray(w, dtype=np.float64)

    def filter_k(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return np.zeros(np.asarray(w).shape[0], dtype=int)

    def bits_per_weight(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return np.full(np.asarray(w).shape[0], 32.0)


class FixedPointWeights(WeightQuantStrategy):
    """Uniform fixed-point weights (the paper's FP_{4W8A} baseline)."""

    def __init__(self, fmt: FixedPointFormat | None = None) -> None:
        # Q0.3 at 4 bits: weights in [-1, 0.875], step 1/8 — a good match
        # for batch-normalised conv weights.
        self.fmt = fmt or FixedPointFormat(bits=4, frac_bits=3)

    def apply(
        self,
        weight: Tensor,
        thresholds: Tensor | None,
        workspace: "QuantWorkspace | None" = None,
    ) -> Tensor:
        fmt = self.fmt
        return ste_clipped_apply(
            weight,
            lambda data: quantize_fixed_point(data, fmt),
            low=fmt.min_value,
            high=fmt.max_value,
        )

    def quantize_array(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return quantize_fixed_point(w, self.fmt)

    def filter_k(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return np.zeros(np.asarray(w).shape[0], dtype=int)

    def bits_per_weight(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return np.full(np.asarray(w).shape[0], float(self.fmt.bits))


class LightNNWeights(WeightQuantStrategy):
    """Uniform-k power-of-two weights (LightNN-1 / LightNN-2)."""

    def __init__(self, config: LightNNConfig | None = None) -> None:
        self.quantizer = LightNNQuantizer(config)

    def apply(
        self,
        weight: Tensor,
        thresholds: Tensor | None,
        workspace: "QuantWorkspace | None" = None,
    ) -> Tensor:
        return self.quantizer.apply(weight)

    def quantize_array(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return self.quantizer.quantize(w)

    def filter_k(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return self.quantizer.filter_k(w)

    def bits_per_weight(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        bits = self.quantizer.config.k * self.quantizer.config.pow2.bits_per_term
        return np.full(np.asarray(w).shape[0], float(bits))


class FLightNNWeights(WeightQuantStrategy):
    """Flexible per-filter k — the paper's contribution."""

    needs_thresholds = True

    def __init__(self, config: FLightNNConfig | None = None) -> None:
        self.quantizer = FLightNNQuantizer(config)

    def apply(
        self,
        weight: Tensor,
        thresholds: Tensor | None,
        workspace: "QuantWorkspace | None" = None,
    ) -> Tensor:
        if thresholds is None:
            raise ConfigurationError("FLightNNWeights requires a thresholds tensor")
        return self.quantizer.apply(weight, thresholds, workspace=workspace)

    def quantize_array(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        if t is None:
            raise ConfigurationError("FLightNNWeights requires thresholds")
        return self.quantizer.quantize(w, t).quantized

    def filter_k(
        self,
        w: np.ndarray,
        t: np.ndarray | None,
        state: "FLightNNState | None" = None,
    ) -> np.ndarray:
        if t is None:
            raise ConfigurationError("FLightNNWeights requires thresholds")
        return self.quantizer.filter_k(w, t, state=state)

    def bits_per_weight(
        self,
        w: np.ndarray,
        t: np.ndarray | None,
        state: "FLightNNState | None" = None,
    ) -> np.ndarray:
        per_term = self.quantizer.config.pow2.bits_per_term
        return self.filter_k(w, t, state=state).astype(float) * per_term


class QuantizedLayer(Module):
    """Shared master-weight / threshold / quantized-weight-cache plumbing.

    Subclasses (:class:`QConv2d`, :class:`QLinear`) set ``self.weight``,
    ``self.strategy`` and ``self.thresholds`` in their constructors; this
    base provides the deployment-side accessors plus a *quantize-once*
    cache: :meth:`quantized_weight` with ``use_cache=True`` re-runs the
    (potentially expensive) quantizer only when the master weight or the
    thresholds have been mutated since the cached copy was taken, as
    tracked by :attr:`~repro.nn.tensor.Tensor.version`.  The inference
    engine (:mod:`repro.infer`) and the trainer's evaluation passes share
    this cache, so weights are quantized once per optimizer step instead of
    once per forward.
    """

    weight: Parameter
    thresholds: Parameter | None
    strategy: WeightQuantStrategy

    def __init__(self) -> None:
        super().__init__()
        self._qcache_key: tuple[int, int] | None = None
        self._qcache_value: np.ndarray | None = None
        #: Optional per-layer :class:`~repro.quant.workspace.QuantWorkspace`
        #: (training fast path).  When set — only meaningful for FLightNN
        #: strategies — the forward pass, gradient sweeps, regularizers and
        #: reporting methods all share one cached quantization pass per
        #: (weight, thresholds) state.
        self.quant_workspace: "QuantWorkspace | None" = None

    def _workspace_state(self) -> "FLightNNState | None":
        """Current shared quantization state, when a workspace is attached."""
        if self.quant_workspace is None or self.thresholds is None:
            return None
        return self.quant_workspace.state(self.weight, self.thresholds)

    def weight_cache_key(self) -> tuple[int, int]:
        """Version pair identifying the current (weight, thresholds) state."""
        t_version = -1 if self.thresholds is None else self.thresholds.version
        return (self.weight.version, t_version)

    def quantized_weight(self, use_cache: bool = False) -> np.ndarray:
        """Current deployed (quantized) weights, outside the graph.

        Args:
            use_cache: Reuse the last quantization result while the master
                weight / threshold versions are unchanged.  Callers must
                treat the returned array as read-only.
        """
        t = None if self.thresholds is None else self.thresholds.data
        if not use_cache:
            return self.strategy.quantize_array(self.weight.data, t)
        key = self.weight_cache_key()
        if self._qcache_value is None or self._qcache_key != key:
            state = self._workspace_state()
            if state is not None:
                # The workspace already holds Q_k(w | t) for this exact
                # (weight, thresholds) state — e.g. from the training
                # forward pass — so the engine refresh reuses it for free.
                self._qcache_value = state.quantized
            else:
                self._qcache_value = self.strategy.quantize_array(self.weight.data, t)
            self._qcache_key = key
        return self._qcache_value

    def invalidate_weight_cache(self) -> None:
        """Drop the cached quantized weights (forces re-quantization)."""
        self._qcache_key = None
        self._qcache_value = None
        if self.quant_workspace is not None:
            self.quant_workspace.invalidate()

    def filter_k(self) -> np.ndarray:
        """Shift terms per filter (axis-0 slice) under the current strategy."""
        t = None if self.thresholds is None else self.thresholds.data
        state = self._workspace_state()
        if state is not None:
            return self.strategy.filter_k(self.weight.data, t, state=state)
        return self.strategy.filter_k(self.weight.data, t)

    def bits_per_weight(self) -> np.ndarray:
        """Per-filter storage cost in bits per weight."""
        t = None if self.thresholds is None else self.thresholds.data
        state = self._workspace_state()
        if state is not None:
            return self.strategy.bits_per_weight(self.weight.data, t, state=state)
        return self.strategy.bits_per_weight(self.weight.data, t)


class QConv2d(QuantizedLayer):
    """Convolution whose weights pass through a quantization strategy.

    Args:
        in_channels / out_channels / kernel_size / stride / padding: As in
            :class:`~repro.nn.layers.Conv2d`.
        strategy: Weight quantization strategy; defaults to full precision.
        rng: Seed or generator for weight init.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        strategy: WeightQuantStrategy | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) < 1 or padding < 0:
            raise ConfigurationError("invalid QConv2d geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.strategy = strategy or FullPrecisionWeights()
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng=rng), name="qconv.weight")
        if self.strategy.needs_thresholds:
            k_max = self.strategy.quantizer.config.k_max
            # Paper Sec. 5.1: thresholds initialised to 0 (gradual quantization).
            self.thresholds = Parameter(np.zeros(k_max), name="qconv.thresholds")
        else:
            self.thresholds = None
        # Input spatial size seen by the most recent forward pass; the
        # hardware cost models read this after a probe inference.
        self.last_input_hw: tuple[int, int] | None = None

    def forward(self, x: Tensor) -> Tensor:
        self.last_input_hw = (x.shape[2], x.shape[3])
        wq = self.strategy.apply(self.weight, self.thresholds, workspace=self.quant_workspace)
        return F.conv2d(x, wq, stride=self.stride, padding=self.padding)

    def output_spatial(self, height: int, width: int) -> tuple[int, int]:
        """Spatial output size for an input of ``height`` x ``width``."""
        return (
            F.conv_output_size(height, self.kernel_size, self.stride, self.padding),
            F.conv_output_size(width, self.kernel_size, self.stride, self.padding),
        )

    def __repr__(self) -> str:
        return (
            f"QConv2d({self.in_channels}, {self.out_channels}, kernel={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, strategy={self.strategy.name})"
        )


class QLinear(QuantizedLayer):
    """Fully-connected layer with quantized weights.

    For shift-count purposes each output neuron's weight row is treated as
    one "filter" (axis 0), mirroring the convolutional case.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        strategy: WeightQuantStrategy | None = None,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if min(in_features, out_features) < 1:
            raise ConfigurationError("invalid QLinear geometry")
        self.in_features = in_features
        self.out_features = out_features
        self.strategy = strategy or FullPrecisionWeights()
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng=rng), name="qlinear.weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="qlinear.bias") if bias else None
        if self.strategy.needs_thresholds:
            k_max = self.strategy.quantizer.config.k_max
            self.thresholds = Parameter(np.zeros(k_max), name="qlinear.thresholds")
        else:
            self.thresholds = None

    def forward(self, x: Tensor) -> Tensor:
        wq = self.strategy.apply(self.weight, self.thresholds, workspace=self.quant_workspace)
        return F.linear(x, wq, self.bias)

    def __repr__(self) -> str:
        return f"QLinear({self.in_features}, {self.out_features}, strategy={self.strategy.name})"
