"""QuantWorkspace: one quantization pass per (weight, thresholds) state.

A single QAT step consumes the FLightNN level recursion several times per
layer: the forward pass needs ``Q_k(w | t)``, the threshold gradient needs
the per-level residuals/norms, the gate-pressure penalty needs the norms
again, and the epoch metrics (``filter_k`` / ``storage_mb``) re-run the
whole recursion once more.  All of those are pure functions of the same
``(w, t)`` pair, so the eager habit of calling
:meth:`~repro.quant.flightnn.FLightNNQuantizer.quantize` at every site does
the identical decomposition three or more times per step per layer.

:class:`QuantWorkspace` caches the full
:class:`~repro.quant.flightnn.FLightNNState` of the most recent pass and
serves it to every consumer while ``(w, t)`` are unchanged.  Staleness is
detected exactly like the inference engine's weight bindings
(:class:`~repro.infer.plan.WeightBinding`):

* **version counters** — every in-place mutation in this repo
  (optimizer steps, ``load_state_dict``, proximal shrinkage) calls
  :meth:`~repro.nn.tensor.Tensor.bump_version`, so a version mismatch is
  the cheap first-line invalidation;
* **content fingerprints** — ``(sum, sum(|.|))`` of the data catches
  mutations that bypassed ``bump_version`` (e.g. the numerical gradient
  checker perturbing entries in place, or an injected fault), trading a
  vanishingly small collision probability for never serving stale state.

Because the served state is shared, every consumer must treat its arrays
as **read-only**; code that wants to mutate (the proximal operator) keeps
computing its own residuals.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.quant.flightnn import FLightNNQuantizer, FLightNNState

__all__ = ["QuantWorkspace", "array_fingerprint"]


def array_fingerprint(a: np.ndarray) -> tuple[float, float]:
    """Cheap content fingerprint ``(sum, sum(|a|))`` of an array.

    The same pair the inference engine uses to detect silent in-place
    weight edits: any single-entry change moves at least one of the two
    sums, and coordinated edits that cancel in both simultaneously are
    practically impossible to hit by accident.
    """
    a = np.asarray(a)
    return (float(a.sum()), float(np.abs(a).sum()))


class QuantWorkspace:
    """Per-layer cache of one FLightNN quantization pass.

    Args:
        quantizer: The layer's quantizer (supplies ``k_max``, the exponent
            window and the norm convention).

    Attributes:
        hits / misses: Served-from-cache vs recomputed counters (the
            fast-path tests assert on these).
    """

    def __init__(self, quantizer: FLightNNQuantizer) -> None:
        self.quantizer = quantizer
        self._key: tuple[int, int] | None = None
        self._fp: tuple[float, float, float, float] | None = None
        self._state: FLightNNState | None = None
        self.hits = 0
        self.misses = 0

    def state(self, weight: Tensor, thresholds: Tensor) -> FLightNNState:
        """The quantization state for the *current* ``(weight, thresholds)``.

        Recomputes if and only if the version pair or the content
        fingerprint changed since the cached pass; the returned state's
        arrays are shared and must be treated as read-only.
        """
        key = (weight.version, thresholds.version)
        fp = array_fingerprint(weight.data) + array_fingerprint(thresholds.data)
        if self._state is not None and key == self._key and fp == self._fp:
            self.hits += 1
            return self._state
        self.misses += 1
        self._state = self.quantizer.quantize(weight.data, thresholds.data)
        self._key = key
        self._fp = fp
        return self._state

    def invalidate(self) -> None:
        """Drop the cached pass (forces recomputation on the next request).

        Called whenever layer state is replaced wholesale — checkpoint
        restore, divergence rollback — as a belt-and-braces guarantee on
        top of the version/fingerprint checks.
        """
        self._key = None
        self._fp = None
        self._state = None
