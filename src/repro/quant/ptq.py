"""Post-training quantization (PTQ) — the no-retraining baseline.

The paper's contribution is a *training* algorithm; the natural ablation is
to skip it: train a full-precision model, then quantize its weights with
each scheme and evaluate directly.  The accuracy gap between PTQ and the
quantization-aware training of Algorithm 1 measures what the training
procedure buys (it is large for aggressive codes like LightNN-1).

:func:`quantize_model` rebuilds the network under the target scheme and
copies the source model's weights (which become the quantized layers'
full-precision master copies), biases and batch-norm state across.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.quant.schemes import QuantizationScheme

if TYPE_CHECKING:  # avoid a circular import (models depends on quant)
    from repro.models.network import QuantizedNetwork

__all__ = ["quantize_model"]


def quantize_model(
    source: "QuantizedNetwork",
    scheme: QuantizationScheme,
    num_classes: int,
) -> "QuantizedNetwork":
    """Return a copy of ``source`` re-quantized under ``scheme`` (no training).

    Args:
        source: A trained network (typically full precision).
        scheme: Target quantization scheme.
        num_classes: Classifier width (must match the source).

    Raises:
        ConfigurationError: If the architectures do not line up (they are
            rebuilt from the same :class:`NetworkConfig`, so this only
            happens when the source was built with non-default classes).
    """
    from repro.models.registry import build_from_config  # deferred: circular

    target = build_from_config(
        source.config,
        scheme,
        num_classes=num_classes,
        image_size=source.image_size,
        in_channels=source.in_channels,
        rng=0,
    )
    source_state = source.state_dict()
    target_state = target.state_dict()
    missing = set(target_state) - set(source_state)
    # FLightNN targets add threshold parameters absent from the source;
    # keep their fresh (zero) initialisation and copy everything else.
    transferable = {}
    for name in target_state:
        if name in source_state:
            if source_state[name].shape != target_state[name].shape:
                raise ConfigurationError(
                    f"architecture mismatch at {name!r}: "
                    f"{source_state[name].shape} vs {target_state[name].shape}"
                )
            transferable[name] = source_state[name]
        elif not name.endswith("thresholds"):
            raise ConfigurationError(f"unexpected new parameter {name!r} in target")
    merged = {name: transferable.get(name, target_state[name]) for name in target_state}
    target.load_state_dict(merged)
    return target
