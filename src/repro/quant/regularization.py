"""Residual group-lasso regularizer (paper Sec. 4.3).

``L_reg,k(w) = sum_{j=0}^{k-1} lambda_j * sum_i ||r_{i,j}||_2``

where ``r_{i,j}`` is filter ``i``'s residual entering quantization level
``j``.  The ``j = 0`` term is a plain group lasso on whole filters (it can
prune filters outright); the ``j > 0`` terms shrink the residual left after
``j`` shifts, steering filters toward needing fewer shift terms.

Gradient treatment: the regularizer is defined on the *full-precision*
weights (Algorithm 1 computes it from ``w^{p-1}``).  We differentiate each
``||r_{i,j}||_2`` w.r.t. ``w`` holding the already-rounded terms ``R(r_l)``
(l < j) and the gates fixed, i.e. ``d r_{i,j} / d w = I``.  This gives the
classic group-lasso direction ``r / ||r||`` pulling each weight toward the
nearest point representable with ``j`` shifts — the behaviour Fig. 4 plots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor
from repro.quant.flightnn import FLightNNQuantizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.quant.workspace import QuantWorkspace

__all__ = ["residual_group_lasso", "regularization_curve", "proximal_residual_shrink"]


def residual_group_lasso(
    weight: Tensor,
    thresholds: Tensor,
    lambdas: Sequence[float],
    quantizer: FLightNNQuantizer,
    workspace: "QuantWorkspace | None" = None,
) -> Tensor:
    """Compute ``L_reg,k`` for one layer as an autograd scalar.

    Args:
        weight: Full-precision master weights (filter axis first).
        thresholds: Current threshold vector ``t`` (used to evaluate the
            gated recursion that produces the residuals; receives no
            gradient from this loss — see module docstring).
        lambdas: Per-level coefficients ``lambda_0 .. lambda_{k-1}``.
        quantizer: The layer's FLightNN quantizer (supplies k_max and the
            exponent window).
        workspace: Optional :class:`~repro.quant.workspace.QuantWorkspace`
            sharing the quantization pass with the layer's forward/gradient
            consumers instead of re-running the recursion here.

    Returns:
        Scalar loss tensor with gradient w.r.t. ``weight``.
    """
    lambdas = np.asarray(list(lambdas), dtype=np.float64)
    k_max = quantizer.config.k_max
    if lambdas.shape != (k_max,):
        raise ConfigurationError(
            f"need one lambda per level: got {lambdas.shape[0]}, expected {k_max}"
        )
    if (lambdas < 0).any():
        raise ConfigurationError("regularization lambdas must be non-negative")

    if workspace is not None:
        state = workspace.state(weight, thresholds)
    else:
        state = quantizer.quantize(weight.data, thresholds.data)
    norm_scale = (
        1.0 / np.sqrt(state.residuals[0].shape[1]) if quantizer.config.norm_per_element else 1.0
    )
    # Raw L2 norms per level/filter (state.norms may be RMS-scaled).
    raw_norms = np.stack([np.linalg.norm(r, axis=1) for r in state.residuals])
    loss_value = float((lambdas[:, None] * raw_norms).sum())

    def backward(g: np.ndarray) -> None:
        if not weight.requires_grad:
            return
        grad = np.zeros_like(state.residuals[0])
        for j in range(k_max):
            if lambdas[j] == 0.0:
                continue
            r = state.residuals[j]
            s = raw_norms[j]
            safe = np.where(s > 0, s, 1.0)
            direction = r / safe[:, None]
            direction[s == 0] = 0.0
            grad += lambdas[j] * direction
        weight.accumulate_grad(float(g) * grad.reshape(weight.shape))

    # ``thresholds`` is listed as a parent so graph bookkeeping stays
    # consistent, but it intentionally receives no gradient here.
    return Tensor.from_op(np.asarray(loss_value), (weight, thresholds), backward)


def proximal_residual_shrink(
    weight: np.ndarray,
    thresholds: np.ndarray,
    lambdas: Sequence[float],
    quantizer: FLightNNQuantizer,
    step_size: float,
) -> np.ndarray:
    """Proximal update for ``L_reg,k``: shrink each level's residual norm.

    The group lasso is famous for producing *exactly* zero groups, which is
    what turns a filter's extra shift off (``||r_{i,j}|| = 0`` fails the
    ``> t_j`` gate and the rounded residual vanishes).  A plain (sub)gradient
    step only approaches zero asymptotically — and under Adam the
    coefficient magnitude is normalised away entirely — so the trainer's
    default applies the classic proximal operator instead:

        r_{i,j} <- max(0, 1 - step_size * lambda_j / s_{i,j}) * r_{i,j}

    level by level (``j = 0`` shrinks whole filters, matching the paper's
    "t_0 determines whether this filter is pruned out").  ``s_{i,j}`` uses
    the quantizer's norm convention (RMS by default) so one ``lambda`` is
    meaningful across layers of different filter sizes; consequently the
    numerical ``lambda`` scale differs from the paper's loss-coefficient
    scale (see EXPERIMENTS.md).

    Args:
        weight: Full-precision master weights (modified copy is returned).
        thresholds: Current thresholds (determine the gated recursion).
        lambdas: Per-level shrinkage coefficients.
        quantizer: Layer quantizer (supplies k_max / window / norm mode).
        step_size: Current learning rate ``eta``.

    Returns:
        The shrunk weight array (same shape as ``weight``).
    """
    lambdas = np.asarray(list(lambdas), dtype=np.float64)
    k_max = quantizer.config.k_max
    if lambdas.shape != (k_max,):
        raise ConfigurationError(
            f"need one lambda per level: got {lambdas.shape[0]}, expected {k_max}"
        )
    if (lambdas < 0).any():
        raise ConfigurationError("regularization lambdas must be non-negative")
    if step_size < 0:
        raise ConfigurationError(f"step_size must be non-negative, got {step_size}")

    w = np.asarray(weight, dtype=np.float64).copy()
    shape = w.shape
    thresholds = np.asarray(thresholds, dtype=np.float64)
    for j in range(k_max):
        if lambdas[j] == 0.0:
            continue
        # Level j's shrink needs only the residual *entering* level j, so
        # run just the first j rounding passes instead of the full
        # decomposition (bitwise identical to quantize(...).residuals[j]).
        flat_r = quantizer.residual_at_level(w, thresholds, j)
        quantized_part = w.reshape(flat_r.shape) - flat_r
        s = quantizer.filter_norm(flat_r)
        safe = np.where(s > 0, s, 1.0)
        shrink = np.maximum(0.0, 1.0 - step_size * lambdas[j] / safe)
        shrink = np.where(s > 0, shrink, 0.0)
        w = (quantized_part + shrink[:, None] * flat_r).reshape(shape)
    return w


def regularization_curve(
    weights: np.ndarray,
    lambdas: Sequence[float],
    quantizer: FLightNNQuantizer,
) -> np.ndarray:
    """Per-level regularization losses for scalar "filters" (Fig. 4 data).

    Treats each entry of ``weights`` as a one-element filter and returns an
    array of shape (k_max + 1, len(weights)): one row per level's
    ``lambda_j * |r_j|`` and a final row with the total — exactly the three
    curves plotted in the paper's Fig. 4.
    """
    weights = np.asarray(weights, dtype=np.float64).reshape(-1, 1)
    lambdas = np.asarray(list(lambdas), dtype=np.float64)
    k_max = quantizer.config.k_max
    thresholds = np.zeros(k_max)
    state = quantizer.quantize(weights, thresholds)
    rows = [lambdas[j] * np.abs(state.residuals[j][:, 0]) for j in range(k_max)]
    rows.append(np.sum(rows, axis=0))
    return np.stack(rows)
