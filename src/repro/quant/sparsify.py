"""Synthetic filter sparsification via threshold surgery.

The paper obtains dead filters (``k_i = 0``) by group-lasso training of the
per-layer thresholds.  For benchmarking and testing the sparsity-aware
inference path we need controlled dead-filter fractions *without* running a
training campaign, so this module raises every FLightNN layer's thresholds
to the quantile of its level-0 filter norms that kills the requested
fraction of filters: a filter whose norm is below ``t_0`` fails the level-0
gate, its residual never shrinks, and (with all levels sharing the same
``t``) every later gate fails too — giving ``k_i = 0`` exactly.

This is threshold surgery on the real quantizer, not a mock: the resulting
model is a legitimate FLightNN deployment state and keeps exact eager /
compiled parity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.quant.qlayers import FLightNNWeights, QuantizedLayer

__all__ = ["sparsify_model", "dead_filter_fraction"]


def _flightnn_layers(model, include_linear: bool) -> list[QuantizedLayer]:
    layers = list(model.conv_layers())
    if include_linear:
        layers += list(model.linear_layers())
    return [lay for lay in layers if isinstance(lay.strategy, FLightNNWeights)]


def sparsify_model(
    model,
    dead_fraction: float,
    include_linear: bool = False,
) -> dict:
    """Set each FLightNN layer's thresholds to kill ``~dead_fraction`` filters.

    Args:
        model: A :class:`~repro.models.network.QuantizedNetwork` (anything
            exposing ``conv_layers()`` / ``linear_layers()``).
        dead_fraction: Target fraction of filters per layer with
            ``k_i = 0``, in ``[0, 1]``.  The achieved fraction is the
            nearest quantile step (exact up to norm ties).
        include_linear: Also sparsify classifier rows (off by default: the
            final classifier usually feeds the plan output where rows cannot
            be pruned anyway).

    Returns:
        Report dict with per-layer ``{"filters", "dead", "k_hist"}`` entries
        and the overall achieved ``dead_fraction``.
    """
    if not 0.0 <= dead_fraction <= 1.0:
        raise ConfigurationError(f"dead_fraction must be in [0, 1], got {dead_fraction}")
    layers = _flightnn_layers(model, include_linear)
    if not layers:
        raise ConfigurationError("model has no FLightNN layers to sparsify")
    report: dict = {"layers": [], "dead_fraction": 0.0}
    total = dead = 0
    for index, layer in enumerate(layers):
        quantizer = layer.strategy.quantizer
        flat = np.asarray(layer.weight.data, dtype=np.float64).reshape(
            layer.weight.data.shape[0], -1
        )
        norms = quantizer.filter_norm(flat)
        if dead_fraction <= 0.0:
            threshold = 0.0
        else:
            # Quantile of the level-0 norms: gates pass only for norm > t,
            # so t at the q-quantile kills ~q of the filters.  A tiny
            # relative epsilon keeps the boundary filter dead even when the
            # quantile lands exactly on its norm.
            threshold = float(np.quantile(norms, dead_fraction)) * (1.0 + 1e-12)
        layer.thresholds.data[...] = threshold
        layer.thresholds.bump_version()
        layer.invalidate_weight_cache()
        k = layer.filter_k()
        hist = np.bincount(k, minlength=int(k.max(initial=0)) + 2)
        report["layers"].append(
            {
                "layer": index,
                "filters": int(k.size),
                "dead": int((k == 0).sum()),
                "threshold": threshold,
                "k_hist": hist.tolist(),
            }
        )
        total += int(k.size)
        dead += int((k == 0).sum())
    report["dead_fraction"] = dead / total if total else 0.0
    return report


def dead_filter_fraction(model, include_linear: bool = False) -> float:
    """Fraction of FLightNN filters with ``k_i = 0`` across the model."""
    layers = _flightnn_layers(model, include_linear)
    if not layers:
        return 0.0
    ks = [layer.filter_k() for layer in layers]
    total = sum(k.size for k in ks)
    dead = sum(int((k == 0).sum()) for k in ks)
    return dead / total if total else 0.0
