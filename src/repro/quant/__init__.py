"""Quantization package — the paper's contribution and its baselines.

Contents:

* :mod:`repro.quant.power_of_two` — ``R(x)`` rounding and LightNN's ``Q_k``.
* :mod:`repro.quant.fixed_point` — uniform fixed-point baseline.
* :mod:`repro.quant.lightnn` — LightNN-k quantizer with STE.
* :mod:`repro.quant.flightnn` — FLightNN: per-filter flexible k with
  trainable thresholds and the paper's sigmoid-relaxed gradients.
* :mod:`repro.quant.activations` — 8-bit fixed-point activation quantizer.
* :mod:`repro.quant.regularization` — residual group-lasso (Sec. 4.3).
* :mod:`repro.quant.decompose` — the Fig. 3 k=2 -> 2x(k=1) conversion.
* :mod:`repro.quant.qlayers` — QConv2d/QLinear with pluggable strategies.
* :mod:`repro.quant.schemes` — the five model families of the tables.
"""

from repro.quant.power_of_two import (
    PowerOfTwoConfig,
    is_power_of_two_value,
    quantize_lightnn,
    round_power_of_two,
)
from repro.quant.fixed_point import FixedPointFormat, best_frac_bits, quantize_fixed_point
from repro.quant.ste import ste_apply, ste_clipped_apply, threshold_grad_sweep
from repro.quant.workspace import QuantWorkspace, array_fingerprint
from repro.quant.lightnn import LightNNConfig, LightNNQuantizer
from repro.quant.flightnn import FLightNNConfig, FLightNNQuantizer, FLightNNState
from repro.quant.activations import (
    ActivationQuantConfig,
    QuantizedActivation,
    quantize_activations,
)
from repro.quant.regularization import regularization_curve, residual_group_lasso
from repro.quant.decompose import (
    DecomposedFilterBank,
    decompose_filter_bank,
    decompose_lightnn_bank,
)
from repro.quant.sparsify import dead_filter_fraction, sparsify_model
from repro.quant.qlayers import (
    FixedPointWeights,
    FLightNNWeights,
    FullPrecisionWeights,
    LightNNWeights,
    QConv2d,
    QLinear,
    WeightQuantStrategy,
)
from repro.quant.binary import (
    BinaryConnectConfig,
    BinaryWeights,
    binarize,
    scheme_binaryconnect,
)
from repro.quant.dorefa import DoReFaConfig, DoReFaWeights, dorefa_quantize, scheme_dorefa
from repro.quant.ptq import quantize_model
from repro.quant.encoding import EncodedWeights, decode_plane, decode_terms, encode_terms
from repro.quant.calibration import (
    ActivationObserver,
    calibrate_activations,
    calibration_scale_zero_point,
    fixed_point_format_for,
)
from repro.quant.schemes import (
    QuantizationScheme,
    paper_schemes,
    scheme_fixed_point,
    scheme_flightnn,
    scheme_full,
    scheme_lightnn,
)

__all__ = [
    "PowerOfTwoConfig",
    "round_power_of_two",
    "quantize_lightnn",
    "is_power_of_two_value",
    "FixedPointFormat",
    "quantize_fixed_point",
    "best_frac_bits",
    "ste_apply",
    "ste_clipped_apply",
    "threshold_grad_sweep",
    "QuantWorkspace",
    "array_fingerprint",
    "LightNNConfig",
    "LightNNQuantizer",
    "FLightNNConfig",
    "FLightNNQuantizer",
    "FLightNNState",
    "ActivationQuantConfig",
    "QuantizedActivation",
    "quantize_activations",
    "residual_group_lasso",
    "regularization_curve",
    "DecomposedFilterBank",
    "decompose_filter_bank",
    "decompose_lightnn_bank",
    "sparsify_model",
    "dead_filter_fraction",
    "WeightQuantStrategy",
    "FullPrecisionWeights",
    "FixedPointWeights",
    "LightNNWeights",
    "FLightNNWeights",
    "QConv2d",
    "QLinear",
    "QuantizationScheme",
    "paper_schemes",
    "scheme_full",
    "scheme_fixed_point",
    "scheme_lightnn",
    "scheme_flightnn",
    "BinaryConnectConfig",
    "BinaryWeights",
    "binarize",
    "scheme_binaryconnect",
    "DoReFaConfig",
    "DoReFaWeights",
    "dorefa_quantize",
    "scheme_dorefa",
    "quantize_model",
    "EncodedWeights",
    "encode_terms",
    "decode_plane",
    "decode_terms",
    "ActivationObserver",
    "calibrate_activations",
    "calibration_scale_zero_point",
    "fixed_point_format_for",
]
