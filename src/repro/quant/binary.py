"""BinaryConnect-style binary weight quantization (paper's ref. [6]).

The paper's related-work section positions LightNNs against binary
networks: BinaryConnect constrains weights to {-a, +a} so multiplications
become XNOR/sign flips, but "these models require an over-parameterized
model size to maintain a high accuracy".  This module provides that
baseline so the claim can be tested: a binary network needs grown width to
match LightNN-1 at equal storage.

Weights quantize to ``sign(w) * a`` with a per-filter scale ``a`` equal to
the mean absolute weight (the XNOR-Net refinement of plain BinaryConnect,
which trains much better and keeps the hardware cost identical when ``a``
folds into batch-norm).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError
from repro.nn.tensor import Tensor
from repro.quant.activations import ActivationQuantConfig
from repro.quant.qlayers import WeightQuantStrategy
from repro.quant.schemes import QuantizationScheme
from repro.quant.ste import ste_clipped_apply

__all__ = ["BinaryConnectConfig", "binarize", "BinaryWeights", "scheme_binaryconnect"]


@dataclass(frozen=True)
class BinaryConnectConfig:
    """Binary weight quantizer settings.

    Args:
        per_filter_scale: Scale each filter by its mean |w| (XNOR-Net
            style).  ``False`` uses a global scale of 1 (plain
            BinaryConnect).
        clip: STE clipping range; gradients vanish outside ``[-clip, clip]``
            as in the original BinaryConnect.
    """

    per_filter_scale: bool = True
    clip: float = 1.0

    def __post_init__(self) -> None:
        if self.clip <= 0:
            raise QuantizationError(f"clip must be positive, got {self.clip}")


def binarize(w: np.ndarray, config: BinaryConnectConfig) -> np.ndarray:
    """Quantize to ``sign(w) * a`` (``a`` per filter or 1)."""
    w = np.asarray(w, dtype=np.float64)
    signs = np.where(w >= 0, 1.0, -1.0)
    if not config.per_filter_scale:
        return signs
    flat = np.abs(w).reshape(w.shape[0], -1)
    scale = flat.mean(axis=1)
    shape = (w.shape[0],) + (1,) * (w.ndim - 1)
    return signs * scale.reshape(shape)


class BinaryWeights(WeightQuantStrategy):
    """1-bit weights: the BinaryConnect baseline of the related work."""

    def __init__(self, config: BinaryConnectConfig | None = None) -> None:
        self.config = config or BinaryConnectConfig()

    def apply(self, weight: Tensor, thresholds: Tensor | None, workspace=None) -> Tensor:
        cfg = self.config
        return ste_clipped_apply(
            weight, lambda data: binarize(data, cfg), low=-cfg.clip, high=cfg.clip
        )

    def quantize_array(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return binarize(w, self.config)

    def filter_k(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        # A binary multiply is a sign flip — zero shifts (cheaper than one).
        return np.zeros(np.asarray(w).shape[0], dtype=int)

    def bits_per_weight(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return np.full(np.asarray(w).shape[0], 1.0)


def scheme_binaryconnect(
    config: BinaryConnectConfig | None = None,
    activation: ActivationQuantConfig | None = None,
) -> QuantizationScheme:
    """Model family: binary weights + 8-bit activations (``BC_1W8A``)."""
    config = config or BinaryConnectConfig()
    activation = activation or ActivationQuantConfig(bits=8)
    return QuantizationScheme(
        name=f"BC_1W{activation.bits}A",
        kind="binary",
        strategy_factory=lambda: BinaryWeights(config),
        activation=activation,
        weight_bits_label=1,
    )
