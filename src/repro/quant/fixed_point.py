"""Uniform fixed-point quantization — the paper's ``FP_{4W8A}`` baseline.

A signed fixed-point format with ``bits`` total bits and ``frac_bits``
fractional bits represents multiples of ``2**-frac_bits`` in
``[-2^(bits-1), 2^(bits-1)-1] * 2^-frac_bits``.  The paper's baseline uses
4-bit weights and 8-bit activations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError

__all__ = ["FixedPointFormat", "quantize_fixed_point", "best_frac_bits"]


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format descriptor.

    Args:
        bits: Total bit width including the sign bit.
        frac_bits: Number of fractional bits (may be negative or exceed
            ``bits`` to express pure scaling).
    """

    bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise QuantizationError(f"fixed-point needs >= 2 bits, got {self.bits}")

    @property
    def step(self) -> float:
        """Quantization step (value of one LSB)."""
        return float(2.0**-self.frac_bits)

    @property
    def min_value(self) -> float:
        """Most negative representable value."""
        return -(2.0 ** (self.bits - 1)) * self.step

    @property
    def max_value(self) -> float:
        """Most positive representable value."""
        return (2.0 ** (self.bits - 1) - 1) * self.step

    def __str__(self) -> str:
        return f"Q{self.bits - 1 - self.frac_bits}.{self.frac_bits}"


def quantize_fixed_point(x: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Round-to-nearest-even quantization with saturation to the format range."""
    x = np.asarray(x, dtype=np.float64)
    codes = np.rint(x / fmt.step)
    codes = np.clip(codes, -(2.0 ** (fmt.bits - 1)), 2.0 ** (fmt.bits - 1) - 1)
    return codes * fmt.step


def best_frac_bits(x: np.ndarray, bits: int, candidates: range = range(-4, 17)) -> int:
    """Pick the fractional-bit count minimising MSE for data ``x``.

    Mirrors how fixed-point DNN deployments calibrate per-layer formats.
    """
    x = np.asarray(x, dtype=np.float64)
    best, best_err = None, np.inf
    for frac in candidates:
        fmt = FixedPointFormat(bits, frac)
        err = float(np.mean((quantize_fixed_point(x, fmt) - x) ** 2))
        if err < best_err:
            best, best_err = frac, err
    return int(best)
