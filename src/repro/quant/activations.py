"""Fixed-point activation quantization.

Every quantized model in the paper uses 8-bit fixed-point activations
("8A"); only the weight treatment differs between schemes.  The quantizer
here is symmetric with a per-call power-of-two scale so the hardware stays
shift-friendly, and trains through with a clipped STE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError
from repro.nn.arena import active_arena
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.quant.ste import ste_clipped_apply

__all__ = ["ActivationQuantConfig", "quantize_activations", "QuantizedActivation"]


@dataclass(frozen=True)
class ActivationQuantConfig:
    """Activation quantizer settings.

    Args:
        bits: Total bit width (sign included).  The paper uses 8.
        max_abs: Fixed clipping range ``[-max_abs, max_abs)``.  Batch-norm
            keeps pre-activation magnitudes of order one, so the default
            range of 8 (a Q3.4 format at 8 bits) loses almost nothing.
    """

    bits: int = 8
    max_abs: float = 8.0

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise QuantizationError(f"activation bits must be >= 2, got {self.bits}")
        if self.max_abs <= 0:
            raise QuantizationError(f"max_abs must be positive, got {self.max_abs}")

    @property
    def step(self) -> float:
        """LSB value of the fixed-point grid."""
        return 2.0 * self.max_abs / (2.0**self.bits)


def quantize_activations(x: np.ndarray, config: ActivationQuantConfig) -> np.ndarray:
    """Quantize to the symmetric fixed-point grid with saturation."""
    step = config.step
    codes = np.rint(np.asarray(x, dtype=np.float64) / step)
    half = 2.0 ** (config.bits - 1)
    codes = np.clip(codes, -half, half - 1)
    return codes * step


class QuantizedActivation(Module):
    """Layer inserting activation quantization into the forward graph.

    Quantizes during both training (with clipped STE backward) and
    inference, so accuracy numbers reflect deployed precision.  Set
    ``enabled=False`` to build a full-precision network with an identical
    module structure.
    """

    def __init__(self, config: ActivationQuantConfig | None = None, enabled: bool = True) -> None:
        super().__init__()
        self.config = config or ActivationQuantConfig()
        self.enabled = enabled
        # When set, the most recent pre-quantization input Tensor is kept
        # (training mode only) for the activation-distribution regularizer.
        self.record_input: bool = False
        self.last_input: Tensor | None = None

    def forward(self, x: Tensor) -> Tensor:
        if self.record_input and self.training:
            self.last_input = x
        if not self.enabled:
            return x
        cfg = self.config
        arena = active_arena()
        if arena is not None:
            return self._fused_forward(x, arena)
        return ste_clipped_apply(
            x,
            lambda data: quantize_activations(data, cfg),
            low=-cfg.max_abs,
            high=cfg.max_abs - cfg.step,
        )

    def _fused_forward(self, x: Tensor, arena) -> Tensor:
        """Arena variant of the quantize + clipped-STE chain.

        Runs the same divide / rint / clip / multiply ufunc sequence as
        :func:`quantize_activations` through a single scratch buffer, and
        builds the STE clip mask in arena bools — four fresh full-size
        allocations per call eliminated, values bit-identical.
        """
        cfg = self.config
        step = cfg.step
        half = 2.0 ** (cfg.bits - 1)
        xd = x.data
        out_data = arena.take(xd.shape, np.float64)
        np.divide(xd, step, out=out_data)
        np.rint(out_data, out=out_data)
        np.clip(out_data, -half, half - 1, out=out_data)
        np.multiply(out_data, step, out=out_data)
        inside = arena.take(xd.shape, np.bool_)
        np.greater_equal(xd, -cfg.max_abs, out=inside)
        upper = arena.take(xd.shape, np.bool_)
        np.less_equal(xd, cfg.max_abs - step, out=upper)
        inside &= upper

        def backward(g: np.ndarray) -> None:
            db = arena.take(g.shape, g.dtype)
            np.multiply(g, inside, out=db)
            x.accumulate_grad(db, own=True)

        return Tensor.from_op(out_data, (x,), backward)

    def __repr__(self) -> str:
        return f"QuantizedActivation(bits={self.config.bits}, max_abs={self.config.max_abs}, enabled={self.enabled})"
