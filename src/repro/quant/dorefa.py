"""DoReFa-style uniform low-bit weight quantization (paper's ref. [31]).

Zhou et al. explore DNN accuracy across a wide range of uniform bit
widths.  This baseline quantizes weights with the DoReFa-Net weight
transform:

    w_q = 2 * quantize_k( tanh(w) / (2 * max|tanh(w)|) + 1/2 ) - 1

where ``quantize_k`` rounds to ``2^bits - 1`` uniform levels in [0, 1].
The result lies in [-1, 1] on a uniform grid — a *normalised* fixed-point
code, complementing :mod:`repro.quant.fixed_point`'s absolute Q-format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError
from repro.nn.tensor import Tensor
from repro.quant.activations import ActivationQuantConfig
from repro.quant.qlayers import WeightQuantStrategy
from repro.quant.schemes import QuantizationScheme
from repro.quant.ste import ste_apply

__all__ = ["DoReFaConfig", "dorefa_quantize", "DoReFaWeights", "scheme_dorefa"]


@dataclass(frozen=True)
class DoReFaConfig:
    """DoReFa weight quantizer settings.

    Args:
        bits: Weight bit width (>= 2; 1-bit DoReFa degenerates to
            BinaryConnect, provided separately).
    """

    bits: int = 4

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise QuantizationError(f"DoReFa weight bits must be >= 2, got {self.bits}")

    @property
    def levels(self) -> int:
        """Number of uniform quantization levels."""
        return 2**self.bits - 1


def dorefa_quantize(w: np.ndarray, config: DoReFaConfig) -> np.ndarray:
    """Apply the DoReFa-Net weight transform (output grid in [-1, 1])."""
    w = np.asarray(w, dtype=np.float64)
    squashed = np.tanh(w)
    max_abs = np.abs(squashed).max()
    if max_abs == 0.0:
        return np.zeros_like(w)
    unit = squashed / (2.0 * max_abs) + 0.5  # in [0, 1]
    levels = config.levels
    return 2.0 * (np.rint(unit * levels) / levels) - 1.0


class DoReFaWeights(WeightQuantStrategy):
    """Uniform low-bit weights via the DoReFa transform."""

    def __init__(self, config: DoReFaConfig | None = None) -> None:
        self.config = config or DoReFaConfig()

    def apply(self, weight: Tensor, thresholds: Tensor | None, workspace=None) -> Tensor:
        cfg = self.config
        return ste_apply(weight, lambda data: dorefa_quantize(data, cfg))

    def quantize_array(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return dorefa_quantize(w, self.config)

    def filter_k(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return np.zeros(np.asarray(w).shape[0], dtype=int)

    def bits_per_weight(self, w: np.ndarray, t: np.ndarray | None) -> np.ndarray:
        return np.full(np.asarray(w).shape[0], float(self.config.bits))


def scheme_dorefa(
    bits: int = 4,
    activation: ActivationQuantConfig | None = None,
) -> QuantizationScheme:
    """Model family: DoReFa weights + 8-bit activations (``DF_xW8A``)."""
    config = DoReFaConfig(bits=bits)
    activation = activation or ActivationQuantConfig(bits=8)
    return QuantizationScheme(
        name=f"DF_{bits}W{activation.bits}A",
        kind="fixed",  # multiplies on real multipliers, like fixed point
        strategy_factory=lambda: DoReFaWeights(config),
        activation=activation,
        weight_bits_label=bits,
    )
