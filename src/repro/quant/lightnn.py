"""LightNN-k quantizer (Ding et al., GLSVLSI 2017) — the paper's baseline.

LightNN-k constrains every weight of the network to a sum of exactly ``k``
powers of two (within the hardware exponent window).  It is the special case
of FLightNN with all gates forced on; the paper's LightNN-1 and LightNN-2
baselines use ``k = 1`` and ``k = 2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import QuantizationError
from repro.nn.tensor import Tensor
from repro.quant.power_of_two import PowerOfTwoConfig, quantize_lightnn
from repro.quant.ste import ste_apply

__all__ = ["LightNNConfig", "LightNNQuantizer"]


@dataclass(frozen=True)
class LightNNConfig:
    """Hyper-parameters of the LightNN-k quantizer.

    Args:
        k: Number of power-of-two terms per weight.
        pow2: Exponent window for each term.
    """

    k: int = 2
    pow2: PowerOfTwoConfig = field(default_factory=PowerOfTwoConfig)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QuantizationError(f"LightNN k must be >= 1, got {self.k}")


class LightNNQuantizer:
    """Uniform-k power-of-two quantizer with STE training gradient."""

    def __init__(self, config: LightNNConfig | None = None) -> None:
        self.config = config or LightNNConfig()

    def quantize(self, w: np.ndarray) -> np.ndarray:
        """Quantize an array to a sum of ``k`` powers of two per element."""
        return quantize_lightnn(w, self.config.k, self.config.pow2)

    def apply(self, weight: Tensor) -> Tensor:
        """Differentiable quantization (STE backward) for training."""
        return ste_apply(weight, self.quantize)

    def filter_k(self, w: np.ndarray) -> np.ndarray:
        """Per-filter shift count — constant ``k`` by construction."""
        w = np.asarray(w)
        return np.full(w.shape[0], self.config.k, dtype=int)
