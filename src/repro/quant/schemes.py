"""Model-level quantization schemes — the paper's five model families.

A :class:`QuantizationScheme` bundles everything the model builders and the
hardware models need to know about one row of the paper's tables: how to
quantize weights, how many activation bits to use, the regularization
lambdas (FLightNN only) and the paper's label convention
(``Full``, ``L-2_8W8A``, ``L-1_4W8A``, ``FP_4W8A``, ``FL``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.quant.activations import ActivationQuantConfig
from repro.quant.fixed_point import FixedPointFormat
from repro.quant.flightnn import FLightNNConfig
from repro.quant.lightnn import LightNNConfig
from repro.quant.power_of_two import PowerOfTwoConfig
from repro.quant.qlayers import (
    FixedPointWeights,
    FLightNNWeights,
    FullPrecisionWeights,
    LightNNWeights,
    WeightQuantStrategy,
)

__all__ = [
    "QuantizationScheme",
    "scheme_full",
    "scheme_fixed_point",
    "scheme_lightnn",
    "scheme_flightnn",
    "paper_schemes",
]


@dataclass(frozen=True)
class QuantizationScheme:
    """One quantized-model recipe.

    Attributes:
        name: Paper-style label (e.g. ``"L-1_4W8A"``).
        kind: One of ``full | fixed | lightnn | flightnn``.
        strategy_factory: Zero-arg callable building a fresh weight
            strategy per layer (strategies are cheap and stateless, but a
            factory keeps per-layer independence explicit).
        activation: Activation quantizer settings, ``None`` for FP32
            activations.
        lambdas: Residual group-lasso coefficients (FLightNN only).
        weight_bits_label: Nominal weight bits, for the ``xWyA`` subscript.
    """

    name: str
    kind: str
    strategy_factory: Callable[[], WeightQuantStrategy]
    activation: ActivationQuantConfig | None
    lambdas: tuple[float, ...] = ()
    weight_bits_label: int | None = None

    def make_strategy(self) -> WeightQuantStrategy:
        """Build a fresh weight-quantization strategy for one layer."""
        return self.strategy_factory()

    @property
    def quantizes_activations(self) -> bool:
        """Whether activations are quantized (all schemes except ``Full``)."""
        return self.activation is not None

    @property
    def is_flightnn(self) -> bool:
        """Whether the scheme trains per-filter flexible k."""
        return self.kind == "flightnn"

    @property
    def uses_shift_multiplier(self) -> bool:
        """Whether multiplies are realised as shifts ((F)LightNN families)."""
        return self.kind in ("lightnn", "flightnn")


_ACT8 = ActivationQuantConfig(bits=8)


def scheme_full() -> QuantizationScheme:
    """32-bit floating-point reference model (paper's ``Full``)."""
    return QuantizationScheme(
        name="Full",
        kind="full",
        strategy_factory=FullPrecisionWeights,
        activation=None,
        weight_bits_label=32,
    )


def scheme_fixed_point(
    fmt: FixedPointFormat | None = None,
    activation: ActivationQuantConfig = _ACT8,
) -> QuantizationScheme:
    """Fixed-point baseline (paper's ``FP_4W8A``)."""
    fmt = fmt or FixedPointFormat(bits=4, frac_bits=3)
    return QuantizationScheme(
        name=f"FP_{fmt.bits}W{activation.bits}A",
        kind="fixed",
        strategy_factory=lambda: FixedPointWeights(fmt),
        activation=activation,
        weight_bits_label=fmt.bits,
    )


def scheme_lightnn(
    k: int,
    pow2: PowerOfTwoConfig | None = None,
    activation: ActivationQuantConfig = _ACT8,
) -> QuantizationScheme:
    """LightNN-k baseline (``L-1_4W8A`` for k=1, ``L-2_8W8A`` for k=2)."""
    if k < 1:
        raise ConfigurationError(f"LightNN k must be >= 1, got {k}")
    pow2 = pow2 or PowerOfTwoConfig()
    weight_bits = k * pow2.bits_per_term
    return QuantizationScheme(
        name=f"L-{k}_{weight_bits}W{activation.bits}A",
        kind="lightnn",
        strategy_factory=lambda: LightNNWeights(LightNNConfig(k=k, pow2=pow2)),
        activation=activation,
        weight_bits_label=weight_bits,
    )


def scheme_flightnn(
    lambdas: Sequence[float],
    k_max: int = 2,
    pow2: PowerOfTwoConfig | None = None,
    activation: ActivationQuantConfig = _ACT8,
    label: str = "FL",
) -> QuantizationScheme:
    """FLightNN with residual regularization coefficients ``lambdas``.

    The paper trains two FLightNNs per network (subscripts ``a``/``b``) by
    varying ``lambdas``; pass e.g. ``label="FL_a"`` to tag them.
    """
    lambdas = tuple(float(v) for v in lambdas)
    if len(lambdas) != k_max:
        raise ConfigurationError(
            f"need one lambda per level: got {len(lambdas)}, expected k_max={k_max}"
        )
    pow2 = pow2 or PowerOfTwoConfig()
    config = FLightNNConfig(k_max=k_max, pow2=pow2)
    return QuantizationScheme(
        name=label,
        kind="flightnn",
        strategy_factory=lambda: FLightNNWeights(config),
        activation=activation,
        lambdas=lambdas,
        weight_bits_label=k_max * pow2.bits_per_term,
    )


def paper_schemes(
    fl_lambdas_a: Sequence[float] = (1e-5, 3e-5),
    fl_lambdas_b: Sequence[float] = (1e-6, 3e-6),
) -> dict[str, QuantizationScheme]:
    """The five model families of Tables 2-5, keyed by short name.

    ``FL_a`` uses stronger regularization (cheaper/faster model), ``FL_b``
    weaker (more accurate), matching the paper's subscript convention.
    """
    return {
        "Full": scheme_full(),
        "L-2": scheme_lightnn(2),
        "L-1": scheme_lightnn(1),
        "FP": scheme_fixed_point(),
        "FL_a": scheme_flightnn(fl_lambdas_a, label="FL_a"),
        "FL_b": scheme_flightnn(fl_lambdas_b, label="FL_b"),
    }
