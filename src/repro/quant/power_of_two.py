"""Power-of-two rounding — the primitive behind LightNN and FLightNN.

The paper's Sec. 3 defines ``R(x) = sign(x) * 2^[log2(|x|)]`` which rounds a
value to the nearest power of two ([.] is round-to-integer on the exponent),
and the recursive LightNN-k quantizer

    Q_k(w) = Q_{k-1}(w) + Q_1(w - Q_{k-1}(w)),   Q_1(w) = R(w).

Hardware constrains the exponent to a small signed range (the "4W" encoding
is one sign bit plus a 3-bit exponent field), so :class:`PowerOfTwoConfig`
carries an explicit exponent window; values rounding below the window snap
to zero (representable — a gated-off shifter), values above clamp to the top
exponent.

Note on [log2|x|] rounding: rounding the *exponent* to the nearest integer
is not the same as rounding the *value* to the nearest power of two.  The
midpoint between 2^e and 2^(e+1) in exponent space is 2^(e+0.5) = 2^e*sqrt(2)
(geometric mean), not 1.5*2^e.  We follow the paper and round in exponent
space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError

__all__ = ["PowerOfTwoConfig", "round_power_of_two", "quantize_lightnn", "is_power_of_two_value"]


@dataclass(frozen=True)
class PowerOfTwoConfig:
    """Exponent window for power-of-two codes.

    Args:
        exp_min: Smallest representable exponent (inclusive).  Residuals that
            round below it quantize to zero.
        exp_max: Largest representable exponent (inclusive).  Larger values
            clamp to ``2**exp_max``.

    The default window [-6, 1] gives 8 exponent levels, i.e. a 3-bit exponent
    field plus a sign bit — the paper's 4-bit-per-shift "4W" encoding.
    """

    exp_min: int = -6
    exp_max: int = 1

    def __post_init__(self) -> None:
        if self.exp_min > self.exp_max:
            raise QuantizationError(
                f"exp_min ({self.exp_min}) must not exceed exp_max ({self.exp_max})"
            )

    @property
    def levels(self) -> int:
        """Number of representable exponents."""
        return self.exp_max - self.exp_min + 1

    @property
    def bits_per_term(self) -> int:
        """Bits to encode one shift term: sign + exponent field."""
        return 1 + max(1, int(np.ceil(np.log2(self.levels))))

    @property
    def min_magnitude(self) -> float:
        """Smallest non-zero representable magnitude."""
        return float(2.0**self.exp_min)

    @property
    def max_magnitude(self) -> float:
        """Largest representable magnitude."""
        return float(2.0**self.exp_max)


def round_power_of_two(x: np.ndarray, config: PowerOfTwoConfig | None = None) -> np.ndarray:
    """Round elementwise to the nearest power of two: the paper's ``R(x)``.

    Zeros map to zero.  With a ``config``, exponents round within
    ``[exp_min, exp_max]``; magnitudes whose rounded exponent falls below
    ``exp_min`` (including the underflow midpoint) become zero, and larger
    ones clamp to ``2**exp_max``.
    """
    x = np.asarray(x, dtype=np.float64)
    magnitude = np.abs(x)
    nonzero = magnitude > 0
    exponent = np.zeros_like(x)
    with np.errstate(divide="ignore"):
        exponent[nonzero] = np.rint(np.log2(magnitude[nonzero]))
    out = np.where(nonzero, np.sign(x) * np.exp2(exponent), 0.0)
    if config is not None:
        underflow = exponent < config.exp_min
        out = np.where(underflow, 0.0, out)
        overflow = exponent > config.exp_max
        out = np.where(overflow, np.sign(x) * config.max_magnitude, out)
    return out


def quantize_lightnn(
    w: np.ndarray,
    k: int,
    config: PowerOfTwoConfig | None = None,
) -> np.ndarray:
    """LightNN-k quantization: ``Q_k`` of Sec. 3 (sum of ``k`` powers of two).

    Args:
        w: Full-precision weights (any shape).
        k: Number of power-of-two terms per weight; ``k=0`` returns zeros.
        config: Exponent window; ``None`` for unbounded exponents.
    """
    if k < 0:
        raise QuantizationError(f"k must be non-negative, got {k}")
    w = np.asarray(w, dtype=np.float64)
    quantized = np.zeros_like(w)
    for _ in range(k):
        residual = w - quantized
        quantized = quantized + round_power_of_two(residual, config)
    return quantized


def is_power_of_two_value(x: np.ndarray, config: PowerOfTwoConfig | None = None) -> np.ndarray:
    """Boolean mask: which elements are zero or exactly ``±2^e`` (``e`` in window)."""
    x = np.asarray(x, dtype=np.float64)
    magnitude = np.abs(x)
    zero = magnitude == 0
    with np.errstate(divide="ignore"):
        exponent = np.where(zero, 0.0, np.log2(np.where(zero, 1.0, magnitude)))
    exact = exponent == np.rint(exponent)
    if config is not None:
        exact &= (exponent >= config.exp_min) & (exponent <= config.exp_max)
    return zero | exact
