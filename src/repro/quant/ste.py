"""Straight-through estimator (STE) plumbing.

The paper (Sec. 4.2) trains through non-differentiable quantizers by defining
``d(wq)/d(w) := 1`` (Bengio et al., 2013): the forward pass sees quantized
values, the backward pass routes the upstream gradient to the full-precision
master copy unchanged.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["ste_apply", "ste_clipped_apply"]


def ste_apply(x: Tensor, transform: Callable[[np.ndarray], np.ndarray]) -> Tensor:
    """Apply a non-differentiable ``transform`` with identity backward.

    Args:
        x: Input tensor (typically a full-precision master weight).
        transform: Array function executed on the forward values.
    """
    out_data = transform(x.data)

    def backward(g: np.ndarray) -> None:
        x.accumulate_grad(g)

    return Tensor.from_op(np.asarray(out_data), (x,), backward)


def ste_clipped_apply(
    x: Tensor,
    transform: Callable[[np.ndarray], np.ndarray],
    low: float,
    high: float,
) -> Tensor:
    """STE variant that zeroes gradient outside ``[low, high]``.

    Saturating quantizers (fixed point) conventionally clip the estimator so
    weights pushed past the representable range stop receiving gradient in
    the saturating direction.
    """
    out_data = transform(x.data)
    inside = (x.data >= low) & (x.data <= high)

    def backward(g: np.ndarray) -> None:
        x.accumulate_grad(g * inside)

    return Tensor.from_op(np.asarray(out_data), (x,), backward)
