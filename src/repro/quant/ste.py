"""Straight-through estimator (STE) plumbing.

The paper (Sec. 4.2) trains through non-differentiable quantizers by defining
``d(wq)/d(w) := 1`` (Bengio et al., 2013): the forward pass sees quantized
values, the backward pass routes the upstream gradient to the full-precision
master copy unchanged.

This module also hosts :func:`threshold_grad_sweep`, the reverse-mode
sigmoid-relaxed sweep over the FLightNN level recursion that produces
``dL/dt``.  It lives here (rather than inside the quantizer's backward
closure) so the quantizer, the training fast path and the gradient-check
suite all exercise the *same* code operating on a shared
:class:`~repro.quant.workspace.QuantWorkspace` state.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor, _stable_sigmoid

__all__ = ["ste_apply", "ste_clipped_apply", "threshold_grad_sweep"]


def threshold_grad_sweep(
    residuals: Sequence[np.ndarray],
    rounded: Sequence[np.ndarray],
    norms: np.ndarray,
    thresholds: np.ndarray,
    g_flat: np.ndarray,
    tau: float,
    norm_scale: float,
) -> np.ndarray:
    """Reverse-mode threshold gradient of the gated level recursion.

    Implements the paper's Sec. 4.2 ``dL/dt`` with each hard indicator
    ``1(s_j > t_j)`` relaxed to ``sigma((s_j - t_j) / tau)`` and STE
    (``dR/dx := 1``) through the rounding — evaluated backwards over the
    levels, which is algebraically identical to the paper's forward-written
    sum.

    Args:
        residuals / rounded / norms: The per-level arrays of one
            quantization pass (see
            :class:`~repro.quant.flightnn.FLightNNState`).
        thresholds: Current threshold values ``t``; shape (k_max,).
        g_flat: Upstream gradient on the quantized weights, flattened to
            the (F, D) filter matrix.
        tau: Sigmoid temperature of the relaxation.
        norm_scale: ``1/sqrt(D)`` under the RMS norm convention, else 1.

    Returns:
        Gradient w.r.t. ``thresholds``; shape (k_max,).
    """
    k_max = len(residuals)
    grad_q = g_flat  # dL/d(q_j) — constant across levels
    grad_r = np.zeros_like(g_flat)  # dL/d(r_j), accumulated backwards
    grad_t = np.zeros(k_max)
    for j in reversed(range(k_max)):
        r_j = residuals[j]
        rounded_j = rounded[j]
        s_j = norms[j]
        sig = _stable_sigmoid((s_j - thresholds[j]) / tau)
        sig_prime = sig * (1.0 - sig) / tau
        # dL/d(gate_j), via q_{j+1} = q_j + gate*R and r_{j+1} = r_j - gate*R.
        d_gate = ((grad_q - grad_r) * rounded_j).sum(axis=1)
        d_s = d_gate * sig_prime
        grad_t[j] = -d_s.sum()
        # dL/dR_j: gate weighting uses the relaxed sigma value.
        d_rounded = sig[:, None] * (grad_q - grad_r)
        # dL/dr_j: STE through R plus the norm path s_j = ||r_j|| * scale.
        safe_s = np.where(s_j > 0, s_j, 1.0)
        d_norm_dir = (r_j / safe_s[:, None]) * norm_scale
        d_norm_dir[s_j == 0] = 0.0
        grad_r = grad_r + d_rounded + d_s[:, None] * d_norm_dir
    return grad_t


def ste_apply(x: Tensor, transform: Callable[[np.ndarray], np.ndarray]) -> Tensor:
    """Apply a non-differentiable ``transform`` with identity backward.

    Args:
        x: Input tensor (typically a full-precision master weight).
        transform: Array function executed on the forward values.
    """
    out_data = transform(x.data)

    def backward(g: np.ndarray) -> None:
        x.accumulate_grad(g)

    return Tensor.from_op(np.asarray(out_data), (x,), backward)


def ste_clipped_apply(
    x: Tensor,
    transform: Callable[[np.ndarray], np.ndarray],
    low: float,
    high: float,
) -> Tensor:
    """STE variant that zeroes gradient outside ``[low, high]``.

    Saturating quantizers (fixed point) conventionally clip the estimator so
    weights pushed past the representable range stop receiving gradient in
    the saturating direction.
    """
    out_data = transform(x.data)
    inside = (x.data >= low) & (x.data <= high)

    def backward(g: np.ndarray) -> None:
        x.accumulate_grad(g * inside)

    return Tensor.from_op(np.asarray(out_data), (x,), backward)
