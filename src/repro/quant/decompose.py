"""Filter decomposition (paper Fig. 3).

A convolution with a ``k_i = 2`` filter equals the sum of two convolutions,
each with a ``k_i = 1`` (single power-of-two) filter.  This transformation
lets FLightNN hardware be implemented as a LightNN-1 datapath plus one
feature-map summation per layer: each filter contributes exactly ``k_i``
single-shift filter passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError
from repro.quant.flightnn import FLightNNQuantizer
from repro.quant.power_of_two import (
    PowerOfTwoConfig,
    is_power_of_two_value,
    round_power_of_two,
)

__all__ = ["DecomposedFilterBank", "decompose_filter_bank", "decompose_lightnn_bank"]


@dataclass
class DecomposedFilterBank:
    """Result of splitting a flexible-k filter bank into single-shift banks.

    Attributes:
        terms: List of length ``k_max``; ``terms[j]`` holds the level-``j``
            single-shift filter bank (same shape as the quantized weights).
            Every element of every term is zero or an exact power of two.
        filter_k: Effective shift count per filter.
    """

    terms: list[np.ndarray]
    filter_k: np.ndarray

    @property
    def total_single_shift_filters(self) -> int:
        """Number of k=1 filter passes the LightNN-1 datapath must run."""
        return int(self.filter_k.sum())

    def reconstruct(self) -> np.ndarray:
        """Sum the single-shift banks back into the quantized weights."""
        return np.sum(self.terms, axis=0)


def decompose_filter_bank(
    w: np.ndarray,
    thresholds: np.ndarray,
    quantizer: FLightNNQuantizer,
) -> DecomposedFilterBank:
    """Split ``Q_k(w | t)`` into per-level single-shift filter banks.

    The reconstruction invariant ``sum_j terms[j] == Q_k(w | t)`` holds
    exactly (each level's gated rounded residual *is* the term), so by
    linearity of convolution the Fig. 3 equivalence follows.
    """
    state = quantizer.quantize(w, thresholds)
    shape = np.asarray(w).shape
    terms: list[np.ndarray] = []
    for j in range(quantizer.config.k_max):
        gated = state.gates[j][:, None] * state.rounded[j]
        term = gated.reshape(shape)
        if not is_power_of_two_value(term).all():
            raise QuantizationError(
                f"decomposition level {j} produced a non power-of-two entry"
            )
        terms.append(term)
    return DecomposedFilterBank(terms=terms, filter_k=quantizer.filter_k(w, thresholds))


def decompose_lightnn_bank(
    w: np.ndarray,
    k: int,
    config: PowerOfTwoConfig,
) -> DecomposedFilterBank:
    """Split a uniform-k LightNN filter bank into single-shift banks.

    Replays the greedy residual recursion of
    :func:`repro.quant.power_of_two.quantize_lightnn` and captures each
    level's contribution as a separate term, so
    ``sum_j terms[j] == quantize_lightnn(w, k, config)`` holds exactly.
    LightNN has no gates: every filter reports ``filter_k == k`` even when a
    level's contribution rounds to zero (the shift slot is still budgeted in
    hardware), matching :meth:`LightNNQuantizer.filter_k`.
    """
    if k < 1:
        raise QuantizationError(f"LightNN decomposition requires k >= 1, got {k}")
    arr = np.asarray(w, dtype=np.float64)
    quantized = np.zeros_like(arr)
    terms = []
    for _ in range(k):
        term = round_power_of_two(arr - quantized, config)
        if not is_power_of_two_value(term).all():
            raise QuantizationError(
                "LightNN decomposition produced a non power-of-two entry"
            )
        terms.append(term)
        quantized = quantized + term
    filter_k = np.full(arr.shape[0] if arr.ndim else 1, k, dtype=np.int64)
    return DecomposedFilterBank(terms=terms, filter_k=filter_k)
