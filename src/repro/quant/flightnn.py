"""FLightNN: per-filter flexible-k power-of-two quantization (paper Sec. 4).

The quantizer of the paper:

    Q_k(w_i | t) = sum_{j=0}^{k-1}  1(||r_{i,j}||_2 > t_j) * R(r_{i,j})
    r_{i,j}      = w_i - Q_j(w_i | t)

``w_i`` is the i-th convolutional filter (a slice along axis 0 of the weight
tensor), ``t`` is a trainable per-level threshold vector shared by all
filters of the layer, and ``R`` rounds to the nearest power of two within
the hardware exponent window.

Training-time gradients (Sec. 4.2):

* ``dL/dw`` uses the straight-through estimator: the upstream gradient on
  the quantized weights passes to the full-precision master copy unchanged.
* ``dL/dt`` relaxes each hard indicator ``1(s > t_j)`` to a sigmoid
  ``sigma(s - t_j)`` and applies STE (``dR/dx := 1``) to the rounding,
  exactly the recursion in the paper's threshold-gradient equation.  We
  evaluate it as a reverse-mode sweep over the level recursion, which is
  algebraically identical to the paper's forward-written sum.

Effective per-filter shift count: the paper defines
``k_i = sum_j 1(||r_{i,j}|| > t_j)``.  With the hardware exponent window, a
level whose rounded residual is identically zero contributes no shift (and,
after the Fig-3 decomposition, no hardware work or storage), so
:meth:`FLightNNQuantizer.filter_k` additionally requires the level's rounded
contribution to be non-zero.  At the paper's initialisation ``t = 0`` this
is what makes the group-lasso residual regularizer (``lambda`` sweeps)
produce genuinely cheaper models: residuals squeezed under the smallest
representable power of two vanish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import QuantizationError, ShapeError
from repro.nn.tensor import Tensor, _stable_sigmoid
from repro.quant.power_of_two import PowerOfTwoConfig, round_power_of_two
from repro.quant.ste import threshold_grad_sweep
from repro.utils.profiler import profile_phase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.quant.workspace import QuantWorkspace

__all__ = ["FLightNNConfig", "FLightNNQuantizer", "FLightNNState"]


@dataclass(frozen=True)
class FLightNNConfig:
    """Hyper-parameters of the FLightNN quantizer.

    Args:
        k_max: Largest number of shifts per filter (the paper uses 2).
        pow2: Exponent window for each power-of-two term.
        norm_per_element: When ``True``, compare thresholds against the
            *RMS* residual (norm divided by sqrt(filter size)) instead of
            the raw L2 norm, making one threshold meaningful across layers
            whose filters have very different sizes.  Default ``True``.
        sigmoid_temperature: Width ``tau`` of the relaxed indicator
            ``sigma((s - t) / tau)`` used for threshold gradients.  The
            paper writes ``sigma(s - t)`` against raw L2 norms; with RMS
            norms (a factor ~sqrt(filter size) smaller) the relaxation
            width must shrink accordingly or every filter sits in the
            sigmoid's linear region and the gradient loses per-filter
            selectivity.  Set to 1.0 with ``norm_per_element=False`` to
            recover the paper's literal form.
    """

    k_max: int = 2
    pow2: PowerOfTwoConfig = field(default_factory=PowerOfTwoConfig)
    norm_per_element: bool = True
    sigmoid_temperature: float = 0.02

    def __post_init__(self) -> None:
        if self.k_max < 1:
            raise QuantizationError(f"k_max must be >= 1, got {self.k_max}")
        if self.sigmoid_temperature <= 0:
            raise QuantizationError(
                f"sigmoid_temperature must be positive, got {self.sigmoid_temperature}"
            )


@dataclass
class FLightNNState:
    """Cache of one forward quantization pass (all per-level arrays).

    Attributes:
        residuals: ``residuals[j]`` is the flattened residual entering level
            ``j``; shape (F, D).
        rounded: ``rounded[j] = R(residuals[j])``; shape (F, D).
        norms: per-filter residual norms ``s_j``; shape (k_max, F).
        gates: hard indicator values; shape (k_max, F), boolean.
        quantized: final quantized weights, original shape.
    """

    residuals: list[np.ndarray]
    rounded: list[np.ndarray]
    norms: np.ndarray
    gates: np.ndarray
    quantized: np.ndarray


class FLightNNQuantizer:
    """Quantize filter banks with per-filter flexible ``k`` (the paper's core).

    The object is stateless between calls; every method takes the
    full-precision weights and current thresholds explicitly.
    """

    def __init__(self, config: FLightNNConfig | None = None) -> None:
        self.config = config or FLightNNConfig()

    # -- forward ----------------------------------------------------------------

    def _filter_matrix(self, w: np.ndarray) -> np.ndarray:
        if w.ndim < 2:
            raise ShapeError(
                f"FLightNN quantizes filter banks (ndim >= 2, filter axis 0); got shape {w.shape}"
            )
        return w.reshape(w.shape[0], -1)

    def filter_norm(self, r: np.ndarray) -> np.ndarray:
        """Per-filter residual norm under the configured convention (RMS/L2)."""
        s = np.linalg.norm(r, axis=1)
        if self.config.norm_per_element:
            s = s / np.sqrt(r.shape[1])
        return s

    def quantize(self, w: np.ndarray, thresholds: np.ndarray) -> FLightNNState:
        """Run the hard (inference) quantization recursion and cache it.

        Args:
            w: Full-precision weights, filter axis first; shape (F, ...).
            thresholds: Per-level thresholds ``t``; shape (k_max,).
        """
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if thresholds.shape != (self.config.k_max,):
            raise ShapeError(
                f"thresholds shape {thresholds.shape} != (k_max,) = ({self.config.k_max},)"
            )
        flat = self._filter_matrix(np.asarray(w, dtype=np.float64))
        f = flat.shape[0]
        k_max = self.config.k_max

        with profile_phase("quantize"):
            residuals: list[np.ndarray] = []
            rounded: list[np.ndarray] = []
            norms = np.zeros((k_max, f))
            gates = np.zeros((k_max, f), dtype=bool)
            q = np.zeros_like(flat)
            r = flat.copy()
            for j in range(k_max):
                residuals.append(r)
                norms[j] = self.filter_norm(r)
                gates[j] = norms[j] > thresholds[j]
                r_j = round_power_of_two(r, self.config.pow2)
                rounded.append(r_j)
                gate_col = gates[j][:, None]
                q = q + gate_col * r_j
                r = r - gate_col * r_j
        return FLightNNState(
            residuals=residuals,
            rounded=rounded,
            norms=norms,
            gates=gates,
            quantized=q.reshape(np.asarray(w).shape),
        )

    def residual_at_level(self, w: np.ndarray, thresholds: np.ndarray, level: int) -> np.ndarray:
        """The flattened residual entering quantization level ``level``.

        Runs only the first ``level`` rounding passes of the recursion —
        level 0 is the raw filter matrix, free of any rounding — producing
        an array bitwise identical to ``quantize(w, t).residuals[level]``
        at a fraction of the cost.  The proximal regularizer uses this:
        each of its per-level shrink steps needs exactly one residual, not
        the whole decomposition.
        """
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if thresholds.shape != (self.config.k_max,):
            raise ShapeError(
                f"thresholds shape {thresholds.shape} != (k_max,) = ({self.config.k_max},)"
            )
        if not 0 <= level < self.config.k_max:
            raise QuantizationError(
                f"level must be in [0, k_max) = [0, {self.config.k_max}), got {level}"
            )
        flat = self._filter_matrix(np.asarray(w, dtype=np.float64))
        with profile_phase("quantize"):
            r = flat.copy()
            for j in range(level):
                s = self.filter_norm(r)
                gate_col = (s > thresholds[j])[:, None]
                r_j = round_power_of_two(r, self.config.pow2)
                r = r - gate_col * r_j
        return r

    # -- autograd integration -----------------------------------------------------

    def apply(
        self,
        weight: Tensor,
        thresholds: Tensor,
        workspace: "QuantWorkspace | None" = None,
    ) -> Tensor:
        """Differentiable quantization: returns ``Q_k(w | t)`` as a graph node.

        Backward implements the paper's Sec. 4.2 gradients: STE for the
        weights and the sigmoid-relaxed recursion for the thresholds
        (:func:`~repro.quant.ste.threshold_grad_sweep`).

        Args:
            workspace: Optional :class:`~repro.quant.workspace.QuantWorkspace`
                serving the (cached) quantization state, so the decomposition
                is shared with every other consumer in the same step.
        """
        if workspace is not None:
            state = workspace.state(weight, thresholds)
        else:
            state = self.quantize(weight.data, thresholds.data)
        f = state.gates.shape[1]
        d = state.residuals[0].shape[1]
        norm_scale = 1.0 / np.sqrt(d) if self.config.norm_per_element else 1.0

        def backward(g: np.ndarray) -> None:
            if weight.requires_grad:
                weight.accumulate_grad(g)  # straight-through estimator
            if not thresholds.requires_grad:
                return
            grad_t = threshold_grad_sweep(
                state.residuals,
                state.rounded,
                state.norms,
                thresholds.data,
                g.reshape(f, d),
                self.config.sigmoid_temperature,
                norm_scale,
            )
            thresholds.accumulate_grad(grad_t)

        return Tensor.from_op(state.quantized, (weight, thresholds), backward)

    # -- reporting ------------------------------------------------------------------

    def filter_k(
        self,
        w: np.ndarray,
        thresholds: np.ndarray,
        state: FLightNNState | None = None,
    ) -> np.ndarray:
        """Effective shift count per filter (see module docstring).

        Args:
            state: Optional precomputed quantization pass for ``(w, t)``
                (e.g. from a :class:`~repro.quant.workspace.QuantWorkspace`);
                avoids re-running the recursion.

        Returns:
            Integer array of shape (F,) with values in ``[0, k_max]``.
        """
        if state is None:
            state = self.quantize(w, thresholds)
        nonzero = np.array([(r != 0).any(axis=1) for r in state.rounded])  # (k_max, F)
        return (state.gates & nonzero).sum(axis=0).astype(int)

    def residual_norms(
        self,
        w: np.ndarray,
        thresholds: np.ndarray,
        state: FLightNNState | None = None,
    ) -> np.ndarray:
        """Per-level, per-filter residual norms ``s_{i,j}``; shape (k_max, F)."""
        if state is None:
            state = self.quantize(w, thresholds)
        return state.norms

    def gate_pressure_gradient(
        self,
        w: np.ndarray,
        thresholds: np.ndarray,
        lambdas: np.ndarray,
        state: FLightNNState | None = None,
    ) -> np.ndarray:
        """Threshold gradient of the relaxed gate-count penalty.

        Penalising the expected number of active gates,
        ``L_gate = sum_j lambda_j * mean_i sigma(s_{i,j} - t_j)``,
        gives ``dL_gate/dt_j = -lambda_j * mean_i sigma'(s_{i,j} - t_j)``:
        a systematic upward pressure on every threshold, strongest for
        filters sitting near the gate boundary.  This is the L0-style
        differentiable sparsity objective of Louizos et al. (the paper's
        ref. [18]) applied to the per-filter shift gates; combined with the
        group-lasso residual shrinkage it makes ``lambda`` an effective
        storage knob at short training budgets while the task loss pushes
        back through the paper's Sec. 4.2 threshold gradient wherever a
        shift genuinely matters.

        Returns:
            Gradient w.r.t. ``thresholds``; shape (k_max,).  Add to the
            threshold parameter's ``.grad`` before the SGD step.
        """
        lambdas = np.asarray(lambdas, dtype=np.float64)
        if lambdas.shape != (self.config.k_max,):
            raise ShapeError(
                f"lambdas shape {lambdas.shape} != (k_max,) = ({self.config.k_max},)"
            )
        if state is None:
            state = self.quantize(w, thresholds)
        norms = state.norms  # (k_max, F)
        tau = self.config.sigmoid_temperature
        sig = _stable_sigmoid((norms - np.asarray(thresholds, dtype=np.float64)[:, None]) / tau)
        sig_prime = sig * (1.0 - sig) / tau
        return -lambdas * sig_prime.mean(axis=1)
