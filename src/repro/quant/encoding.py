"""Hardware encoding of power-of-two weights.

A deployed (F)LightNN stores each weight as ``k`` codes of
``1 + exponent_bits`` bits: a sign bit and a biased exponent selecting the
shift amount, with a reserved all-zeros exponent code for the value 0 (a
gated-off shifter).  This module packs quantized filter banks into those
integer code arrays — what an FPGA weight memory actually holds — and
decodes them back, bit-exactly.

The encoding operates on the Fig. 3 decomposition: level ``j``'s
single-shift term becomes code plane ``j``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError
from repro.quant.decompose import DecomposedFilterBank
from repro.quant.power_of_two import PowerOfTwoConfig

__all__ = ["EncodedWeights", "encode_terms", "decode_plane", "decode_terms"]

_ZERO_CODE = 0  # reserved exponent code for a gated-off (zero) term


@dataclass
class EncodedWeights:
    """Packed shift-code planes for one filter bank.

    Attributes:
        signs: uint8 array (k_max, *weight_shape); 1 = negative.
        exponent_codes: uint8 array, same shape; 0 is the reserved zero
            code, otherwise ``code = exponent - exp_min + 1``.
        config: The exponent window the codes are relative to.
        filter_k: Effective shifts per filter (for per-filter storage).
    """

    signs: np.ndarray
    exponent_codes: np.ndarray
    config: PowerOfTwoConfig
    filter_k: np.ndarray

    @property
    def bits_per_code(self) -> int:
        """Bits of one stored code: sign + exponent field (zero included)."""
        levels = self.config.levels + 1  # exponents plus the zero code
        return 1 + int(np.ceil(np.log2(levels)))

    @property
    def total_bits(self) -> int:
        """Storage with per-filter k: only active planes of each filter."""
        weights_per_filter = int(np.prod(self.signs.shape[2:]))
        return int(self.filter_k.sum()) * weights_per_filter * self.bits_per_code


def encode_terms(bank: DecomposedFilterBank, config: PowerOfTwoConfig) -> EncodedWeights:
    """Pack a decomposed filter bank into sign/exponent code planes.

    Raises:
        QuantizationError: If any term value is not zero or ``±2^e`` with
            ``e`` inside the window.
    """
    signs = []
    codes = []
    for term in bank.terms:
        term = np.asarray(term, dtype=np.float64)
        sign_plane = (term < 0).astype(np.uint8)
        magnitude = np.abs(term)
        zero = magnitude == 0
        with np.errstate(divide="ignore"):
            exponent = np.where(zero, config.exp_min, np.log2(np.where(zero, 1.0, magnitude)))
        if not np.all(exponent == np.rint(exponent)):
            raise QuantizationError("term contains a non power-of-two magnitude")
        exponent = np.rint(exponent).astype(np.int64)
        if (~zero & ((exponent < config.exp_min) | (exponent > config.exp_max))).any():
            raise QuantizationError("term exponent outside the configured window")
        code_plane = np.where(zero, _ZERO_CODE, exponent - config.exp_min + 1)
        signs.append(sign_plane)
        codes.append(code_plane.astype(np.uint8))
    return EncodedWeights(
        signs=np.stack(signs),
        exponent_codes=np.stack(codes),
        config=config,
        filter_k=bank.filter_k.copy(),
    )


def decode_plane(encoded: EncodedWeights, level: int) -> np.ndarray:
    """Decode one shift-code plane back to its signed power-of-two values.

    This is the hardware-faithful source for the engine's shift-plane
    kernel: plane ``level`` is exactly the level-``level`` single-shift
    term of the Fig. 3 decomposition.
    """
    if not 0 <= level < encoded.signs.shape[0]:
        raise QuantizationError(
            f"plane index {level} outside encoded k_max={encoded.signs.shape[0]}"
        )
    config = encoded.config
    sign_plane = encoded.signs[level]
    code_plane = encoded.exponent_codes[level]
    zero = code_plane == _ZERO_CODE
    exponent = code_plane.astype(np.int64) - 1 + config.exp_min
    values = np.where(zero, 0.0, np.exp2(exponent.astype(np.float64)))
    return np.where(sign_plane.astype(bool), -values, values)


def decode_terms(encoded: EncodedWeights) -> np.ndarray:
    """Reconstruct the quantized weights exactly from the code planes."""
    total = np.zeros(encoded.signs.shape[1:], dtype=np.float64)
    for level in range(encoded.signs.shape[0]):
        total += decode_plane(encoded, level)
    return total
