"""Deterministic random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed or a
ready-made :class:`numpy.random.Generator`.  Funnelling both through
:func:`as_generator` keeps experiments reproducible without global state.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["as_generator", "spawn_generators"]


def as_generator(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Args:
        seed_or_rng: An integer seed, an existing generator (returned as-is),
            or ``None`` for a fixed default seed of 0 (the library is
            deterministic by default).

    Raises:
        ConfigurationError: If the argument is of an unsupported type.
    """
    if seed_or_rng is None:
        return np.random.default_rng(0)
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, (int, np.integer)):
        return np.random.default_rng(int(seed_or_rng))
    raise ConfigurationError(
        f"expected int seed, numpy Generator or None, got {type(seed_or_rng).__name__}"
    )


def spawn_generators(seed_or_rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Split one seed into ``n`` statistically independent generators.

    Useful when a pipeline has several stochastic stages (data generation,
    weight init, shuffling) that must not share a stream.
    """
    if n < 0:
        raise ConfigurationError(f"cannot spawn a negative number of generators: {n}")
    root = as_generator(seed_or_rng)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)]
