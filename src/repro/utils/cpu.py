"""Host CPU topology helpers.

``os.cpu_count()`` reports the *machine's* core count, which is misleading
inside cgroup/affinity-limited containers (CI runners, cluster workers
pinned to a subset of cores): a 64-core host restricted to one core still
reports 64.  Thread-pool sizing and benchmark metadata must use the number
of CPUs this process may actually *run on*.
"""

from __future__ import annotations

import os

__all__ = ["effective_cpus"]


def effective_cpus() -> int:
    """CPUs available to *this process*: affinity mask size when the
    platform exposes one (Linux), else ``os.cpu_count()``, floor 1."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # macOS / exotic hosts
        return max(1, os.cpu_count() or 1)
