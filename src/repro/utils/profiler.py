"""Lightweight nested phase timing for the training benchmark.

:class:`PhaseProfiler` accumulates *exclusive* wall-clock time per named
phase: a phase opened inside another phase bills its elapsed time to its
own bucket and subtracts it from the enclosing one, so the totals always
partition the instrumented span.  This is what lets the training benchmark
report "quantize" separately from the "forward"/"proximal" spans it runs
inside.

Deep library code (the quantizer) cannot receive a profiler argument
through every call site, so an *active* profiler can be installed per
thread with :func:`use_profiler`; :func:`profile_phase` then times a block
against it and is a near-free no-op when none is installed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PhaseProfiler", "use_profiler", "active_profiler", "profile_phase"]

_TLS = threading.local()


class PhaseProfiler:
    """Accumulates exclusive wall-time and call counts per phase name."""

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self._stack: list[list] = []  # [name, child_seconds] frames

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block under ``name`` (exclusive of nested phases)."""
        start = time.perf_counter()
        frame = [name, 0.0]
        self._stack.append(frame)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            self.totals[name] = self.totals.get(name, 0.0) + elapsed - frame[1]
            self.counts[name] = self.counts.get(name, 0) + 1
            if self._stack:
                self._stack[-1][1] += elapsed

    def reset(self) -> None:
        """Clear all accumulated totals and counts."""
        self.totals.clear()
        self.counts.clear()
        self._stack.clear()

    def summary(self) -> dict[str, float]:
        """Phase totals in seconds, largest first."""
        return dict(sorted(self.totals.items(), key=lambda kv: -kv[1]))


def active_profiler() -> PhaseProfiler | None:
    """The profiler installed on this thread by :func:`use_profiler`, if any."""
    return getattr(_TLS, "profiler", None)


@contextmanager
def use_profiler(profiler: PhaseProfiler | None) -> Iterator[PhaseProfiler | None]:
    """Install ``profiler`` as this thread's active profiler for a block.

    ``use_profiler(None)`` is a no-op context, so callers can pass an
    optional profiler straight through.
    """
    if profiler is None:
        yield None
        return
    previous = getattr(_TLS, "profiler", None)
    _TLS.profiler = profiler
    try:
        yield profiler
    finally:
        _TLS.profiler = previous


@contextmanager
def profile_phase(name: str) -> Iterator[None]:
    """Time a block against the active profiler (no-op when none)."""
    profiler = active_profiler()
    if profiler is None:
        yield
        return
    with profiler.phase(name):
        yield
