"""Small JSON (de)serialization helpers tolerant of numpy scalar types.

Experiment results mix Python and numpy scalars; :func:`save_json` converts
numpy values transparently so result files stay plain JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["save_json", "load_json"]


class _NumpyEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, o: Any) -> Any:
        if isinstance(o, np.integer):
            return int(o)
        if isinstance(o, np.floating):
            return float(o)
        if isinstance(o, np.bool_):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        return super().default(o)


def save_json(path: str | Path, obj: Any) -> Path:
    """Serialize ``obj`` to ``path`` as pretty-printed JSON.

    Returns the resolved path for chaining.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(obj, fh, cls=_NumpyEncoder, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_json(path: str | Path) -> Any:
    """Load a JSON document written by :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)
