"""Library-wide logging configuration.

The library never configures the root logger; it only attaches a
``NullHandler`` so that applications decide where log records go.
:func:`get_logger` namespaces every logger under ``repro.``.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the library root.

    Args:
        name: Dotted suffix, e.g. ``"train.trainer"``.
    """
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
