"""Library-wide logging configuration.

The library never configures the root logger; it only attaches a
``NullHandler`` so that applications decide where log records go.
:func:`get_logger` namespaces every logger under ``repro.``;
:func:`configure` is the opt-in application-side helper (used by the
serving example and benchmarks) that attaches a formatted stream handler
to the library root.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["get_logger", "configure"]

_ROOT_NAME = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the library root.

    Args:
        name: Dotted suffix, e.g. ``"train.trainer"``.
    """
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure(level: "int | str" = logging.INFO, stream: "IO[str] | None" = None) -> logging.Logger:
    """Attach a formatted stream handler to the ``repro`` root logger.

    Idempotent: calling it again replaces the previously attached handler
    rather than stacking duplicates, so library log lines are emitted once.
    This is an *application* convenience (examples, benchmarks, the serving
    quickstart) — library modules themselves never call it.

    Args:
        level: Threshold for the library root (name or numeric constant).
        stream: Destination, defaulting to ``sys.stderr``.

    Returns:
        The configured ``repro`` root logger.
    """
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
    root = logging.getLogger(_ROOT_NAME)
    for handler in list(root.handlers):
        if isinstance(handler, logging.StreamHandler) and getattr(handler, "_repro_configured", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_configured = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    return root
