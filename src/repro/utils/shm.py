"""Zero-copy object publishing over ``multiprocessing.shared_memory``.

Serializes an arbitrary picklable object graph while *hoisting* every large
:class:`numpy.ndarray` out of the pickle stream into one shared-memory
segment.  A worker process attaches the segment and unpickles the small
skeleton; the hoisted arrays come back as read-only views over the shared
pages — no per-worker copy of the weights, no pickling of megabytes through
a pipe.

The segment carries a sha256 checksum of its whole payload region, computed
at publish time and verified on every attach, so a corrupted or torn
segment raises :class:`~repro.errors.SharedMemoryError` instead of serving
garbage weights (the chaos suite's
:class:`~repro.testing.faults.SharedMemoryCorruptionFault` relies on this).

Used by :mod:`repro.infer.pool` to ship compiled plans to process workers
and by :mod:`repro.serve.cluster.shm_store` to publish per-model plan
generations to the supervised worker pool.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import SharedMemoryError

__all__ = ["ShmHandle", "publish_object", "load_object", "attach_segment"]

#: Arrays at or above this many bytes are hoisted into the segment; smaller
#: ones stay inline in the pickle skeleton (hoisting tiny arrays would cost
#: more in alignment padding and table entries than it saves).
DEFAULT_MIN_BYTES = 1024

_ALIGN = 64  # cache-line alignment for every hoisted array


@dataclass(frozen=True)
class ShmHandle:
    """Pipe-sized description of one published object.

    The handle is plain picklable data: the segment name, the pickle
    skeleton (with hoisted arrays replaced by persistent ids), the array
    table ``(offset, shape, dtype-str)`` per hoisted array, and the sha256
    of the segment's payload region.  Shipping a handle to a worker costs
    kilobytes regardless of how many megabytes of weights it references.
    """

    name: str
    total_bytes: int
    skeleton: bytes
    arrays: tuple
    sha256: str


class _HoistingPickler(pickle.Pickler):
    """Pickler that diverts large ndarrays into an out-of-band list."""

    def __init__(self, file, min_bytes: int) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.min_bytes = min_bytes
        self.hoisted: "list[np.ndarray]" = []

    def persistent_id(self, obj):
        if (
            isinstance(obj, np.ndarray)
            and obj.dtype != object
            and obj.nbytes >= self.min_bytes
        ):
            self.hoisted.append(np.ascontiguousarray(obj))
            return ("repro-shm-ndarray", len(self.hoisted) - 1)
        return None


class _AttachingUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent ids to views over the shm buffer."""

    def __init__(self, file, views: "list[np.ndarray]") -> None:
        super().__init__(file)
        self.views = views

    def persistent_load(self, pid):
        tag, index = pid
        if tag != "repro-shm-ndarray":
            raise SharedMemoryError(f"unknown persistent id tag {tag!r}")
        return self.views[index]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def publish_object(
    obj,
    min_bytes: int = DEFAULT_MIN_BYTES,
    name_prefix: str = "repro",
) -> "tuple[ShmHandle, shared_memory.SharedMemory]":
    """Publish ``obj`` into a fresh shared-memory segment.

    Returns ``(handle, segment)``.  The caller owns the segment's lifetime:
    keep the :class:`~multiprocessing.shared_memory.SharedMemory` object
    alive while workers may attach, then ``segment.unlink(); segment.close()``
    when the generation is retired.  The handle is what travels to workers.
    """
    sink = io.BytesIO()
    pickler = _HoistingPickler(sink, min_bytes)
    pickler.dump(obj)
    skeleton = sink.getvalue()

    table = []
    offset = 0
    for arr in pickler.hoisted:
        offset = _aligned(offset)
        table.append((offset, arr.shape, str(arr.dtype)))
        offset += arr.nbytes
    total = max(1, offset)  # SharedMemory refuses zero-byte segments

    name = f"{name_prefix}-{secrets.token_hex(6)}"
    try:
        segment = shared_memory.SharedMemory(name=name, create=True, size=total)
    except OSError as exc:  # pragma: no cover - host without /dev/shm
        raise SharedMemoryError(f"could not create shared memory segment: {exc}") from exc
    buf = segment.buf
    for (off, _, _), arr in zip(table, pickler.hoisted):
        dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=buf, offset=off)
        dst[...] = arr
    digest = hashlib.sha256(buf[:total]).hexdigest()
    return (
        ShmHandle(
            name=segment.name,
            total_bytes=total,
            skeleton=skeleton,
            arrays=tuple(table),
            sha256=digest,
        ),
        segment,
    )


def attach_segment(handle: ShmHandle, verify: bool = True) -> shared_memory.SharedMemory:
    """Attach the handle's segment (read side), verifying its checksum.

    Python registers attachments and creations alike with the
    ``resource_tracker`` (bpo-39959); because every attacher here is a
    :mod:`multiprocessing` child sharing the publisher's tracker process,
    the duplicate registration is idempotent and cleanup stays with the
    publisher's ``unlink()`` — attachers must only ``close()``.
    """
    try:
        segment = shared_memory.SharedMemory(name=handle.name, create=False)
    except (FileNotFoundError, OSError) as exc:
        raise SharedMemoryError(f"shared memory segment {handle.name!r} missing: {exc}") from exc
    if verify:
        digest = hashlib.sha256(segment.buf[: handle.total_bytes]).hexdigest()
        if digest != handle.sha256:
            try:
                segment.close()
            except BufferError:  # pragma: no cover
                pass
            raise SharedMemoryError(
                f"shared memory segment {handle.name!r} failed checksum verification "
                "(corrupted or torn payload)"
            )
    return segment


def load_object(
    handle: ShmHandle, verify: bool = True
) -> "tuple[object, shared_memory.SharedMemory]":
    """Rebuild the published object from ``handle``.

    Hoisted arrays come back as **read-only views** over the shared pages —
    zero-copy.  Returns ``(obj, segment)``; the caller must keep ``segment``
    referenced for as long as the views are used.

    Raises:
        SharedMemoryError: The segment is missing or fails its checksum.
    """
    segment = attach_segment(handle, verify=verify)
    views = []
    for off, shape, dtype in handle.arrays:
        view = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=segment.buf, offset=off)
        view.flags.writeable = False
        views.append(view)
    obj = _AttachingUnpickler(io.BytesIO(handle.skeleton), views).load()
    return obj, segment
