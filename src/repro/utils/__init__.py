"""Shared utilities: deterministic RNG handling, logging, serialization."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.logging import get_logger
from repro.utils.profiler import PhaseProfiler, active_profiler, profile_phase, use_profiler
from repro.utils.serialization import load_json, save_json
from repro.utils.shm import ShmHandle, attach_segment, load_object, publish_object

__all__ = [
    "ShmHandle",
    "publish_object",
    "load_object",
    "attach_segment",
    "as_generator",
    "spawn_generators",
    "get_logger",
    "PhaseProfiler",
    "use_profiler",
    "active_profiler",
    "profile_phase",
    "load_json",
    "save_json",
]
