"""Data substrate: datasets, loaders and synthetic benchmark generators.

The execution environment has no network access and no vision datasets on
disk, so the paper's CIFAR-10 / SVHN / CIFAR-100 / ImageNet workloads are
replaced by procedurally generated classification tasks with matching
channel counts and class counts (see DESIGN.md, substitution table).
"""

from repro.data.dataset import ArrayDataset, DataLoader, DataSplit
from repro.data.prefetch import PrefetchLoader
from repro.data.synthetic import SyntheticImageConfig, generate_synthetic_images
from repro.data.benchmarks import (
    DATASET_BUILDERS,
    make_cifar10_like,
    make_cifar100_like,
    make_imagenet_like,
    make_svhn_like,
)
from repro.data.transforms import normalize_images, random_flip
from repro.data.files import load_npz_split, save_npz_split

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "DataSplit",
    "PrefetchLoader",
    "SyntheticImageConfig",
    "generate_synthetic_images",
    "make_cifar10_like",
    "make_svhn_like",
    "make_cifar100_like",
    "make_imagenet_like",
    "DATASET_BUILDERS",
    "normalize_images",
    "random_flip",
    "load_npz_split",
    "save_npz_split",
]
