"""Background-thread batch prefetching for the training fast path.

The eager training loop interleaves batch preparation (shuffle + fancy
indexing, which copies megabytes per batch) with compute: the model sits
idle while the next batch materialises.  :class:`PrefetchLoader` moves
that work onto a single background thread that runs the wrapped loader's
iterator ahead of the consumer, keeping up to ``depth`` batches queued.

Determinism: the worker thread is the *only* consumer of the wrapped
loader's iterator, so its shuffle RNG advances in exactly the same order
as under eager iteration — batch N of epoch E contains the same samples
bit for bit.  A new epoch's iterator is created only after the previous
worker has fully stopped, so two workers never interleave draws from the
shared RNG.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, Iterator

__all__ = ["PrefetchLoader"]

_DONE = object()


class _PrefetchIterator:
    """One epoch's worth of batches, produced by a background worker."""

    def __init__(self, source: Iterator, depth: int) -> None:
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._worker = threading.Thread(
            target=self._run, args=(source,), name="repro-prefetch", daemon=True
        )
        self._worker.start()

    def _run(self, source: Iterator) -> None:
        try:
            for item in source:
                while not self._stop.is_set():
                    try:
                        self._queue.put(item, timeout=0.1)
                        break
                    except queue.Full:
                        continue
                if self._stop.is_set():
                    return
            self._put_final(_DONE)
        except BaseException as exc:  # propagate to the consumer
            self._put_final(exc)

    def _put_final(self, item: object) -> None:
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.1)
                return
            except queue.Full:
                continue

    def __iter__(self) -> "_PrefetchIterator":
        return self

    def __next__(self):
        if self._stop.is_set():
            raise StopIteration
        item = self._queue.get()
        if item is _DONE:
            self.close()
            raise StopIteration
        if isinstance(item, BaseException):
            self.close()
            raise item
        return item

    def close(self) -> None:
        """Stop the worker and join it (idempotent; safe mid-epoch)."""
        if self._stop.is_set():
            return
        self._stop.set()
        # Drain so a worker blocked on a full queue sees the stop event.
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._worker.join()


class PrefetchLoader:
    """Wrap a batch iterable so batches are prepared ahead of the consumer.

    Args:
        loader: Any re-iterable batch source (typically a
            :class:`~repro.data.dataset.DataLoader`).  Each ``iter()`` of
            this wrapper starts one epoch of the wrapped loader on a
            background thread.
        depth: Maximum number of batches queued ahead of the consumer.

    Yields exactly the batches the wrapped loader would, in the same
    order.  Starting a new epoch (or dropping out of one early) first
    shuts down the previous epoch's worker, so the wrapped loader's
    shuffle RNG stays in lockstep with eager iteration.
    """

    def __init__(self, loader: Iterable, depth: int = 2) -> None:
        if depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth}")
        self.loader = loader
        self.depth = depth
        self._active: _PrefetchIterator | None = None

    def __len__(self) -> int:
        return len(self.loader)  # type: ignore[arg-type]

    def __iter__(self) -> Iterator:
        self.close()
        self._active = _PrefetchIterator(iter(self.loader), self.depth)
        return self._active

    def close(self) -> None:
        """Shut down the active epoch's worker, if any (idempotent)."""
        if self._active is not None:
            self._active.close()
            self._active = None
