"""Named synthetic stand-ins for the paper's four datasets.

Each builder matches the real dataset's channel count and class count; the
spatial resolution and sample counts scale with a ``size_scale`` factor so
experiments stay tractable on one CPU while exercising the identical code
path.  ``size_scale=1.0`` approximates the paper-scale shapes (32x32 for
the CIFAR-class datasets).
"""

from __future__ import annotations

from typing import Callable

from repro.data.dataset import DataSplit
from repro.data.synthetic import SyntheticImageConfig, generate_synthetic_images

__all__ = [
    "make_cifar10_like",
    "make_svhn_like",
    "make_cifar100_like",
    "make_imagenet_like",
    "DATASET_BUILDERS",
]


def _scaled(base: int, scale: float, minimum: int) -> int:
    return max(minimum, int(round(base * scale)))


def make_cifar10_like(
    size_scale: float = 0.5,
    samples: int = 768,
    noise: float = 1.1,
    seed: int = 10,
) -> DataSplit:
    """10-class, 3-channel stand-in for CIFAR-10 (32x32 at scale 1.0)."""
    config = SyntheticImageConfig(
        num_classes=10,
        channels=3,
        image_size=_scaled(32, size_scale, 8),
        train_size=samples,
        test_size=max(128, samples // 3),
        noise=noise,
        seed=seed,
    )
    return generate_synthetic_images(config, name="cifar10-like")


def make_svhn_like(
    size_scale: float = 0.5,
    samples: int = 768,
    noise: float = 0.9,
    seed: int = 11,
) -> DataSplit:
    """10-class digit-like stand-in for SVHN (easier than CIFAR-10, as in
    the paper's accuracy ranges)."""
    config = SyntheticImageConfig(
        num_classes=10,
        channels=3,
        image_size=_scaled(32, size_scale, 8),
        train_size=samples,
        test_size=max(128, samples // 3),
        noise=noise,
        prototype_grid=3,
        seed=seed,
    )
    return generate_synthetic_images(config, name="svhn-like")


def make_cifar100_like(
    size_scale: float = 0.5,
    samples: int = 1024,
    noise: float = 1.2,
    num_classes: int = 20,
    seed: int = 12,
) -> DataSplit:
    """Many-class stand-in for CIFAR-100.

    Defaults to 20 classes (not 100) so per-class sample counts stay
    meaningful at CPU-tractable sizes; pass ``num_classes=100`` for the
    paper-scale task.
    """
    config = SyntheticImageConfig(
        num_classes=num_classes,
        channels=3,
        image_size=_scaled(32, size_scale, 8),
        train_size=samples,
        test_size=max(160, samples // 3),
        noise=noise,
        prototype_grid=5,
        seed=seed,
    )
    return generate_synthetic_images(config, name="cifar100-like")


def make_imagenet_like(
    size_scale: float = 0.5,
    samples: int = 1024,
    noise: float = 1.2,
    num_classes: int = 20,
    seed: int = 13,
) -> DataSplit:
    """Stand-in for the paper's reduced-width ImageNet experiment.

    The paper itself scales ImageNet down (ResNet-10, reduced width); we
    additionally shrink the task to ``num_classes`` classes at a CIFAR-like
    resolution.  Top-5 accuracy remains the reported metric (Table 5).
    """
    config = SyntheticImageConfig(
        num_classes=num_classes,
        channels=3,
        image_size=_scaled(32, size_scale, 8),
        train_size=samples,
        test_size=max(160, samples // 3),
        noise=noise,
        prototype_grid=6,
        seed=seed,
    )
    return generate_synthetic_images(config, name="imagenet-like")


DATASET_BUILDERS: dict[str, Callable[..., DataSplit]] = {
    "cifar10": make_cifar10_like,
    "svhn": make_svhn_like,
    "cifar100": make_cifar100_like,
    "imagenet": make_imagenet_like,
}
