"""Procedural image-classification task generator.

Each class is defined by a smooth random *prototype texture* (a coarse
random grid upsampled to the image resolution).  A sample is its class
prototype under a random amplitude, a small random translation, and
additive Gaussian noise.  The ``noise`` knob controls task difficulty:
higher noise narrows the margin, which is what makes weight quantization
*measurably* hurt accuracy — the property the paper's accuracy comparisons
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.errors import DataError
from repro.data.dataset import ArrayDataset, DataSplit
from repro.utils.rng import as_generator, spawn_generators

__all__ = ["SyntheticImageConfig", "generate_synthetic_images"]


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Parameters of one synthetic classification task.

    Args:
        num_classes: Number of target classes.
        channels: Image channels (3 for the RGB-like stand-ins).
        image_size: Square image side in pixels.
        train_size / test_size: Samples per split.
        noise: Additive Gaussian noise standard deviation.
        prototype_grid: Side of the coarse random grid defining each class
            texture (smaller = smoother, easier task).
        amplitude_jitter: Relative spread of the per-sample amplitude.
        max_shift: Largest circular translation in pixels.
        seed: Master seed; the task (prototypes) and the samples derive
            their own independent streams from it.
    """

    num_classes: int = 10
    channels: int = 3
    image_size: int = 16
    train_size: int = 512
    test_size: int = 256
    noise: float = 0.6
    prototype_grid: int = 4
    amplitude_jitter: float = 0.25
    max_shift: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise DataError("num_classes must be >= 2")
        if min(self.channels, self.image_size, self.train_size, self.test_size) < 1:
            raise DataError("channels, image_size and split sizes must be positive")
        if self.noise < 0:
            raise DataError("noise must be non-negative")
        if not 1 <= self.prototype_grid <= self.image_size:
            raise DataError("prototype_grid must be in [1, image_size]")


def _make_prototypes(config: SyntheticImageConfig, rng: np.random.Generator) -> np.ndarray:
    """Smooth per-class textures of shape (classes, C, H, W), unit RMS."""
    coarse = rng.normal(
        size=(config.num_classes, config.channels, config.prototype_grid, config.prototype_grid)
    )
    zoom = config.image_size / config.prototype_grid
    protos = ndimage.zoom(coarse, (1, 1, zoom, zoom), order=1)
    rms = np.sqrt((protos**2).mean(axis=(1, 2, 3), keepdims=True))
    return protos / np.maximum(rms, 1e-12)


def _sample_split(
    prototypes: np.ndarray,
    config: SyntheticImageConfig,
    size: int,
    rng: np.random.Generator,
) -> ArrayDataset:
    labels = rng.integers(0, config.num_classes, size=size)
    images = prototypes[labels].copy()
    amplitude = 1.0 + config.amplitude_jitter * rng.normal(size=(size, 1, 1, 1))
    images *= amplitude
    if config.max_shift > 0:
        shifts = rng.integers(-config.max_shift, config.max_shift + 1, size=(size, 2))
        for i, (dy, dx) in enumerate(shifts):
            images[i] = np.roll(images[i], (int(dy), int(dx)), axis=(1, 2))
    images += config.noise * rng.normal(size=images.shape)
    return ArrayDataset(images, labels, config.num_classes)


def generate_synthetic_images(config: SyntheticImageConfig, name: str = "synthetic") -> DataSplit:
    """Generate a train/test split for one synthetic task.

    The prototypes (the "task") and the two sample draws use independent
    RNG streams spawned from ``config.seed``, so regenerating with the same
    seed is fully deterministic and train/test share the task but not
    samples.
    """
    proto_rng, train_rng, test_rng = spawn_generators(as_generator(config.seed), 3)
    prototypes = _make_prototypes(config, proto_rng)
    return DataSplit(
        train=_sample_split(prototypes, config, config.train_size, train_rng),
        test=_sample_split(prototypes, config, config.test_size, test_rng),
        name=name,
    )
