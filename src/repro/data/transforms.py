"""Lightweight data transforms."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.utils.rng import as_generator

__all__ = ["normalize_images", "random_flip"]


def normalize_images(images: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Standardize per channel over the whole batch (zero mean, unit std)."""
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise DataError(f"expected (N, C, H, W), got shape {images.shape}")
    mean = images.mean(axis=(0, 2, 3), keepdims=True)
    std = images.std(axis=(0, 2, 3), keepdims=True)
    return (images - mean) / (std + eps)


def random_flip(
    images: np.ndarray,
    rng: int | np.random.Generator | None = None,
    probability: float = 0.5,
) -> np.ndarray:
    """Horizontally flip each image independently with ``probability``."""
    if not 0.0 <= probability <= 1.0:
        raise DataError(f"probability must be in [0, 1], got {probability}")
    images = np.asarray(images)
    flip = as_generator(rng).random(images.shape[0]) < probability
    out = images.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out
