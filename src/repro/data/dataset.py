"""Dataset containers and mini-batch iteration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import DataError
from repro.utils.rng import as_generator

__all__ = ["ArrayDataset", "DataSplit", "DataLoader"]


@dataclass
class ArrayDataset:
    """In-memory image-classification dataset.

    Attributes:
        images: Float array of shape (N, C, H, W).
        labels: Integer array of shape (N,).
        num_classes: Total number of classes (may exceed ``labels.max()+1``).
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels)
        if self.images.ndim != 4:
            raise DataError(f"images must be (N, C, H, W), got shape {self.images.shape}")
        if self.labels.shape != (self.images.shape[0],):
            raise DataError(
                f"labels shape {self.labels.shape} does not match N={self.images.shape[0]}"
            )
        if self.num_classes < 2:
            raise DataError(f"need at least 2 classes, got {self.num_classes}")
        if self.labels.min() < 0 or self.labels.max() >= self.num_classes:
            raise DataError("labels out of range for num_classes")

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def image_shape(self) -> tuple[int, int, int]:
        """(C, H, W) of one sample."""
        return tuple(self.images.shape[1:])

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        return ArrayDataset(self.images[indices], self.labels[indices], self.num_classes)


@dataclass
class DataSplit:
    """A train/test pair drawn from the same generative task."""

    train: ArrayDataset
    test: ArrayDataset
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.train.num_classes != self.test.num_classes:
            raise DataError("train/test class counts differ")
        if self.train.image_shape != self.test.image_shape:
            raise DataError("train/test image shapes differ")

    @property
    def num_classes(self) -> int:
        """Number of classes shared by both splits."""
        return self.train.num_classes

    @property
    def image_shape(self) -> tuple[int, int, int]:
        """(C, H, W) shared by both splits."""
        return self.train.image_shape


class DataLoader:
    """Mini-batch iterator with optional shuffling.

    Args:
        dataset: Source dataset.
        batch_size: Samples per batch (the final batch may be smaller).
        shuffle: Re-shuffle at the start of every epoch.
        rng: Seed or generator for shuffling.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if batch_size < 1:
            raise DataError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = as_generator(rng)

    def __len__(self) -> int:
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]
