"""Loading real datasets from ``.npz`` archives.

The execution environment is offline, so the benchmark experiments use
synthetic stand-ins — but a user with CIFAR-10 on disk should be able to
run the identical pipeline on it.  :func:`load_npz_split` reads a dataset
archive with the conventional keys and returns the same
:class:`~repro.data.dataset.DataSplit` the rest of the library consumes.

Expected archive keys: ``train_images`` (N, C, H, W) or (N, H, W, C),
``train_labels`` (N,), ``test_images``, ``test_labels``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.dataset import ArrayDataset, DataSplit
from repro.data.transforms import normalize_images
from repro.errors import DataError

__all__ = ["load_npz_split", "save_npz_split"]

_REQUIRED_KEYS = ("train_images", "train_labels", "test_images", "test_labels")


def _to_nchw(images: np.ndarray) -> np.ndarray:
    """Accept NCHW or NHWC and return NCHW (channels <= 4 heuristic)."""
    if images.ndim != 4:
        raise DataError(f"images must be 4-D, got shape {images.shape}")
    if images.shape[1] <= 4 < images.shape[3] or images.shape[1] <= 4 == images.shape[3]:
        return images  # already NCHW (channel axis small)
    if images.shape[3] <= 4:
        return images.transpose(0, 3, 1, 2)
    raise DataError(
        f"cannot infer layout for image shape {images.shape}; expected a "
        "channel axis of size <= 4 in position 1 (NCHW) or 3 (NHWC)"
    )


def load_npz_split(
    path: str | Path,
    normalize: bool = True,
    name: str | None = None,
) -> DataSplit:
    """Load a train/test split from an ``.npz`` archive.

    Args:
        path: Archive path.
        normalize: Standardise images per channel using the train split's
            statistics convention (each split standardised independently).
        name: Split name; defaults to the file stem.
    """
    path = Path(path)
    with np.load(path) as archive:
        missing = [k for k in _REQUIRED_KEYS if k not in archive.files]
        if missing:
            raise DataError(f"archive {path} is missing keys: {missing}")
        train_images = _to_nchw(np.asarray(archive["train_images"], dtype=np.float64))
        test_images = _to_nchw(np.asarray(archive["test_images"], dtype=np.float64))
        train_labels = np.asarray(archive["train_labels"]).astype(int).ravel()
        test_labels = np.asarray(archive["test_labels"]).astype(int).ravel()
    if normalize:
        train_images = normalize_images(train_images)
        test_images = normalize_images(test_images)
    num_classes = max(2, int(max(train_labels.max(), test_labels.max())) + 1)
    return DataSplit(
        train=ArrayDataset(train_images, train_labels, num_classes),
        test=ArrayDataset(test_images, test_labels, num_classes),
        name=name or path.stem,
    )


def save_npz_split(split: DataSplit, path: str | Path) -> Path:
    """Write a split to the archive format :func:`load_npz_split` reads."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        train_images=split.train.images,
        train_labels=split.train.labels,
        test_images=split.test.images,
        test_labels=split.test.labels,
    )
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")
