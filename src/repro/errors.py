"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Sub-classes separate the three broad failure domains:
configuration mistakes, numerical/shape problems inside the neural-network
substrate, and infeasible hardware mappings.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid arguments."""


class ShapeError(ReproError):
    """Tensor shapes are inconsistent for the requested operation."""


class GradientError(ReproError):
    """Backward pass invoked in an invalid state (e.g. no grad required)."""


class QuantizationError(ReproError):
    """A quantizer received values or settings it cannot represent."""


class HardwareModelError(ReproError):
    """A hardware mapping is infeasible (e.g. design exceeds the budget)."""


class DataError(ReproError):
    """A dataset or loader was asked for something it cannot provide."""


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or verified.

    Raised for torn/corrupt archives (bad zip, truncated payload, checksum
    mismatch), metadata that does not match the model being restored, and
    checkpoint stores with no valid generation left to fall back to.
    """


class TrainingDivergedError(ReproError):
    """Training diverged and exhausted its rollback/LR-reduction budget."""


class CompileError(ReproError):
    """A model could not be compiled into an inference execution plan."""


class StalePlanError(ReproError):
    """A compiled plan's cached weights no longer match the source model."""


class ParityError(ReproError):
    """Two execution paths that must agree (e.g. compiled engine vs eager
    evaluation, fast-path vs eager training) produced different results."""


class ServeError(ReproError):
    """Base class for failures in the model-serving layer (:mod:`repro.serve`)."""


class QueueFullError(ServeError):
    """A request was shed because the serving queue hit its high-water mark."""


class DeadlineExceededError(ServeError):
    """A request's deadline expired before (or while) it could be served."""


class ServerClosedError(ServeError):
    """A request arrived at a batcher/server that is stopping or stopped."""


class UnknownModelError(ServeError):
    """A request named a model that is not registered with the server."""


class RetriesExhaustedError(ServeError):
    """A client request failed on every retry attempt (transport-level)."""


class SharedMemoryError(ReproError):
    """A shared-memory payload could not be published, attached, or verified.

    Raised for missing segments and for checksum mismatches on attach (a
    corrupted or torn shared-memory plan must never be served from).
    """


class ClusterError(ServeError):
    """Base class for failures in the multi-process serving tier
    (:mod:`repro.serve.cluster`)."""


class WorkerCrashedError(ClusterError):
    """A request was lost to worker crashes more times than the cluster's
    re-dispatch budget allows."""


class CircuitOpenError(ClusterError):
    """A model's circuit breaker is open: its worker pool exhausted the
    restart budget and requests are rejected until a half-open probe
    succeeds."""


class QuotaExceededError(ClusterError):
    """A tenant's token-bucket quota is empty; the request was rejected at
    admission (HTTP 429)."""
