"""Training harness implementing the paper's Algorithm 1."""

from repro.train.history import EpochStats, TrainHistory
from repro.train.metrics import RunningAverage, accuracy, topk_accuracy
from repro.train.trainer import TrainConfig, Trainer
from repro.train.checkpoint import (
    TrainingCheckpoint,
    checkpoint_metadata,
    load_checkpoint,
    save_checkpoint,
)
from repro.train.resilience import (
    DivergenceMonitor,
    clip_grad_norm,
    global_grad_norm,
    grads_are_finite,
)
from repro.train.sweep import SweepPoint, sweep_flightnn_lambdas

__all__ = [
    "TrainConfig",
    "Trainer",
    "TrainHistory",
    "EpochStats",
    "accuracy",
    "topk_accuracy",
    "RunningAverage",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_metadata",
    "TrainingCheckpoint",
    "DivergenceMonitor",
    "clip_grad_norm",
    "global_grad_norm",
    "grads_are_finite",
    "SweepPoint",
    "sweep_flightnn_lambdas",
]
