"""Command-line training entry point.

Usage:
    python -m repro.train.cli --network 1 --scheme FL_a --epochs 8 \
        --dataset cifar10 --width-scale 0.25 --checkpoint out/model.npz

Trains one (network, scheme) pair on a synthetic benchmark dataset (or an
``.npz`` archive via ``--data-file``) and prints per-epoch metrics plus the
hardware measurements of the trained model.
"""

from __future__ import annotations

import argparse
import sys

from repro.data.benchmarks import DATASET_BUILDERS
from repro.data.files import load_npz_split
from repro.experiments.common import build_scheme, get_profile
from repro.hw import AsicEnergyModel, FPGAModel, network_largest_layer_ops
from repro.models import build_network, render_summary
from repro.train.checkpoint import TrainingCheckpoint, save_checkpoint
from repro.train.trainer import TrainConfig, Trainer

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", type=int, default=1, choices=range(1, 9),
                        help="Table-1 network id")
    parser.add_argument("--scheme", default="FL_a",
                        choices=["Full", "L-2", "L-1", "FP", "FL_a", "FL_b"],
                        help="quantization scheme")
    parser.add_argument("--dataset", default=None, choices=sorted(DATASET_BUILDERS),
                        help="synthetic benchmark dataset (default: the network's)")
    parser.add_argument("--data-file", default=None,
                        help=".npz dataset archive (overrides --dataset)")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=3e-3)
    parser.add_argument("--width-scale", type=float, default=0.25)
    parser.add_argument("--size-scale", type=float, default=0.5,
                        help="synthetic dataset resolution scale")
    parser.add_argument("--samples", type=int, default=512,
                        help="synthetic training samples")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--checkpoint", default=None,
                        help="write the trained model to this .npz path")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="directory for crash-safe full-state checkpoints "
                             "(one generation per epoch, checksummed)")
    parser.add_argument("--keep-last", type=int, default=3,
                        help="checkpoint generations to retain (plus the best)")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the newest valid generation in "
                             "--checkpoint-dir before training")
    parser.add_argument("--summary", action="store_true",
                        help="print the layer-by-layer model summary")
    parser.add_argument("--fast-train", action="store_true",
                        help="enable the training fast path (quantizer "
                             "workspace, buffer arena, batch prefetching); "
                             "bitwise identical to the default eager loop")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Train one model from command-line arguments; returns an exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    profile = get_profile()

    if args.data_file:
        split = load_npz_split(args.data_file)
    else:
        from repro.models.configs import NETWORK_CONFIGS

        dataset_key = args.dataset or NETWORK_CONFIGS[args.network].dataset
        split = DATASET_BUILDERS[dataset_key](
            size_scale=args.size_scale, samples=args.samples
        )
    print(f"dataset: {split.name} {split.image_shape}, "
          f"{len(split.train)} train / {len(split.test)} test, "
          f"{split.num_classes} classes")

    scheme = build_scheme(args.scheme, profile)
    model = build_network(
        args.network, scheme, num_classes=split.num_classes,
        image_size=split.image_shape[1], width_scale=args.width_scale,
        rng=args.seed,
    )
    print(f"model: {model} ({model.num_parameters():,} params)")

    config = TrainConfig(
        epochs=args.epochs, batch_size=args.batch_size, lr=args.lr,
        lambda_warmup_epochs=min(2, args.epochs - 1) if args.epochs > 1 else 0,
        threshold_freeze_epoch=max(1, args.epochs - 3),
        threshold_lr_scale=10.0, seed=args.seed,
        fast_path=args.fast_train,
    )
    manager = None
    if args.checkpoint_dir:
        manager = TrainingCheckpoint(args.checkpoint_dir, keep_last=args.keep_last)
    history = Trainer(model, config).fit(split, checkpoint=manager, resume=args.resume)
    for epoch in history.epochs:
        print(f"  epoch {epoch.epoch}: loss={epoch.train_loss:.4f} "
              f"test={100 * epoch.test_accuracy:.1f}% k={epoch.mean_filter_k:.2f}")

    ops = network_largest_layer_ops(model)
    design = FPGAModel().map_layer(ops)
    energy = AsicEnergyModel().layer_energy_uj(ops)
    print(f"storage: {model.storage_mb():.4f} MB | largest layer: "
          f"{design.throughput:,.0f} img/s on ZC706, {energy:.4f} uJ at 65nm")

    if args.summary:
        print(render_summary(model))
    if args.checkpoint:
        path = save_checkpoint(model, args.checkpoint, metadata={
            "scheme": scheme.name,
            "network": args.network,
            "test_accuracy": history.final.test_accuracy,
        })
        print(f"checkpoint written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
