"""Crash-safe checkpointing to ``.npz`` archives.

Two layers:

* :func:`save_checkpoint` / :func:`load_checkpoint` /
  :func:`checkpoint_metadata` — a single-file *model* snapshot (every
  parameter and buffer of a :class:`~repro.nn.module.Module`, flat
  name -> array, plus a JSON metadata record).  Writes are atomic
  (write-to-temp -> fsync -> ``os.replace``) so a crash mid-save never
  destroys an existing checkpoint, and read failures surface as
  :class:`~repro.errors.CheckpointError` instead of raw zipfile noise.

* :class:`TrainingCheckpoint` — a generational store of *full training
  state* (model + optimizers + scheduler + epoch + history + RNG), each
  generation guarded by a sha256 manifest.  ``restore_latest`` verifies the
  checksum and falls back through older generations when the newest is torn
  or corrupt, which is what makes Algorithm 1's long QAT schedules
  restartable bitwise-identically after a SIGKILL.

Directory layout of a :class:`TrainingCheckpoint` store::

    ckpt-000007.npz    payload (arrays + embedded metadata record)
    ckpt-000007.json   manifest {sha256, size, epoch, test_accuracy, ...}
    latest.json        pointer {"generation": 7}
    best.json          pointer {"generation": 3, "test_accuracy": 0.91}
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import zipfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import CheckpointError, ConfigurationError
from repro.nn.module import Module
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trainer imports us)
    from repro.train.trainer import Trainer

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_metadata",
    "TrainingCheckpoint",
    "CHECKPOINT_FORMAT_VERSION",
]

_LOGGER = get_logger("train.checkpoint")

_META_KEY = "__checkpoint_meta__"
_GENERATION_RE = re.compile(r"^ckpt-(\d{6})\.npz$")
#: Errors numpy/zipfile raise on torn, truncated or otherwise mangled archives.
_READ_ERRORS = (zipfile.BadZipFile, KeyError, ValueError, OSError, EOFError, zlib.error)

CHECKPOINT_FORMAT_VERSION = 1


# -- low-level helpers --------------------------------------------------------


def _normalize_npz_path(path: str | Path) -> Path:
    """Resolve the on-disk name once, up front (numpy appends ``.npz``)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _encode_meta(meta: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)


def _serialize_arrays(arrays: dict[str, np.ndarray]) -> bytes:
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so a rename survives power loss (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync unsupported on the fs
        pass
    finally:
        os.close(fd)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: temp file -> fsync -> replace."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def _parse_meta(raw: np.ndarray, path: Path) -> dict:
    try:
        return json.loads(raw.tobytes().decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint {path} has a corrupt metadata record: {exc}"
        ) from exc


def _read_archive_bytes(data: bytes, path: Path) -> tuple[dict[str, np.ndarray], dict]:
    """Decode an in-memory ``.npz`` payload into (arrays, metadata)."""
    try:
        with np.load(io.BytesIO(data)) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except _READ_ERRORS as exc:
        raise CheckpointError(f"checkpoint {path} is corrupt or truncated: {exc}") from exc
    meta_raw = arrays.pop(_META_KEY, None)
    meta = {} if meta_raw is None else _parse_meta(meta_raw, path)
    return arrays, meta


# -- single-file model snapshots ----------------------------------------------


def save_checkpoint(model: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Atomically write the model's parameters and buffers to ``path``.

    The ``.npz`` suffix is normalized once, up front, so the returned path is
    exactly the file written and re-saving to it never double-appends.  The
    payload lands via write-to-temp -> fsync -> ``os.replace``: a crash
    mid-save leaves any previous checkpoint at ``path`` intact.

    Args:
        model: Module tree to snapshot.
        path: Target file (``.npz`` appended if the suffix differs).
        metadata: JSON-serialisable extras (scheme name, epoch, accuracy...).

    Returns:
        The path actually written.
    """
    path = _normalize_npz_path(path)
    state = model.state_dict()
    if _META_KEY in state:
        raise ConfigurationError(f"state dict may not contain the reserved key {_META_KEY!r}")
    arrays = dict(state)
    arrays[_META_KEY] = _encode_meta(dict(metadata or {}))
    _atomic_write_bytes(path, _serialize_arrays(arrays))
    return path


def load_checkpoint(model: Module, path: str | Path) -> dict:
    """Restore a snapshot written by :func:`save_checkpoint`.

    Returns:
        The metadata dictionary stored alongside the arrays.

    Raises:
        CheckpointError: If the file is missing, truncated, or not a valid
            archive.
        ConfigurationError: On missing/unknown entries or shape mismatches
            (delegated to :meth:`Module.load_state_dict`).
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint {path} does not exist") from None
    except OSError as exc:
        raise CheckpointError(f"checkpoint {path} could not be read: {exc}") from exc
    arrays, meta = _read_archive_bytes(data, path)
    model.load_state_dict(arrays)
    return meta


def checkpoint_metadata(path: str | Path) -> dict:
    """Read only the metadata record of a checkpoint (no model needed).

    Raises:
        CheckpointError: If the file is missing, truncated, or not a valid
            archive.
    """
    path = Path(path)
    try:
        with np.load(path) as archive:
            if _META_KEY not in archive.files:
                return {}
            raw = archive[_META_KEY]
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint {path} does not exist") from None
    except _READ_ERRORS as exc:
        raise CheckpointError(f"checkpoint {path} is corrupt or truncated: {exc}") from exc
    return _parse_meta(raw, path)


# -- generational full-training-state store -----------------------------------


class TrainingCheckpoint:
    """Generational, integrity-checked store of full training state.

    Each :meth:`save` writes one *generation*: the payload ``.npz`` (model +
    optimizer moments + metadata) plus a sidecar manifest recording the
    payload's sha256 — the checksum is computed over the bytes that *should*
    have reached disk, so a torn write (SIGKILL, power loss, full disk) is
    detected on load and the store falls back one generation.

    Retention keeps the newest ``keep_last`` generations plus (with
    ``keep_best``) the generation with the highest recorded test accuracy.

    Args:
        directory: Store root (created on first save).
        keep_last: Newest generations to retain (>= 1).
        keep_best: Additionally retain the best-accuracy generation.
        write_hook: Test seam for fault injection — called with the payload
            bytes and target path before the atomic write; whatever it
            returns is written, and anything it raises aborts the save (see
            :mod:`repro.testing.faults`).
    """

    def __init__(
        self,
        directory: str | Path,
        keep_last: int = 3,
        keep_best: bool = True,
        write_hook: "Callable[[bytes, Path], bytes] | None" = None,
    ) -> None:
        if keep_last < 1:
            raise ConfigurationError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.keep_last = keep_last
        self.keep_best = keep_best
        self._write_hook = write_hook

    # -- store introspection ---------------------------------------------------

    def generations(self) -> list[int]:
        """Generation numbers present on disk, ascending."""
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = _GENERATION_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_generation(self) -> int | None:
        """Newest generation on disk (None for an empty store)."""
        generations = self.generations()
        return generations[-1] if generations else None

    def best_generation(self) -> int | None:
        """Generation the ``best.json`` pointer names, if it is still valid."""
        pointer = self._read_pointer("best.json")
        if pointer is None:
            return None
        generation = pointer.get("generation")
        if generation in self.generations():
            return int(generation)
        return None

    def _payload_path(self, generation: int) -> Path:
        return self.directory / f"ckpt-{generation:06d}.npz"

    def _manifest_path(self, generation: int) -> Path:
        return self.directory / f"ckpt-{generation:06d}.json"

    def _read_pointer(self, name: str) -> dict | None:
        try:
            return json.loads((self.directory / name).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    def _write_pointer(self, name: str, payload: dict) -> None:
        _atomic_write_bytes(self.directory / name, json.dumps(payload).encode("utf-8"))

    # -- save ------------------------------------------------------------------

    def save(self, trainer: "Trainer", metadata: dict | None = None) -> Path:
        """Persist the trainer's full state as a new generation.

        Returns the payload path written.  Raises whatever the underlying
        write raises (disk full, injected I/O fault, ...) — in that case no
        new generation becomes visible and older generations stay intact.
        """
        latest = self.latest_generation()
        generation = (latest or 0) + 1
        arrays, meta = trainer.training_state()
        meta.update(metadata or {})
        meta["format"] = CHECKPOINT_FORMAT_VERSION
        meta["generation"] = generation
        arrays = dict(arrays)
        arrays[_META_KEY] = _encode_meta(meta)
        data = _serialize_arrays(arrays)
        digest = hashlib.sha256(data).hexdigest()
        path = self._payload_path(generation)
        # The manifest records the sha256 of the *intended* payload; the write
        # hook (fault injection) may corrupt what actually reaches disk, which
        # is exactly how load-time verification catches torn writes.
        to_disk = data if self._write_hook is None else self._write_hook(data, path)
        _atomic_write_bytes(path, to_disk)
        manifest = {
            "generation": generation,
            "sha256": digest,
            "size": len(data),
            "format": CHECKPOINT_FORMAT_VERSION,
            "epoch": meta.get("epoch"),
            "test_accuracy": meta.get("test_accuracy"),
        }
        _atomic_write_bytes(self._manifest_path(generation), json.dumps(manifest).encode("utf-8"))
        self._write_pointer("latest.json", {"generation": generation})
        self._update_best(generation, meta.get("test_accuracy"))
        self._prune()
        return path

    def _update_best(self, generation: int, test_accuracy: float | None) -> None:
        if not self.keep_best or test_accuracy is None:
            return
        best = self._read_pointer("best.json")
        stale = best is None or best.get("generation") not in self.generations()
        if stale or float(test_accuracy) >= float(best.get("test_accuracy", -np.inf)):
            self._write_pointer(
                "best.json", {"generation": generation, "test_accuracy": float(test_accuracy)}
            )

    def _prune(self) -> None:
        generations = self.generations()
        keep = set(generations[-self.keep_last:])
        best = self.best_generation()
        if self.keep_best and best is not None:
            keep.add(best)
        for generation in generations:
            if generation in keep:
                continue
            for path in (self._payload_path(generation), self._manifest_path(generation)):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing deletes are fine
                    pass

    # -- load ------------------------------------------------------------------

    def _load_generation(self, generation: int) -> tuple[dict[str, np.ndarray], dict]:
        """Read and checksum-verify one generation's payload."""
        payload_path = self._payload_path(generation)
        manifest_path = self._manifest_path(generation)
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CheckpointError(f"checkpoint manifest {manifest_path} is missing") from None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(f"checkpoint manifest {manifest_path} is corrupt: {exc}") from exc
        try:
            data = payload_path.read_bytes()
        except FileNotFoundError:
            raise CheckpointError(f"checkpoint payload {payload_path} is missing") from None
        except OSError as exc:
            raise CheckpointError(f"checkpoint payload {payload_path} unreadable: {exc}") from exc
        digest = hashlib.sha256(data).hexdigest()
        if digest != manifest.get("sha256"):
            raise CheckpointError(
                f"checkpoint {payload_path} failed integrity check "
                f"(sha256 {digest[:12]}... != recorded {str(manifest.get('sha256'))[:12]}...; "
                f"{len(data)} bytes on disk, {manifest.get('size')} expected)"
            )
        return _read_archive_bytes(data, payload_path)

    def restore(self, trainer: "Trainer", generation: int) -> None:
        """Restore one specific generation into ``trainer`` (verified)."""
        arrays, meta = self._load_generation(generation)
        trainer.load_training_state(arrays, meta)

    def restore_latest(self, trainer: "Trainer") -> int | None:
        """Restore the newest *valid* generation, falling back on corruption.

        Returns:
            The generation restored, or ``None`` when the store is empty (a
            fresh start — nothing to resume).

        Raises:
            CheckpointError: When generations exist but none verifies — the
                caller must decide whether retraining from scratch is
                acceptable rather than silently losing the run.
        """
        generations = self.generations()
        if not generations:
            return None
        failures: list[str] = []
        for generation in reversed(generations):
            try:
                self.restore(trainer, generation)
            except CheckpointError as exc:
                _LOGGER.warning("checkpoint generation %d unusable: %s", generation, exc)
                failures.append(f"generation {generation}: {exc}")
                continue
            if failures:
                _LOGGER.warning(
                    "fell back to generation %d after %d bad generation(s)",
                    generation, len(failures),
                )
            return generation
        raise CheckpointError(
            f"no valid checkpoint generation in {self.directory}: " + "; ".join(failures)
        )
