"""Model checkpointing to ``.npz`` archives.

Saves every parameter and buffer of a :class:`~repro.nn.module.Module`
(flat name -> array) plus a small metadata record, and restores them with
strict shape checking.  Works for any module tree, including quantized
networks with FLightNN thresholds.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_metadata"]

_META_KEY = "__checkpoint_meta__"


def save_checkpoint(model: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Write the model's parameters and buffers (plus metadata) to ``path``.

    Args:
        model: Module tree to snapshot.
        path: Target file (``.npz`` appended by numpy if missing).
        metadata: JSON-serialisable extras (scheme name, epoch, accuracy...).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    if _META_KEY in state:
        raise ConfigurationError(f"state dict may not contain the reserved key {_META_KEY!r}")
    meta = dict(metadata or {})
    arrays = dict(state)
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **arrays)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def load_checkpoint(model: Module, path: str | Path) -> dict:
    """Restore a snapshot written by :func:`save_checkpoint`.

    Returns:
        The metadata dictionary stored alongside the arrays.

    Raises:
        ConfigurationError: On missing/unknown entries or shape mismatches
            (delegated to :meth:`Module.load_state_dict`).
    """
    with np.load(Path(path)) as archive:
        arrays = {name: archive[name] for name in archive.files}
    meta_raw = arrays.pop(_META_KEY, None)
    model.load_state_dict(arrays)
    if meta_raw is None:
        return {}
    return json.loads(meta_raw.tobytes().decode("utf-8"))


def checkpoint_metadata(path: str | Path) -> dict:
    """Read only the metadata record of a checkpoint (no model needed)."""
    with np.load(Path(path)) as archive:
        if _META_KEY not in archive.files:
            return {}
        return json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
