"""Quantization-aware training — the paper's Algorithm 1.

Each iteration: (1) the quantized layers compute ``wq = Q_k(w | t)`` inside
the forward graph, (2) the loss is cross-entropy plus — for FLightNN — the
residual group-lasso ``L_reg,k``, (3) backward propagates ``dL/dwq`` to the
full-precision master weights via STE and ``dL/dt`` via the sigmoid-relaxed
indicator, (4) the optimizer (Adam, as in the paper) updates ``w``, biases,
batch-norm affines and thresholds ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader, DataSplit
from repro.errors import ConfigurationError
from repro.models.network import QuantizedNetwork
from repro.nn import functional as F
from repro.nn.optim import SGD, Adam, ConstantLR, CosineDecayLR, StepDecayLR
from repro.nn.tensor import Tensor, no_grad
from repro.quant.activations import QuantizedActivation
from repro.quant.regularization import proximal_residual_shrink, residual_group_lasso
from repro.train.act_reg import activation_distribution_loss, collect_quantizer_inputs
from repro.train.history import EpochStats, TrainHistory
from repro.train.metrics import RunningAverage, accuracy, topk_accuracy
from repro.utils.logging import get_logger
from repro.utils.rng import as_generator

__all__ = ["TrainConfig", "Trainer"]

_LOGGER = get_logger("train.trainer")


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run.

    Args:
        epochs: Training epochs.
        batch_size: Mini-batch size.
        lr: Learning rate (Adam step size).
        optimizer: ``"adam"`` (paper) or ``"sgd"``.
        momentum: SGD momentum (ignored for Adam).
        threshold_lr_scale: Multiplier on ``lr`` for the FLightNN threshold
            parameters.  Thresholds always train with plain SGD (their
            gradient magnitude carries meaning that Adam's per-parameter
            normalisation would erase).
        gate_pressure: Strength multiplier for the L0-style gate-count
            penalty on thresholds (see
            :meth:`FLightNNQuantizer.gate_pressure_gradient`); scaled by the
            scheme's per-level lambdas.  0 disables it.
        threshold_freeze_epoch: Epoch after which thresholds stop moving
            (no gradient step, no gate pressure) so the network fine-tunes
            against a settled per-filter k assignment.  ``None`` keeps them
            trainable throughout.
        lambda_warmup_epochs: Ramp the regularization strength linearly
            from 0 to its full value over this many epochs — the "gradual
            quantization" behaviour the paper credits for FLightNN's
            accuracy edge over LightNN-1 (Sec. 5.2): the network first
            trains with the full two-shift budget, then constraints tighten.
        regularization_mode: How ``L_reg,k`` is applied to FLightNN layers:
            ``"proximal"`` (default) applies the exact group-lasso proximal
            shrinkage after each optimizer step — this is what produces
            exactly-zero residual groups, i.e. filters that genuinely drop
            to smaller k; ``"gradient"`` adds the differentiable loss of
            Sec. 4.3 to the objective instead (the paper's formulation,
            which needs far longer schedules to sparsify).
        activation_reg: Coefficient of the activation-distribution loss
            (the paper's Sec.-6 future-work item, ref. [7]); 0 disables.
        lr_schedule: Per-epoch learning-rate schedule for the main
            optimizer: ``"constant"``, ``"cosine"`` (anneal to 0 over the
            run) or ``"step"`` (x0.1 at 2/3 of the run).
        seed: Shuffling seed.
        eval_batch_size: Batch size for evaluation passes.
    """

    epochs: int = 10
    batch_size: int = 64
    lr: float = 1e-3
    optimizer: str = "adam"
    momentum: float = 0.9
    threshold_lr_scale: float = 1.0
    gate_pressure: float = 1.0
    threshold_freeze_epoch: int | None = None
    lambda_warmup_epochs: int = 0
    regularization_mode: str = "proximal"
    activation_reg: float = 0.0
    lr_schedule: str = "constant"
    seed: int = 0
    eval_batch_size: int = 256

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ConfigurationError("epochs and batch_size must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ConfigurationError(f"unknown optimizer {self.optimizer!r}")
        if self.threshold_lr_scale <= 0:
            raise ConfigurationError("threshold_lr_scale must be positive")
        if self.regularization_mode not in ("proximal", "gradient"):
            raise ConfigurationError(
                f"unknown regularization_mode {self.regularization_mode!r}"
            )
        if self.lambda_warmup_epochs < 0:
            raise ConfigurationError("lambda_warmup_epochs must be non-negative")
        if self.gate_pressure < 0:
            raise ConfigurationError("gate_pressure must be non-negative")
        if self.threshold_freeze_epoch is not None and self.threshold_freeze_epoch < 0:
            raise ConfigurationError("threshold_freeze_epoch must be non-negative")
        if self.lr_schedule not in ("constant", "cosine", "step"):
            raise ConfigurationError(f"unknown lr_schedule {self.lr_schedule!r}")
        if self.activation_reg < 0:
            raise ConfigurationError("activation_reg must be non-negative")


class Trainer:
    """Runs Algorithm 1 for one network/scheme pair."""

    def __init__(self, model: QuantizedNetwork, config: TrainConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.scheme = model.scheme
        threshold_ids = {
            id(layer.thresholds)
            for layer in model.conv_layers() + model.linear_layers()
            if layer.thresholds is not None
        }
        main_params = [p for p in model.parameters() if id(p) not in threshold_ids]
        threshold_params = [p for p in model.parameters() if id(p) in threshold_ids]
        self.optimizer = self._make_optimizer(main_params, self.config.lr)
        # Thresholds use plain SGD: their gradient magnitude (how strongly a
        # gate helps or hurts the loss) must survive into the update.
        self.threshold_optimizer = (
            SGD(threshold_params, lr=self.config.lr * self.config.threshold_lr_scale)
            if threshold_params
            else None
        )
        self._flightnn_layers = [
            layer
            for layer in model.conv_layers() + model.linear_layers()
            if layer.thresholds is not None
        ]
        if self.config.activation_reg > 0:
            for module in model.modules():
                if isinstance(module, QuantizedActivation):
                    module.record_input = True
        if self.config.lr_schedule == "cosine":
            self._scheduler = CosineDecayLR(self.optimizer, total_epochs=self.config.epochs)
        elif self.config.lr_schedule == "step":
            self._scheduler = StepDecayLR(
                self.optimizer, step_size=max(1, (2 * self.config.epochs) // 3)
            )
        else:
            self._scheduler = ConstantLR(self.optimizer)

    def _make_optimizer(self, params, lr):
        if self.config.optimizer == "adam":
            return Adam(params, lr=lr)
        return SGD(params, lr=lr, momentum=self.config.momentum)

    # -- loss -----------------------------------------------------------------

    def regularization_loss(self) -> Tensor | None:
        """The paper's ``L_reg,k`` summed over FLightNN layers (else None).

        Only used as a training objective term in ``"gradient"`` mode, but
        always available for inspection/logging.
        """
        if not self.scheme.is_flightnn or not self._flightnn_layers:
            return None
        total: Tensor | None = None
        for layer in self._flightnn_layers:
            term = residual_group_lasso(
                layer.weight,
                layer.thresholds,
                self.scheme.lambdas,
                layer.strategy.quantizer,
            )
            total = term if total is None else total + term
        return total

    # -- training -------------------------------------------------------------

    def fit(self, split: DataSplit, log: bool = False) -> TrainHistory:
        """Train on ``split.train``, evaluating on ``split.test`` per epoch."""
        history = TrainHistory(
            scheme_name=self.scheme.name, network_id=self.model.config.network_id
        )
        loader = DataLoader(
            split.train,
            self.config.batch_size,
            shuffle=True,
            rng=as_generator(self.config.seed),
        )
        for epoch in range(self.config.epochs):
            train_loss, train_acc = self._run_epoch(loader, epoch)
            test = self.evaluate(split.test)
            stats = EpochStats(
                epoch=epoch,
                train_loss=train_loss,
                train_accuracy=train_acc,
                test_accuracy=test["accuracy"],
                test_top5=test["top5"],
                mean_filter_k=self.model.mean_filter_k(),
                storage_mb=self.model.storage_mb(),
                learning_rate=self.optimizer.lr,
            )
            history.append(stats)
            self._scheduler.step()
            if log:
                _LOGGER.info(
                    "epoch %d: loss=%.4f train=%.3f test=%.3f k=%.2f",
                    epoch, train_loss, train_acc, test["accuracy"], stats.mean_filter_k,
                )
        return history

    def _run_epoch(self, loader: DataLoader, epoch: int) -> tuple[float, float]:
        self.model.train()
        loss_avg, acc_avg = RunningAverage(), RunningAverage()
        use_gradient_reg = self.config.regularization_mode == "gradient"
        warmup = self.config.lambda_warmup_epochs
        lambda_ramp = min(1.0, (epoch + 1) / warmup) if warmup else 1.0
        freeze = self.config.threshold_freeze_epoch
        thresholds_active = freeze is None or epoch < freeze
        for images, labels in loader:
            self.model.zero_grad()
            logits = self.model(Tensor(images))
            loss = F.cross_entropy(logits, labels)
            total = loss
            if use_gradient_reg:
                reg = self.regularization_loss()
                if reg is not None:
                    total = total + reg
            if self.config.activation_reg > 0:
                act_reg = activation_distribution_loss(
                    collect_quantizer_inputs(self.model), self.config.activation_reg
                )
                if act_reg is not None:
                    total = total + act_reg
            total.backward()
            if thresholds_active:
                self._add_gate_pressure(lambda_ramp)
            self.optimizer.step()
            if self.threshold_optimizer is not None and thresholds_active:
                self.threshold_optimizer.step()
            if not use_gradient_reg:
                self._apply_proximal_regularization(lambda_ramp)
            n = len(labels)
            loss_avg.update(loss.item(), n)
            acc_avg.update(accuracy(logits.numpy(), labels), n)
        return loss_avg.value, acc_avg.value

    def _add_gate_pressure(self, lambda_ramp: float) -> None:
        """Accumulate the gate-count penalty gradient onto each threshold."""
        if not self.scheme.is_flightnn or self.config.gate_pressure == 0.0:
            return
        scale = self.config.gate_pressure * lambda_ramp
        lambdas = np.asarray(self.scheme.lambdas) * scale
        for layer in self._flightnn_layers:
            grad = layer.strategy.quantizer.gate_pressure_gradient(
                layer.weight.data, layer.thresholds.data, lambdas
            )
            layer.thresholds.accumulate_grad(grad)

    def _apply_proximal_regularization(self, lambda_ramp: float = 1.0) -> None:
        """Shrink per-level residual norms of every FLightNN layer in place."""
        if not self.scheme.is_flightnn:
            return
        lambdas = tuple(lam * lambda_ramp for lam in self.scheme.lambdas)
        for layer in self._flightnn_layers:
            layer.weight.data[...] = proximal_residual_shrink(
                layer.weight.data,
                layer.thresholds.data,
                lambdas,
                layer.strategy.quantizer,
                step_size=self.optimizer.lr,
            )
            layer.weight.bump_version()

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, dataset: ArrayDataset, use_engine: bool = True) -> dict[str, float]:
        """Loss / top-1 / top-5 on ``dataset`` in inference mode.

        By default evaluation runs through the compiled inference engine
        (:mod:`repro.infer`): weights are quantized once per optimizer step
        instead of once per batch, batch-norm is folded away and no autograd
        graph is built.  The engine is compiled lazily on first use and
        transparently re-derives only the layers that changed since the last
        evaluation.  ``use_engine=False`` keeps the eager fallback (also the
        reference path the engine is parity-tested against).
        """
        if use_engine:
            # The engine's internal batch granularity is an execution detail
            # (results are batch-size invariant), so it keeps its own
            # cache-friendly default; eval_batch_size governs the eager path.
            return self._engine().evaluate(dataset)
        self.model.eval()
        loss_avg = RunningAverage()
        acc_avg = RunningAverage()
        top5_avg = RunningAverage()
        k5 = min(5, dataset.num_classes)
        loader = DataLoader(dataset, self.config.eval_batch_size, shuffle=False)
        with no_grad():
            for images, labels in loader:
                logits = self.model(Tensor(images))
                n = len(labels)
                loss_avg.update(F.cross_entropy(logits, labels).item(), n)
                acc_avg.update(accuracy(logits.numpy(), labels), n)
                top5_avg.update(topk_accuracy(logits.numpy(), labels, k5), n)
        self.model.train()
        return {"loss": loss_avg.value, "accuracy": acc_avg.value, "top5": top5_avg.value}

    def _engine(self):
        """Lazily build (once) the compiled evaluation engine for the model."""
        if getattr(self, "_eval_engine", None) is None:
            # Imported here to avoid a train <-> infer import cycle.
            from repro.infer.engine import InferenceEngine

            self._eval_engine = InferenceEngine(self.model, on_stale="refresh")
        return self._eval_engine
