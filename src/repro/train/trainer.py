"""Quantization-aware training — the paper's Algorithm 1.

Each iteration: (1) the quantized layers compute ``wq = Q_k(w | t)`` inside
the forward graph, (2) the loss is cross-entropy plus — for FLightNN — the
residual group-lasso ``L_reg,k``, (3) backward propagates ``dL/dwq`` to the
full-precision master weights via STE and ``dL/dt`` via the sigmoid-relaxed
indicator, (4) the optimizer (Adam, as in the paper) updates ``w``, biases,
batch-norm affines and thresholds ``t``.

The loop is fault-tolerant: per-batch numerical guardrails (NaN/Inf
detection, optional gradient clipping, a divergence monitor that rolls back
to the last good checkpoint at reduced LR — see
:mod:`repro.train.resilience`) and crash-safe full-state checkpointing with
bitwise-exact resume (see
:class:`~repro.train.checkpoint.TrainingCheckpoint`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader, DataSplit
from repro.data.prefetch import PrefetchLoader
from repro.errors import CheckpointError, ConfigurationError, ParityError, TrainingDivergedError
from repro.models.network import QuantizedNetwork
from repro.nn import functional as F
from repro.nn.arena import BufferArena, use_arena
from repro.nn.optim import SGD, Adam, ConstantLR, CosineDecayLR, StepDecayLR
from repro.nn.tensor import Tensor, no_grad
from repro.quant.activations import QuantizedActivation
from repro.quant.regularization import proximal_residual_shrink, residual_group_lasso
from repro.quant.workspace import QuantWorkspace
from repro.train.act_reg import activation_distribution_loss, collect_quantizer_inputs
from repro.train.history import EpochStats, TrainHistory
from repro.train.metrics import RunningAverage, accuracy, topk_accuracy
from repro.train.resilience import DivergenceMonitor, clip_grad_norm, grads_are_finite
from repro.utils.logging import get_logger
from repro.utils.profiler import PhaseProfiler, profile_phase, use_profiler
from repro.utils.rng import as_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.train.checkpoint import TrainingCheckpoint

__all__ = ["TrainConfig", "Trainer"]

_LOGGER = get_logger("train.trainer")


class _RollbackRequested(Exception):
    """Internal: the divergence monitor asked for a checkpoint rollback."""


def _flatten_state(prefix: str, state: dict, arrays: dict[str, np.ndarray]) -> dict:
    """Split an optimizer/scheduler state dict into npz arrays + JSON scalars.

    Per-parameter buffer lists land in ``arrays`` under ``prefix/key/i``;
    everything else stays in the returned JSON-able record, which notes the
    buffer counts so :func:`_unflatten_state` can reassemble the lists.
    """
    meta: dict = {"buffers": {}}
    for key, value in state.items():
        if isinstance(value, list):
            meta["buffers"][key] = len(value)
            for i, arr in enumerate(value):
                arrays[f"{prefix}/{key}/{i}"] = arr
        else:
            meta[key] = value
    return meta


def _unflatten_state(prefix: str, meta: dict, arrays: dict[str, np.ndarray]) -> dict:
    state = {key: value for key, value in meta.items() if key != "buffers"}
    for key, count in meta.get("buffers", {}).items():
        state[key] = [arrays[f"{prefix}/{key}/{i}"] for i in range(int(count))]
    return state


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run.

    Args:
        epochs: Training epochs.
        batch_size: Mini-batch size.
        lr: Learning rate (Adam step size).
        optimizer: ``"adam"`` (paper) or ``"sgd"``.
        momentum: SGD momentum (ignored for Adam).
        threshold_lr_scale: Multiplier on ``lr`` for the FLightNN threshold
            parameters.  Thresholds always train with plain SGD (their
            gradient magnitude carries meaning that Adam's per-parameter
            normalisation would erase).
        gate_pressure: Strength multiplier for the L0-style gate-count
            penalty on thresholds (see
            :meth:`FLightNNQuantizer.gate_pressure_gradient`); scaled by the
            scheme's per-level lambdas.  0 disables it.
        threshold_freeze_epoch: Epoch after which thresholds stop moving
            (no gradient step, no gate pressure) so the network fine-tunes
            against a settled per-filter k assignment.  ``None`` keeps them
            trainable throughout.
        lambda_warmup_epochs: Ramp the regularization strength linearly
            from 0 to its full value over this many epochs — the "gradual
            quantization" behaviour the paper credits for FLightNN's
            accuracy edge over LightNN-1 (Sec. 5.2): the network first
            trains with the full two-shift budget, then constraints tighten.
        regularization_mode: How ``L_reg,k`` is applied to FLightNN layers:
            ``"proximal"`` (default) applies the exact group-lasso proximal
            shrinkage after each optimizer step — this is what produces
            exactly-zero residual groups, i.e. filters that genuinely drop
            to smaller k; ``"gradient"`` adds the differentiable loss of
            Sec. 4.3 to the objective instead (the paper's formulation,
            which needs far longer schedules to sparsify).
        activation_reg: Coefficient of the activation-distribution loss
            (the paper's Sec.-6 future-work item, ref. [7]); 0 disables.
        lr_schedule: Per-epoch learning-rate schedule for the main
            optimizer: ``"constant"``, ``"cosine"`` (anneal to 0 over the
            run) or ``"step"`` (x0.1 at 2/3 of the run).
        seed: Shuffling seed.
        eval_batch_size: Batch size for evaluation passes.
        grad_clip_norm: Clip the global L2 norm of all gradients (master
            weights and thresholds together) to this value; ``None``
            disables clipping.
        guard_nonfinite: Screen the loss and every gradient for NaN/Inf each
            batch; a bad batch's update is suppressed instead of poisoning
            the optimizer moments.
        guard_spike_factor: A finite batch loss above this multiple of the
            running mean counts as divergence; 0 disables spike detection.
        guard_patience: Consecutive bad batches before the divergence
            monitor requests a rollback to the last good checkpoint.
        guard_warmup_batches: Healthy batches before spike detection arms.
        rollback_lr_factor: Learning-rate multiplier applied on every
            divergence rollback (all optimizers and the schedule base).
        max_rollbacks: Divergence rollbacks allowed per ``fit`` call before
            :class:`~repro.errors.TrainingDivergedError` is raised.
        fast_path: Enable the training fast path: per-layer
            :class:`~repro.quant.workspace.QuantWorkspace` caches (one
            quantizer sweep per step shared by forward, threshold gradients
            and regularization), a step-scoped
            :class:`~repro.nn.arena.BufferArena` for conv/activation/pool
            scratch, and background batch prefetching.  Produces bitwise
            identical training trajectories to the eager path (asserted by
            ``tests/train/test_fast_path.py``).
        prefetch_batches: Batches the fast path's background loader keeps
            prepared ahead of the training step (ignored when ``fast_path``
            is off).
    """

    epochs: int = 10
    batch_size: int = 64
    lr: float = 1e-3
    optimizer: str = "adam"
    momentum: float = 0.9
    threshold_lr_scale: float = 1.0
    gate_pressure: float = 1.0
    threshold_freeze_epoch: int | None = None
    lambda_warmup_epochs: int = 0
    regularization_mode: str = "proximal"
    activation_reg: float = 0.0
    lr_schedule: str = "constant"
    seed: int = 0
    eval_batch_size: int = 256
    grad_clip_norm: float | None = None
    guard_nonfinite: bool = True
    guard_spike_factor: float = 0.0
    guard_patience: int = 5
    guard_warmup_batches: int = 10
    rollback_lr_factor: float = 0.5
    max_rollbacks: int = 3
    fast_path: bool = False
    prefetch_batches: int = 2

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ConfigurationError("epochs and batch_size must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ConfigurationError(f"unknown optimizer {self.optimizer!r}")
        if self.threshold_lr_scale <= 0:
            raise ConfigurationError("threshold_lr_scale must be positive")
        if self.regularization_mode not in ("proximal", "gradient"):
            raise ConfigurationError(
                f"unknown regularization_mode {self.regularization_mode!r}"
            )
        if self.lambda_warmup_epochs < 0:
            raise ConfigurationError("lambda_warmup_epochs must be non-negative")
        if self.gate_pressure < 0:
            raise ConfigurationError("gate_pressure must be non-negative")
        if self.threshold_freeze_epoch is not None and self.threshold_freeze_epoch < 0:
            raise ConfigurationError("threshold_freeze_epoch must be non-negative")
        if self.lr_schedule not in ("constant", "cosine", "step"):
            raise ConfigurationError(f"unknown lr_schedule {self.lr_schedule!r}")
        if self.activation_reg < 0:
            raise ConfigurationError("activation_reg must be non-negative")
        if self.grad_clip_norm is not None and self.grad_clip_norm <= 0:
            raise ConfigurationError("grad_clip_norm must be positive (or None)")
        if self.guard_spike_factor < 0:
            raise ConfigurationError("guard_spike_factor must be non-negative")
        if self.guard_patience < 1:
            raise ConfigurationError("guard_patience must be >= 1")
        if self.guard_warmup_batches < 1:
            raise ConfigurationError("guard_warmup_batches must be >= 1")
        if not 0.0 < self.rollback_lr_factor <= 1.0:
            raise ConfigurationError("rollback_lr_factor must be in (0, 1]")
        if self.max_rollbacks < 0:
            raise ConfigurationError("max_rollbacks must be non-negative")
        if self.prefetch_batches < 1:
            raise ConfigurationError("prefetch_batches must be >= 1")


class Trainer:
    """Runs Algorithm 1 for one network/scheme pair.

    State that must survive a crash (epoch position, history, optimizer
    moments, data-shuffle RNG) lives on the instance and round-trips through
    :meth:`training_state` / :meth:`load_training_state`, which
    :class:`~repro.train.checkpoint.TrainingCheckpoint` persists.
    """

    def __init__(self, model: QuantizedNetwork, config: TrainConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.scheme = model.scheme
        threshold_ids = {
            id(layer.thresholds)
            for layer in model.conv_layers() + model.linear_layers()
            if layer.thresholds is not None
        }
        main_params = [p for p in model.parameters() if id(p) not in threshold_ids]
        threshold_params = [p for p in model.parameters() if id(p) in threshold_ids]
        self.optimizer = self._make_optimizer(main_params, self.config.lr)
        # Thresholds use plain SGD: their gradient magnitude (how strongly a
        # gate helps or hurts the loss) must survive into the update.
        self.threshold_optimizer = (
            SGD(threshold_params, lr=self.config.lr * self.config.threshold_lr_scale)
            if threshold_params
            else None
        )
        self._flightnn_layers = [
            layer
            for layer in model.conv_layers() + model.linear_layers()
            if layer.thresholds is not None
        ]
        if self.config.activation_reg > 0:
            for module in model.modules():
                if isinstance(module, QuantizedActivation):
                    module.record_input = True
        if self.config.lr_schedule == "cosine":
            self._scheduler = CosineDecayLR(self.optimizer, total_epochs=self.config.epochs)
        elif self.config.lr_schedule == "step":
            self._scheduler = StepDecayLR(
                self.optimizer, step_size=max(1, (2 * self.config.epochs) // 3)
            )
        else:
            self._scheduler = ConstantLR(self.optimizer)
        self._eval_engine = None  # compiled eval engine, built lazily by _engine()
        self._loader_rng = as_generator(self.config.seed)
        self._epoch = 0  # next epoch to run (advances past config.epochs-1 when done)
        self._step = 0  # global batch counter (monotonic across epochs; checkpointed)
        self.history = TrainHistory(
            scheme_name=self.scheme.name, network_id=self.model.config.network_id
        )
        #: Callables invoked with the global step after each backward pass —
        #: a seam for gradient instrumentation and fault injection
        #: (:mod:`repro.testing.faults`).
        self.grad_hooks: list[Callable[[int], None]] = []
        self._monitor = DivergenceMonitor(
            spike_factor=self.config.guard_spike_factor,
            patience=self.config.guard_patience,
            warmup_batches=self.config.guard_warmup_batches,
        )
        self._rollbacks = 0
        #: Per-phase wall-time accounting for the training loop (exclusive
        #: times; the "quantize" phase is recorded inside the quantizer and
        #: subtracted from whichever phase called it).
        self.profiler = PhaseProfiler()
        self._arena: BufferArena | None = None
        self._parity_checked = False
        if self.config.fast_path:
            self._arena = BufferArena()
            for layer in self._flightnn_layers:
                layer.quant_workspace = QuantWorkspace(layer.strategy.quantizer)

    def _make_optimizer(self, params, lr):
        if self.config.optimizer == "adam":
            return Adam(params, lr=lr)
        return SGD(params, lr=lr, momentum=self.config.momentum)

    # -- loss -----------------------------------------------------------------

    def regularization_loss(self) -> Tensor | None:
        """The paper's ``L_reg,k`` summed over FLightNN layers (else None).

        Only used as a training objective term in ``"gradient"`` mode, but
        always available for inspection/logging.
        """
        if not self.scheme.is_flightnn or not self._flightnn_layers:
            return None
        total: Tensor | None = None
        for layer in self._flightnn_layers:
            term = residual_group_lasso(
                layer.weight,
                layer.thresholds,
                self.scheme.lambdas,
                layer.strategy.quantizer,
                workspace=layer.quant_workspace,
            )
            total = term if total is None else total + term
        return total

    # -- training -------------------------------------------------------------

    def fit(
        self,
        split: DataSplit,
        log: bool = False,
        checkpoint: "TrainingCheckpoint | None" = None,
        resume: bool = True,
    ) -> TrainHistory:
        """Train on ``split.train``, evaluating on ``split.test`` per epoch.

        With ``checkpoint`` given, the full training state is persisted as a
        new generation after every epoch, and — when ``resume`` is true and
        the store is non-empty — restored from the newest valid generation
        before training starts, so an interrupted run continues
        bitwise-identically to an uninterrupted one.  Divergence rollbacks
        (see :class:`TrainConfig` guard options) restore from the same store.
        """
        if checkpoint is not None and resume:
            restored = checkpoint.restore_latest(self)
            if restored is not None:
                _LOGGER.info(
                    "resumed from checkpoint generation %d at epoch %d",
                    restored, self._epoch,
                )
        loader: DataLoader | PrefetchLoader = DataLoader(
            split.train,
            self.config.batch_size,
            shuffle=True,
            rng=self._loader_rng,
        )
        if self.config.fast_path:
            # Batch N+1's shuffle + gather copies run on a background thread
            # while batch N trains.  The worker is the sole consumer of the
            # underlying loader, so the shuffle RNG advances exactly as in
            # eager iteration (see repro.data.prefetch).
            loader = PrefetchLoader(loader, depth=self.config.prefetch_batches)
        try:
            return self._fit_loop(loader, split, checkpoint, log)
        finally:
            if isinstance(loader, PrefetchLoader):
                loader.close()

    def _fit_loop(
        self,
        loader: "DataLoader | PrefetchLoader",
        split: DataSplit,
        checkpoint: "TrainingCheckpoint | None",
        log: bool,
    ) -> TrainHistory:
        while self._epoch < self.config.epochs:
            epoch = self._epoch
            try:
                train_loss, train_acc, guards = self._run_epoch(loader, epoch)
            except _RollbackRequested:
                self._handle_divergence(checkpoint)
                continue
            test = self.evaluate(split.test)
            self._check_eval_parity(test, split.test)
            stats = EpochStats(
                epoch=epoch,
                train_loss=train_loss,
                train_accuracy=train_acc,
                test_accuracy=test["accuracy"],
                test_top5=test["top5"],
                mean_filter_k=self.model.mean_filter_k(),
                storage_mb=self.model.storage_mb(),
                learning_rate=self.optimizer.lr,
                nonfinite_batches=guards["nonfinite"],
                clipped_batches=guards["clipped"],
                loss_spikes=guards["spikes"],
            )
            self.history.append(stats)
            self._scheduler.step()
            self._epoch += 1
            if checkpoint is not None:
                checkpoint.save(self)
            if log:
                _LOGGER.info(
                    "epoch %d: loss=%.4f train=%.3f test=%.3f k=%.2f",
                    epoch, train_loss, train_acc, test["accuracy"], stats.mean_filter_k,
                )
        return self.history

    def _run_epoch(
        self, loader: "DataLoader | PrefetchLoader", epoch: int
    ) -> tuple[float, float, dict]:
        self.model.train()
        loss_avg, acc_avg = RunningAverage(), RunningAverage()
        guards = {"nonfinite": 0, "clipped": 0, "spikes": 0}
        use_gradient_reg = self.config.regularization_mode == "gradient"
        warmup = self.config.lambda_warmup_epochs
        lambda_ramp = min(1.0, (epoch + 1) / warmup) if warmup else 1.0
        freeze = self.config.threshold_freeze_epoch
        thresholds_active = freeze is None or epoch < freeze
        guard_enabled = self.config.guard_nonfinite or self.config.guard_spike_factor > 0
        guarded_params = list(self.optimizer.params)
        if self.threshold_optimizer is not None:
            guarded_params += self.threshold_optimizer.params
        batches = iter(loader)
        with use_profiler(self.profiler):
            while True:
                with profile_phase("data"):
                    batch = next(batches, None)
                if batch is None:
                    break
                images, labels = batch
                # One `with` block = one pass: the arena recycles its scratch
                # buffers at entry, after the previous step's graph is dead.
                with use_arena(self._arena):
                    with profile_phase("forward"):
                        self.model.zero_grad()
                        logits = self.model(Tensor(images))
                        loss = F.cross_entropy(logits, labels)
                        total = loss
                        if use_gradient_reg:
                            reg = self.regularization_loss()
                            if reg is not None:
                                total = total + reg
                        if self.config.activation_reg > 0:
                            act_reg = activation_distribution_loss(
                                collect_quantizer_inputs(self.model),
                                self.config.activation_reg,
                            )
                            if act_reg is not None:
                                total = total + act_reg
                    with profile_phase("backward"):
                        total.backward()
                    step = self._step
                    self._step += 1
                    for hook in self.grad_hooks:
                        hook(step)
                    if thresholds_active:
                        self._add_gate_pressure(lambda_ramp)
                    loss_value = float(loss.item())
                    if guard_enabled:
                        finite = (
                            grads_are_finite(guarded_params)
                            if self.config.guard_nonfinite
                            else True
                        )
                        verdict = self._monitor.observe(loss_value, finite)
                        if verdict != "ok":
                            if finite and math.isfinite(loss_value):
                                guards["spikes"] += 1
                            else:
                                guards["nonfinite"] += 1
                            if verdict == "rollback":
                                raise _RollbackRequested()
                            continue  # suppress this batch's update entirely
                    if self.config.grad_clip_norm is not None:
                        _, clipped = clip_grad_norm(
                            guarded_params, self.config.grad_clip_norm
                        )
                        guards["clipped"] += int(clipped)
                    with profile_phase("optimizer"):
                        self.optimizer.step()
                        if self.threshold_optimizer is not None and thresholds_active:
                            self.threshold_optimizer.step()
                    if not use_gradient_reg:
                        with profile_phase("proximal"):
                            self._apply_proximal_regularization(lambda_ramp)
                    n = len(labels)
                    loss_avg.update(loss_value, n)
                    acc_avg.update(accuracy(logits.numpy(), labels), n)
        return loss_avg.value, acc_avg.value, guards

    def _handle_divergence(self, checkpoint: "TrainingCheckpoint | None") -> None:
        """Roll back to the last good state at a reduced learning rate."""
        if self._rollbacks >= self.config.max_rollbacks:
            raise TrainingDivergedError(
                f"training diverged again after {self._rollbacks} rollback(s); "
                f"max_rollbacks={self.config.max_rollbacks} exhausted"
            )
        self._rollbacks += 1
        self.model.zero_grad()
        restored = None
        if checkpoint is not None:
            # Empty store -> None: nothing to restore, but bad updates were
            # suppressed batch-by-batch, so the weights are still finite and
            # retrying the epoch at a lower LR is sound.
            restored = checkpoint.restore_latest(self)
        self._reduce_lr(self.config.rollback_lr_factor)
        self._monitor.reset()
        self.history.record_event(
            "rollback",
            epoch=self._epoch,
            restored_generation=restored,
            lr=self.optimizer.lr,
        )
        _LOGGER.warning(
            "divergence detected at epoch %d: restored generation %s, lr reduced to %g",
            self._epoch, restored, self.optimizer.lr,
        )

    def _reduce_lr(self, factor: float) -> None:
        """Permanently scale every learning rate (schedule base included)."""
        self.optimizer.lr *= factor
        self._scheduler.base_lr *= factor
        if self.threshold_optimizer is not None:
            self.threshold_optimizer.lr *= factor

    def _add_gate_pressure(self, lambda_ramp: float) -> None:
        """Accumulate the gate-count penalty gradient onto each threshold."""
        if not self.scheme.is_flightnn or self.config.gate_pressure == 0.0:
            return
        scale = self.config.gate_pressure * lambda_ramp
        lambdas = np.asarray(self.scheme.lambdas) * scale
        for layer in self._flightnn_layers:
            workspace = layer.quant_workspace
            # The workspace still holds this step's forward sweep (weights
            # have not moved since), so the gate statistics come for free.
            state = (
                workspace.state(layer.weight, layer.thresholds)
                if workspace is not None
                else None
            )
            grad = layer.strategy.quantizer.gate_pressure_gradient(
                layer.weight.data, layer.thresholds.data, lambdas, state=state
            )
            layer.thresholds.accumulate_grad(grad)

    def _apply_proximal_regularization(self, lambda_ramp: float = 1.0) -> None:
        """Shrink per-level residual norms of every FLightNN layer in place."""
        if not self.scheme.is_flightnn:
            return
        lambdas = tuple(lam * lambda_ramp for lam in self.scheme.lambdas)
        for layer in self._flightnn_layers:
            layer.weight.data[...] = proximal_residual_shrink(
                layer.weight.data,
                layer.thresholds.data,
                lambdas,
                layer.strategy.quantizer,
                step_size=self.optimizer.lr,
            )
            layer.weight.bump_version()

    # -- checkpointable state --------------------------------------------------

    def training_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """Everything a bitwise-identical resume needs: (arrays, metadata).

        Arrays hold the model state dict (``model/<name>``) and every
        optimizer moment buffer (``optim/...``, ``threshold_optim/...``);
        the JSON-able metadata holds scheme/network identity, the epoch and
        step counters, the full :class:`TrainHistory`, the data-shuffle RNG
        state and optimizer/scheduler scalars.
        """
        arrays = {f"model/{name}": value for name, value in self.model.state_dict().items()}
        meta = {
            "scheme": self.scheme.name,
            "network_id": self.model.config.network_id,
            "epoch": self._epoch,
            "step": self._step,
            "test_accuracy": (
                self.history.epochs[-1].test_accuracy if self.history.epochs else None
            ),
            "history": self.history.as_dict(),
            "rng": self._loader_rng.bit_generator.state,
            "optimizer": _flatten_state("optim", self.optimizer.state_dict(), arrays),
            "scheduler": self._scheduler.state_dict(),
        }
        if self.threshold_optimizer is not None:
            meta["threshold_optimizer"] = _flatten_state(
                "threshold_optim", self.threshold_optimizer.state_dict(), arrays
            )
        return arrays, meta

    def load_training_state(self, arrays: dict[str, np.ndarray], meta: dict) -> None:
        """Restore a snapshot from :meth:`training_state` into this trainer.

        Raises:
            CheckpointError: When the snapshot belongs to a different
                scheme/network or does not fit the model/optimizers.
        """
        if meta.get("scheme") != self.scheme.name:
            raise CheckpointError(
                f"checkpoint scheme {meta.get('scheme')!r} does not match "
                f"model scheme {self.scheme.name!r}"
            )
        if meta.get("network_id") != self.model.config.network_id:
            raise CheckpointError(
                f"checkpoint network id {meta.get('network_id')!r} does not match "
                f"model network id {self.model.config.network_id!r}"
            )
        model_state = {
            name[len("model/"):]: value
            for name, value in arrays.items()
            if name.startswith("model/")
        }
        try:
            self.model.load_state_dict(model_state)
            self.optimizer.load_state_dict(
                _unflatten_state("optim", meta["optimizer"], arrays)
            )
            if self.threshold_optimizer is not None:
                threshold_meta = meta.get("threshold_optimizer")
                if threshold_meta is None:
                    raise CheckpointError("checkpoint lacks threshold-optimizer state")
                self.threshold_optimizer.load_state_dict(
                    _unflatten_state("threshold_optim", threshold_meta, arrays)
                )
            self._scheduler.load_state_dict(meta["scheduler"])
            self._loader_rng.bit_generator.state = meta["rng"]
        except (ConfigurationError, KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"checkpoint does not fit this trainer: {exc}") from exc
        self._epoch = int(meta["epoch"])
        self._step = int(meta.get("step", 0))
        self.history = TrainHistory.from_dict(meta["history"])
        self._monitor.reset()
        # Restored weights invalidate every cached quantizer sweep (belt and
        # braces: version bumps in load_state_dict already miss the key, but
        # a rollback must never serve a stale decomposition).
        for layer in self._flightnn_layers:
            if layer.quant_workspace is not None:
                layer.quant_workspace.invalidate()

    # -- evaluation ------------------------------------------------------------

    def _check_eval_parity(self, engine_metrics: dict, dataset: ArrayDataset) -> None:
        """Assert engine-vs-eager agreement on the first validation pass.

        In-training validation runs through the compiled inference engine;
        this one-off cross-check (per trainer) guards against a stale or
        mis-folded compilation silently steering training decisions.
        """
        if self._parity_checked:
            return
        self._parity_checked = True
        eager = self.evaluate(dataset, use_engine=False)
        for key in ("loss", "accuracy", "top5"):
            if not math.isclose(engine_metrics[key], eager[key], rel_tol=1e-6, abs_tol=1e-8):
                raise ParityError(
                    f"compiled-engine validation disagrees with eager evaluation: "
                    f"{key} {engine_metrics[key]!r} vs {eager[key]!r}"
                )

    def evaluate(self, dataset: ArrayDataset, use_engine: bool = True) -> dict[str, float]:
        """Loss / top-1 / top-5 on ``dataset`` in inference mode.

        By default evaluation runs through the compiled inference engine
        (:mod:`repro.infer`): weights are quantized once per optimizer step
        instead of once per batch, batch-norm is folded away and no autograd
        graph is built.  The engine is compiled lazily on first use and
        transparently re-derives only the layers that changed since the last
        evaluation.  ``use_engine=False`` keeps the eager fallback (also the
        reference path the engine is parity-tested against).
        """
        if use_engine:
            # The engine's internal batch granularity is an execution detail
            # (results are batch-size invariant), so it keeps its own
            # cache-friendly default; eval_batch_size governs the eager path.
            return self._engine().evaluate(dataset)
        self.model.eval()
        loss_avg = RunningAverage()
        acc_avg = RunningAverage()
        top5_avg = RunningAverage()
        k5 = min(5, dataset.num_classes)
        loader = DataLoader(dataset, self.config.eval_batch_size, shuffle=False)
        with no_grad():
            for images, labels in loader:
                logits = self.model(Tensor(images))
                n = len(labels)
                loss_avg.update(F.cross_entropy(logits, labels).item(), n)
                acc_avg.update(accuracy(logits.numpy(), labels), n)
                top5_avg.update(topk_accuracy(logits.numpy(), labels, k5), n)
        self.model.train()
        return {"loss": loss_avg.value, "accuracy": acc_avg.value, "top5": top5_avg.value}

    def _engine(self):
        """Lazily build (once) the compiled evaluation engine for the model."""
        if self._eval_engine is None:
            # Imported here to avoid a train <-> infer import cycle.
            from repro.infer.engine import InferenceEngine

            self._eval_engine = InferenceEngine(self.model, on_stale="refresh")
        return self._eval_engine
