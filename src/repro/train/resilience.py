"""Numerical guardrails for the QAT loop.

Quantized/constrained weight updates are notoriously unstable (BinaryRelax,
AskewSGD): an aggressive threshold move can push a whole layer's residuals
through a discontinuity and blow the loss up, and one NaN gradient poisons
Adam's moments permanently.  This module provides the pieces
:class:`~repro.train.trainer.Trainer` composes into a self-protecting loop:

* :func:`grads_are_finite` — cheap NaN/Inf screen over the gradient set.
* :func:`clip_grad_norm` — global-norm gradient clipping across *all*
  parameter groups (master weights and thresholds together, so the clip
  ratio is consistent).
* :class:`DivergenceMonitor` — per-batch verdicts: a non-finite loss/grad or
  a loss spike marks the batch *bad* (update suppressed); a streak of bad
  batches escalates to a rollback request, which the trainer answers by
  restoring the last good checkpoint at a reduced learning rate.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor

__all__ = [
    "global_grad_norm",
    "clip_grad_norm",
    "grads_are_finite",
    "DivergenceMonitor",
]


def global_grad_norm(params: Iterable[Tensor]) -> float:
    """L2 norm of the concatenation of every parameter gradient."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(np.square(p.grad)))
    return math.sqrt(total)


def clip_grad_norm(params: Sequence[Tensor], max_norm: float) -> tuple[float, bool]:
    """Scale gradients in place so their global norm is at most ``max_norm``.

    Returns:
        ``(pre_clip_norm, clipped)`` — the norm before scaling and whether
        scaling was applied.  Non-finite norms are left untouched (the
        divergence guard, not the clipper, owns that case).
    """
    if max_norm <= 0:
        raise ConfigurationError(f"max_norm must be positive, got {max_norm}")
    norm = global_grad_norm(params)
    if not math.isfinite(norm) or norm <= max_norm:
        return norm, False
    scale = max_norm / norm
    for p in params:
        if p.grad is not None:
            p.grad *= scale
    return norm, True


def grads_are_finite(params: Iterable[Tensor]) -> bool:
    """True when no parameter gradient contains NaN or Inf."""
    return all(p.grad is None or np.isfinite(p.grad).all() for p in params)


class DivergenceMonitor:
    """Streaming batch-loss monitor with skip/rollback escalation.

    Args:
        spike_factor: A finite batch loss above ``spike_factor`` times the
            running mean counts as divergence; 0 disables spike detection.
        patience: Consecutive bad batches (non-finite or spiking) before a
            rollback is requested.
        warmup_batches: Healthy batches observed before spike detection arms
            (the running mean is meaningless at first).
    """

    def __init__(self, spike_factor: float = 0.0, patience: int = 5,
                 warmup_batches: int = 10) -> None:
        if spike_factor < 0:
            raise ConfigurationError(f"spike_factor must be non-negative, got {spike_factor}")
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        if warmup_batches < 1:
            raise ConfigurationError(f"warmup_batches must be >= 1, got {warmup_batches}")
        self.spike_factor = spike_factor
        self.patience = patience
        self.warmup_batches = warmup_batches
        self.reset()

    def reset(self) -> None:
        """Forget all streaks and statistics (called after a rollback)."""
        self._mean = 0.0
        self._count = 0
        self._streak = 0

    @property
    def streak(self) -> int:
        """Current consecutive-bad-batch count."""
        return self._streak

    def observe(self, loss: float, finite_grads: bool = True) -> str:
        """Classify one batch.

        Returns:
            ``"ok"`` — healthy, apply the update; ``"skip"`` — bad batch,
            suppress the update; ``"rollback"`` — the bad streak reached
            ``patience``, restore the last good state.
        """
        nonfinite = not (math.isfinite(loss) and finite_grads)
        spike = (
            not nonfinite
            and self.spike_factor > 0
            and self._count >= self.warmup_batches
            and self._mean > 0
            and loss > self.spike_factor * self._mean
        )
        if nonfinite or spike:
            self._streak += 1
            if self._streak >= self.patience:
                self._streak = 0
                return "rollback"
            return "skip"
        self._streak = 0
        self._count += 1
        self._mean += (loss - self._mean) / self._count
        return "ok"
