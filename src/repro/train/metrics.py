"""Classification metrics and thread-safe streaming accumulators.

The accumulators (:class:`RunningAverage`, :class:`Counter`) are shared
between the training loop and the serving metrics path
(:mod:`repro.serve.metrics`), so they synchronise internally: every update
and read takes a small lock, making concurrent use from batcher workers and
HTTP handler threads race-free while staying cheap enough for the per-epoch
training loop that only ever touches them from one thread.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import ShapeError

__all__ = ["accuracy", "topk_accuracy", "RunningAverage", "Counter"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1] for (N, classes) logits."""
    return topk_accuracy(logits, labels, k=1)


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Top-k accuracy in [0, 1]; Table 5 reports top-5 for ImageNet."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"expected (N, C) logits and (N,) labels, got {logits.shape} / {labels.shape}"
        )
    if not 1 <= k <= logits.shape[1]:
        raise ShapeError(f"k={k} out of range for {logits.shape[1]} classes")
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (topk == labels[:, None]).any(axis=1)
    return float(hits.mean())


class RunningAverage:
    """Streaming weighted mean (per-epoch loss/accuracy accumulation).

    Thread-safe: concurrent :meth:`update` calls never lose increments, and
    :attr:`value` always reads a consistent (total, count) pair.
    """

    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def update(self, value: float, weight: int = 1) -> None:
        """Add ``value`` observed over ``weight`` samples."""
        with self._lock:
            self._total += float(value) * weight
            self._count += weight

    @property
    def value(self) -> float:
        """Current mean (0.0 when nothing has been recorded)."""
        with self._lock:
            return self._total / self._count if self._count else 0.0

    @property
    def count(self) -> int:
        """Number of samples accumulated."""
        with self._lock:
            return self._count


class Counter:
    """A monotonically increasing, thread-safe event counter.

    Plain ``int += 1`` is not atomic across the serving layer's batcher and
    HTTP handler threads; this wraps the increment in a lock and exposes the
    value as a property so metric snapshots read consistent totals.
    """

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` (default 1); returns the new total."""
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Counter({self.value})"
