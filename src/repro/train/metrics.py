"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["accuracy", "topk_accuracy", "RunningAverage"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1] for (N, classes) logits."""
    return topk_accuracy(logits, labels, k=1)


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Top-k accuracy in [0, 1]; Table 5 reports top-5 for ImageNet."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"expected (N, C) logits and (N,) labels, got {logits.shape} / {labels.shape}"
        )
    if not 1 <= k <= logits.shape[1]:
        raise ShapeError(f"k={k} out of range for {logits.shape[1]} classes")
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (topk == labels[:, None]).any(axis=1)
    return float(hits.mean())


class RunningAverage:
    """Streaming weighted mean (per-epoch loss/accuracy accumulation)."""

    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0

    def update(self, value: float, weight: int = 1) -> None:
        """Add ``value`` observed over ``weight`` samples."""
        self._total += float(value) * weight
        self._count += weight

    @property
    def value(self) -> float:
        """Current mean (0.0 when nothing has been recorded)."""
        return self._total / self._count if self._count else 0.0

    @property
    def count(self) -> int:
        """Number of samples accumulated."""
        return self._count
