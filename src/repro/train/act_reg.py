"""Activation-distribution regularization (the paper's future-work item).

Sec. 6 of the paper: "Future work will further improve training efficiency
by using optimized training loss [7]" — ref. [7] being Ding et al.,
*Regularizing Activation Distribution for Training Binarized Deep
Networks* (CVPR 2019).  That work penalises degenerate pre-quantization
activation distributions so the quantizer's levels stay well used.

This module implements the distribution loss for the 8-bit activation
quantizers of this library: for each quantizer input ``x`` (per channel
when 4-D),

    L_act = lambda * mean_c [ mu_c^2 + (sigma_c - target_std)^2 ]

pushing pre-quantization activations toward zero mean and a healthy spread
so the fixed clipping range neither saturates nor wastes codes.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.quant.activations import QuantizedActivation

__all__ = ["activation_distribution_loss", "collect_quantizer_inputs"]


def collect_quantizer_inputs(model: Module) -> list[Tensor]:
    """The recorded inputs of every enabled activation quantizer.

    Requires ``record_input=True`` on the quantizers (see
    :class:`~repro.quant.activations.QuantizedActivation`) and a forward
    pass since the flag was set.
    """
    tensors = []
    for module in model.modules():
        if isinstance(module, QuantizedActivation) and module.enabled:
            if module.last_input is not None:
                tensors.append(module.last_input)
    return tensors


def activation_distribution_loss(
    inputs: list[Tensor],
    coefficient: float,
    target_std: float = 1.0,
) -> Tensor | None:
    """Distribution loss over recorded quantizer inputs (graph-connected).

    Args:
        inputs: Pre-quantization activation tensors (from
            :func:`collect_quantizer_inputs`); must still be part of the
            current autograd graph.
        coefficient: Loss weight ``lambda``; 0 disables (returns ``None``).
        target_std: Desired per-channel standard deviation.

    Returns:
        Scalar loss tensor, or ``None`` when disabled or nothing recorded.
    """
    if coefficient < 0:
        raise ConfigurationError(f"coefficient must be non-negative, got {coefficient}")
    if target_std <= 0:
        raise ConfigurationError(f"target_std must be positive, got {target_std}")
    if coefficient == 0.0 or not inputs:
        return None

    total: Tensor | None = None
    for x in inputs:
        if x.ndim == 4:
            axes = (0, 2, 3)
        else:
            axes = (0,)
        mean = x.mean(axis=axes, keepdims=True)
        centred = x - mean
        var = (centred * centred).mean(axis=axes, keepdims=True)
        std = (var + 1e-12).sqrt()
        term = (mean * mean).mean() + ((std - target_std) ** 2).mean()
        total = term if total is None else total + term
    return total * (coefficient / len(inputs))
