"""Lambda sweeps: trace the FLightNN accuracy/cost trade-off curve.

The paper generates its Pareto points "by varying lambda" (Sec. 5.1).
:func:`sweep_flightnn_lambdas` automates that: trains one FLightNN per
lambda value on a fixed network/dataset and returns the operating points,
ready for :func:`repro.analysis.pareto.pareto_front`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.dataset import DataSplit
from repro.errors import ConfigurationError
from repro.hw.asic import AsicEnergyModel
from repro.hw.ops import network_largest_layer_ops
from repro.models.registry import build_network
from repro.quant.schemes import scheme_flightnn
from repro.train.trainer import TrainConfig, Trainer

__all__ = ["SweepPoint", "sweep_flightnn_lambdas"]


@dataclass(frozen=True)
class SweepPoint:
    """One trained FLightNN operating point."""

    lambda_1: float
    accuracy: float          # best test accuracy, percent
    storage_mb: float
    energy_uj: float
    mean_filter_k: float

    @property
    def storage_accuracy(self) -> tuple[float, float]:
        """(cost, value) pair for storage-axis Pareto analysis."""
        return (self.storage_mb, self.accuracy)

    @property
    def energy_accuracy(self) -> tuple[float, float]:
        """(cost, value) pair for energy-axis Pareto analysis."""
        return (self.energy_uj, self.accuracy)


def sweep_flightnn_lambdas(
    network_id: int,
    split: DataSplit,
    lambdas: Sequence[float],
    config: TrainConfig,
    width_scale: float = 1.0,
    lambda_0: float = 0.0,
    rng_seed: int = 0,
) -> list[SweepPoint]:
    """Train one FLightNN per ``lambda_1`` value and measure each.

    Args:
        network_id: Table-1 network.
        split: Dataset.
        lambdas: Level-1 regularization strengths to sweep (ascending
            strength = descending cost).
        config: Shared training configuration.
        width_scale: Network width multiplier.
        lambda_0: Level-0 (filter-pruning) coefficient, default off.
        rng_seed: Weight-init seed shared across the sweep so points
            differ only in lambda.
    """
    if not lambdas:
        raise ConfigurationError("sweep requires at least one lambda value")
    energy_model = AsicEnergyModel()
    points: list[SweepPoint] = []
    for lam in lambdas:
        scheme = scheme_flightnn((lambda_0, float(lam)), label=f"FL(l={lam:g})")
        model = build_network(
            network_id, scheme, num_classes=split.num_classes,
            image_size=split.image_shape[1], width_scale=width_scale, rng=rng_seed,
        )
        history = Trainer(model, config).fit(split)
        energy = energy_model.layer_energy_uj(network_largest_layer_ops(model))
        points.append(
            SweepPoint(
                lambda_1=float(lam),
                accuracy=100.0 * history.best_test_accuracy,
                storage_mb=model.storage_mb(),
                energy_uj=energy,
                mean_filter_k=model.mean_filter_k(),
            )
        )
    return points
