"""Training-run records."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EpochStats", "TrainHistory"]


@dataclass(frozen=True)
class EpochStats:
    """Metrics recorded at the end of one epoch.

    The last three fields surface the numerical guardrails: batches whose
    update was suppressed because the loss or a gradient went non-finite,
    batches whose gradients were clipped to the configured global norm, and
    finite-but-spiking loss batches flagged by the divergence monitor.
    """

    epoch: int
    train_loss: float
    train_accuracy: float
    test_accuracy: float
    test_top5: float
    mean_filter_k: float
    storage_mb: float
    learning_rate: float
    nonfinite_batches: int = 0
    clipped_batches: int = 0
    loss_spikes: int = 0


@dataclass
class TrainHistory:
    """Full per-epoch record of one training run.

    Besides the per-epoch stats, ``events`` records run-level fault-tolerance
    actions (checkpoint rollbacks, learning-rate reductions) so a resumed or
    guarded run is auditable after the fact.
    """

    scheme_name: str
    network_id: int
    epochs: list[EpochStats] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        """Record one epoch."""
        self.epochs.append(stats)

    def record_event(self, kind: str, **details) -> None:
        """Record a run-level event (e.g. ``"rollback"``) with its context."""
        self.events.append({"type": kind, **details})

    @property
    def final(self) -> EpochStats:
        """Stats of the last epoch."""
        if not self.epochs:
            raise IndexError("history is empty")
        return self.epochs[-1]

    @property
    def best_test_accuracy(self) -> float:
        """Best test accuracy seen over the run."""
        return max(e.test_accuracy for e in self.epochs)

    @property
    def rollbacks(self) -> int:
        """Number of divergence rollbacks recorded over the run."""
        return sum(1 for e in self.events if e.get("type") == "rollback")

    def as_dict(self) -> dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        return {
            "scheme": self.scheme_name,
            "network_id": self.network_id,
            "epochs": [vars(e) for e in self.epochs],
            "events": [dict(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrainHistory":
        """Rebuild a history from :meth:`as_dict` output (checkpoint resume)."""
        history = cls(scheme_name=data["scheme"], network_id=int(data["network_id"]))
        for epoch in data.get("epochs", ()):
            history.append(EpochStats(**epoch))
        history.events = [dict(e) for e in data.get("events", ())]
        return history
