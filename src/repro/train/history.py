"""Training-run records."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EpochStats", "TrainHistory"]


@dataclass(frozen=True)
class EpochStats:
    """Metrics recorded at the end of one epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    test_accuracy: float
    test_top5: float
    mean_filter_k: float
    storage_mb: float
    learning_rate: float


@dataclass
class TrainHistory:
    """Full per-epoch record of one training run."""

    scheme_name: str
    network_id: int
    epochs: list[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        """Record one epoch."""
        self.epochs.append(stats)

    @property
    def final(self) -> EpochStats:
        """Stats of the last epoch."""
        if not self.epochs:
            raise IndexError("history is empty")
        return self.epochs[-1]

    @property
    def best_test_accuracy(self) -> float:
        """Best test accuracy seen over the run."""
        return max(e.test_accuracy for e in self.epochs)

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "scheme": self.scheme_name,
            "network_id": self.network_id,
            "epochs": [vars(e) for e in self.epochs],
        }
