"""Differentiable neural-network operations on :class:`~repro.nn.tensor.Tensor`.

Implements the ops the FLightNN networks need: 2-D convolution (im2col +
matmul), max/average pooling, padding, activations (ReLU/LeakyReLU), softmax
and cross-entropy.  Each op builds its backward closure explicitly; all are
validated against numerical gradients in the test suite.

Layout convention is NCHW throughout, matching the paper's PyTorch setup.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import ShapeError
from repro.nn.arena import BufferArena, active_arena
from repro.nn.tensor import Tensor, as_tensor

__all__ = [
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "pad2d",
    "relu",
    "leaky_relu",
    "linear",
    "flatten",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution output size {out} <= 0 for input {size}, kernel {kernel}, "
            f"stride {stride}, padding {padding}"
        )
    return out


def _im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    arena: BufferArena | None = None,
) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` (N,C,H,W) into columns of shape (N, C*kh*kw, OH*OW).

    With an ``arena`` the padded input and the column matrix land in warm
    scratch buffers instead of fresh allocations; the element order of the
    windowed copy is identical either way, so the result is bitwise equal.
    """
    n, c, h, w = x.shape
    if kh == 1 and kw == 1 and stride == 1 and padding == 0:
        # 1x1/stride-1 convolutions are a pure matmul over the channel axis;
        # the column matrix is just a reshaped view of the input, no copy.
        return x.reshape(n, c, h * w), h, w
    if padding:
        if arena is None:
            x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        else:
            # Border stays zero from allocation time: only the interior is
            # ever written, so warm reuse skips re-zeroing (same pattern as
            # the inference engine's pad buffers).
            padded = arena.take(
                (n, c, h + 2 * padding, w + 2 * padding), x.dtype, zero="alloc"
            )
            padded[:, :, padding : padding + h, padding : padding + w] = x
            x = padded
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    windows = as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    if arena is not None:
        cols = arena.take((n, c * kh * kw, oh * ow), x.dtype)
        cols.reshape(n, c, kh, kw, oh, ow)[...] = windows
        return cols, oh, ow
    cols = windows.reshape(n, c * kh * kw, oh * ow)
    if not cols.flags["C_CONTIGUOUS"]:
        cols = np.ascontiguousarray(cols)
    return cols, oh, ow


def _col2im(
    dcols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    oh: int,
    ow: int,
    arena: BufferArena | None = None,
) -> np.ndarray:
    """Fold column gradients back into an input-shaped gradient (adjoint of im2col)."""
    n, c, h, w = x_shape
    if kh == 1 and kw == 1 and stride == 1 and padding == 0:
        return dcols.reshape(n, c, h, w)
    if arena is None:
        dx = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=dcols.dtype)
    else:
        dx = arena.take((n, c, h + 2 * padding, w + 2 * padding), dcols.dtype, zero="always")
    d6 = dcols.reshape(n, c, kh, kw, oh, ow)
    if kh == 1 and kw == 1:
        # 1x1 kernels never overlap: a single strided assignment suffices.
        dx[:, :, : oh * stride : stride, : ow * stride : stride] = d6[:, :, 0, 0]
    else:
        for i in range(kh):
            h_end = i + oh * stride
            for j in range(kw):
                w_end = j + ow * stride
                dx[:, :, i:h_end:stride, j:w_end:stride] += d6[:, :, i, j]
    if padding:
        dx = dx[:, :, padding:-padding, padding:-padding]
    return dx


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation of ``x`` (N,C,H,W) with ``weight`` (F,C,KH,KW).

    Args:
        x: Input activations, NCHW.
        weight: Filter bank; first axis is the output-channel (filter) axis —
            the axis FLightNN assigns per-filter ``k`` values along.
        bias: Optional per-filter bias of shape (F,).
        stride: Window stride (same in both spatial dims).
        padding: Zero padding (same on all four sides).
    """
    if x.ndim != 4 or weight.ndim != 4:
        raise ShapeError(f"conv2d expects 4-D input and weight, got {x.shape} and {weight.shape}")
    n, c, _, _ = x.shape
    f, wc, kh, kw = weight.shape
    if wc != c:
        raise ShapeError(f"conv2d channel mismatch: input has {c}, weight expects {wc}")
    if bias is not None and bias.shape != (f,):
        raise ShapeError(f"conv2d bias shape {bias.shape} must be ({f},)")

    arena = active_arena()
    cols, oh, ow = _im2col(x.data, kh, kw, stride, padding, arena)
    w2 = weight.data.reshape(f, c * kh * kw)
    if arena is None:
        out_data = np.matmul(w2, cols)  # (N, F, OH*OW)
    else:
        out_data = np.matmul(w2, cols, out=arena.take((n, f, oh * ow), cols.dtype))
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]
    out_data = out_data.reshape(n, f, oh, ow)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        g2 = g.reshape(n, f, oh * ow)
        k = c * kh * kw
        p = oh * ow
        if weight.requires_grad:
            if p >= 64:
                # Batched GEMM per image then a small (N, F, K) reduction:
                # dgemm handles the transposed `cols` view via strides, so
                # this skips einsum's materialized (F, N*P)/(N*P, K)
                # transpose copies — several times faster at real conv
                # sizes.  Below ~64 output positions the per-batch GEMM
                # overhead wins out and einsum's single contraction is
                # faster.  Both the eager and arena paths share this
                # branch, so their dw stays bitwise identical.
                colsT = cols.transpose(0, 2, 1)
                if arena is None:
                    per_image = np.matmul(g2, colsT)
                else:
                    per_image = np.matmul(
                        g2, colsT, out=arena.take((n, f, k), g2.dtype)
                    )
                dw = per_image.sum(axis=0)
            else:
                dw = np.einsum("nfp,nkp->fk", g2, cols, optimize=True)
            dw = dw.reshape(weight.shape)
            if arena is not None and not dw.flags.c_contiguous:
                # einsum may hand back an F-ordered result whose reshape is a
                # strided view; adopting it would give downstream reductions
                # (the threshold-gradient sweep) a different summation order
                # than the eager path's C-contiguous grad copy.  Normalise the
                # layout so both paths reduce in the same order, bit for bit.
                dw = np.ascontiguousarray(dw)
            weight.accumulate_grad(dw, own=arena is not None)
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(g2.sum(axis=(0, 2)), own=arena is not None)
        if x.requires_grad:
            if arena is None:
                dcols = np.matmul(w2.T, g2)  # (N, K, OH*OW)
            else:
                dcols = np.matmul(w2.T, g2, out=arena.take((n, k, p), g2.dtype))
            dx = _col2im(dcols, x.shape, kh, kw, stride, padding, oh, ow, arena)
            x.accumulate_grad(dx, own=arena is not None)

    return Tensor.from_op(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    sn, sc, sh, sw = x.data.strides
    windows6 = as_strided(
        x.data,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    arena = active_arena()
    if arena is None:
        windows = windows6.reshape(n, c, oh, ow, kernel * kernel)
        flat_arg = windows.argmax(axis=-1)
    else:
        # Same windowed copy + argmax, but into warm scratch.  A copy
        # preserves bits by definition, and argmax is pure integer output.
        windows = arena.take((n, c, oh, ow, kernel * kernel), x.data.dtype)
        windows.reshape(n, c, oh, ow, kernel, kernel)[...] = windows6
        flat_arg = np.argmax(
            windows, axis=-1, out=arena.take((n, c, oh, ow), np.intp)
        )
    out_data = np.take_along_axis(windows, flat_arg[..., None], axis=-1)[..., 0]

    def backward(g: np.ndarray) -> None:
        if arena is None:
            dx = np.zeros_like(x.data)
            ki, kj = np.unravel_index(flat_arg, (kernel, kernel))
            ni, ci, ohi, owi = np.indices(flat_arg.shape)
            target = (ni, ci, ohi * stride + ki, owi * stride + kj)
            np.add.at(dx, target, g)
            x.accumulate_grad(dx)
            return
        dx = arena.take(x.data.shape, x.data.dtype, zero="always")
        # The batch/channel/window index grids are data-independent, so they
        # are built once and reused every step; only the argmax offsets
        # (integer divmod — exact) are recomputed.  Integer arithmetic has a
        # single representable result, so the scatter targets match the
        # eager unravel_index/np.indices construction exactly.
        shape = flat_arg.shape
        ni, ci, rows_base, cols_base = arena.cached(
            ("pool_grids", shape, stride),
            lambda: (
                np.indices(shape)[0],
                np.indices(shape)[1],
                np.indices(shape)[2] * stride,
                np.indices(shape)[3] * stride,
            ),
        )
        ki = arena.take(shape, flat_arg.dtype)
        kj = arena.take(shape, flat_arg.dtype)
        np.floor_divide(flat_arg, kernel, out=ki)
        np.remainder(flat_arg, kernel, out=kj)
        ki += rows_base
        kj += cols_base
        target = (ni, ci, ki, kj)
        if stride >= kernel:
            # Non-overlapping windows scatter to unique cells, so direct
            # assignment replaces the much slower np.add.at.  ``g + 0.0``
            # keeps bitwise parity with ``0 + g`` at signed zeros.
            g_norm = arena.take(g.shape, g.dtype)
            np.add(g, 0.0, out=g_norm)
            dx[target] = g_norm
        else:
            np.add.at(dx, target, g)
        x.accumulate_grad(dx, own=True)

    return Tensor.from_op(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over square windows."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    sn, sc, sh, sw = x.data.strides
    windows = as_strided(
        x.data,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    out_data = windows.mean(axis=(-2, -1))
    scale = 1.0 / (kernel * kernel)

    arena = active_arena()

    def backward(g: np.ndarray) -> None:
        if arena is None:
            dx = np.zeros_like(x.data)
            g_scaled = g * scale
        elif stride >= kernel and h == oh * kernel and w == ow * kernel:
            # Disjoint windows tiling the whole input: every cell receives
            # exactly one ``0 + g_scaled`` add, so one broadcast copy of the
            # ``+ 0.0``-normalized gradient replaces kernel^2 strided adds
            # (the dominant cost for the global average pool).
            g_scaled = arena.take(g.shape, g.dtype)
            np.multiply(g, scale, out=g_scaled)
            np.add(g_scaled, 0.0, out=g_scaled)
            dx = arena.take(x.data.shape, x.data.dtype)
            dx.reshape(n, c, oh, kernel, ow, kernel)[...] = g_scaled[
                :, :, :, None, :, None
            ]
            x.accumulate_grad(dx, own=True)
            return
        else:
            dx = arena.take(x.data.shape, x.data.dtype, zero="always")
            g_scaled = arena.take(g.shape, g.dtype)
            np.multiply(g, scale, out=g_scaled)
        for i in range(kernel):
            for j in range(kernel):
                dx[:, :, i : i + oh * stride : stride, j : j + ow * stride : stride] += g_scaled
        x.accumulate_grad(dx, own=arena is not None)

    return Tensor.from_op(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average each channel's full spatial extent down to 1x1 then flatten to (N, C)."""
    return x.mean(axis=(2, 3))


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two spatial dimensions of an NCHW tensor."""
    if padding == 0:
        return x
    pads = ((0, 0), (0, 0), (padding, padding), (padding, padding))

    def backward(g: np.ndarray) -> None:
        x.accumulate_grad(g[:, :, padding:-padding, padding:-padding])

    return Tensor.from_op(np.pad(x.data, pads), (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    arena = active_arena()
    if arena is None:
        mask = x.data > 0
        out_data = x.data * mask
    else:
        # Multiply-by-mask (NOT np.maximum) so x < 0 yields -0.0 exactly as
        # the eager ``x * mask`` does — maximum would normalize it to +0.0
        # and break bitwise parity.
        mask = arena.take(x.data.shape, np.bool_)
        np.greater(x.data, 0, out=mask)
        out_data = arena.take(x.data.shape, x.data.dtype)
        np.multiply(x.data, mask, out=out_data)

    def backward(g: np.ndarray) -> None:
        if arena is None:
            x.accumulate_grad(g * mask)
        else:
            db = arena.take(g.shape, g.dtype)
            np.multiply(g, mask, out=db)
            x.accumulate_grad(db, own=True)

    return Tensor.from_op(out_data, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU, the activation used by every network in the paper."""
    arena = active_arena()
    # The fast path leans on two float facts, checked here (not assumed):
    # max(x, slope*x) picks the same bits as x*where(x>0, 1, slope) only
    # for 0 <= slope <= 1, and the backward's scale construction
    # p*(1-slope)+slope hits exactly 1.0 only when that scalar identity
    # holds for this slope.
    exact = 0.0 <= negative_slope <= 1.0 and (1.0 - negative_slope) + negative_slope == 1.0
    if arena is None or not exact:
        positive = x.data > 0
        scale = np.where(positive, 1.0, negative_slope)

        def backward(g: np.ndarray) -> None:
            x.accumulate_grad(g * scale)

        return Tensor.from_op(x.data * scale, (x,), backward)

    # Fast forward: max(x, slope*x).  The winning operand is returned
    # unchanged, ties at +/-0.0 resolve to x's bits (slope*x has the same
    # sign), so the result is bitwise equal to the eager x*scale.  Masked
    # ops (np.where / copyto(where=)) are 5-8x slower than plain ufuncs
    # here, hence the arithmetic construction.
    positive = arena.take(x.data.shape, np.bool_)
    np.greater(x.data, 0, out=positive)
    out_data = arena.take(x.data.shape, x.data.dtype)
    np.multiply(x.data, negative_slope, out=out_data)
    np.maximum(x.data, out_data, out=out_data)

    def backward(g: np.ndarray) -> None:
        # scale = positive * (1-slope) + slope is exactly {1.0, slope}
        # (the `exact` check above), i.e. bitwise np.where(p, 1.0, slope);
        # g * scale then matches the eager product including inf/NaN
        # gradients, which a bool-mask blend would corrupt (inf * 0).
        scale = arena.take(g.shape, g.dtype)
        np.multiply(positive, 1.0 - negative_slope, out=scale)
        scale += negative_slope
        db = arena.take(g.shape, g.dtype)
        np.multiply(g, scale, out=db)
        x.accumulate_grad(db, own=True)

    return Tensor.from_op(out_data, (x,), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for 2-D input (N, in_features)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def flatten(x: Tensor) -> Tensor:
    """Collapse all non-batch dimensions: (N, ...) -> (N, prod(...))."""
    n = x.shape[0]
    return x.reshape(n, int(np.prod(x.shape[1:])))


def _log_softmax_data(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def log_softmax(x: Tensor) -> Tensor:
    """Row-wise log-softmax for 2-D logits (N, classes)."""
    out_data = _log_softmax_data(x.data)
    softmax_data = np.exp(out_data)

    def backward(g: np.ndarray) -> None:
        x.accumulate_grad(g - softmax_data * g.sum(axis=1, keepdims=True))

    return Tensor.from_op(out_data, (x,), backward)


def softmax(x: Tensor) -> Tensor:
    """Row-wise softmax for 2-D logits (N, classes)."""
    out_data = np.exp(_log_softmax_data(x.data))

    def backward(g: np.ndarray) -> None:
        inner = (g * out_data).sum(axis=1, keepdims=True)
        x.accumulate_grad(out_data * (g - inner))

    return Tensor.from_op(out_data, (x,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between row logits and integer class labels.

    This is the ``L_CE`` term of the paper's total loss
    ``L_total = L_CE + L_reg,k`` (Sec. 4.3).

    Args:
        logits: (N, classes) unnormalized scores.
        labels: (N,) integer array of target classes.
    """
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects 2-D logits, got shape {logits.shape}")
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ShapeError(f"labels shape {labels.shape} does not match batch size {n}")

    log_probs = _log_softmax_data(logits.data)
    picked = log_probs[np.arange(n), labels]
    loss = -picked.mean()
    probs = np.exp(log_probs)

    def backward(g: np.ndarray) -> None:
        dlogits = probs.copy()
        dlogits[np.arange(n), labels] -= 1.0
        logits.accumulate_grad(dlogits * (float(g) / n))

    return Tensor.from_op(np.asarray(loss), (logits,), backward)
