"""Differentiable neural-network operations on :class:`~repro.nn.tensor.Tensor`.

Implements the ops the FLightNN networks need: 2-D convolution (im2col +
matmul), max/average pooling, padding, activations (ReLU/LeakyReLU), softmax
and cross-entropy.  Each op builds its backward closure explicitly; all are
validated against numerical gradients in the test suite.

Layout convention is NCHW throughout, matching the paper's PyTorch setup.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import ShapeError
from repro.nn.tensor import Tensor, as_tensor

__all__ = [
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "pad2d",
    "relu",
    "leaky_relu",
    "linear",
    "flatten",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution output size {out} <= 0 for input {size}, kernel {kernel}, "
            f"stride {stride}, padding {padding}"
        )
    return out


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` (N,C,H,W) into columns of shape (N, C*kh*kw, OH*OW)."""
    n, c, h, w = x.shape
    if kh == 1 and kw == 1 and stride == 1 and padding == 0:
        # 1x1/stride-1 convolutions are a pure matmul over the channel axis;
        # the column matrix is just a reshaped view of the input, no copy.
        return x.reshape(n, c, h * w), h, w
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    windows = as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    cols = windows.reshape(n, c * kh * kw, oh * ow)
    if not cols.flags["C_CONTIGUOUS"]:
        cols = np.ascontiguousarray(cols)
    return cols, oh, ow


def _col2im(
    dcols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Fold column gradients back into an input-shaped gradient (adjoint of im2col)."""
    n, c, h, w = x_shape
    if kh == 1 and kw == 1 and stride == 1 and padding == 0:
        return dcols.reshape(n, c, h, w)
    dx = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=dcols.dtype)
    d6 = dcols.reshape(n, c, kh, kw, oh, ow)
    if kh == 1 and kw == 1:
        # 1x1 kernels never overlap: a single strided assignment suffices.
        dx[:, :, : oh * stride : stride, : ow * stride : stride] = d6[:, :, 0, 0]
    else:
        for i in range(kh):
            h_end = i + oh * stride
            for j in range(kw):
                w_end = j + ow * stride
                dx[:, :, i:h_end:stride, j:w_end:stride] += d6[:, :, i, j]
    if padding:
        dx = dx[:, :, padding:-padding, padding:-padding]
    return dx


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation of ``x`` (N,C,H,W) with ``weight`` (F,C,KH,KW).

    Args:
        x: Input activations, NCHW.
        weight: Filter bank; first axis is the output-channel (filter) axis —
            the axis FLightNN assigns per-filter ``k`` values along.
        bias: Optional per-filter bias of shape (F,).
        stride: Window stride (same in both spatial dims).
        padding: Zero padding (same on all four sides).
    """
    if x.ndim != 4 or weight.ndim != 4:
        raise ShapeError(f"conv2d expects 4-D input and weight, got {x.shape} and {weight.shape}")
    n, c, _, _ = x.shape
    f, wc, kh, kw = weight.shape
    if wc != c:
        raise ShapeError(f"conv2d channel mismatch: input has {c}, weight expects {wc}")
    if bias is not None and bias.shape != (f,):
        raise ShapeError(f"conv2d bias shape {bias.shape} must be ({f},)")

    cols, oh, ow = _im2col(x.data, kh, kw, stride, padding)
    w2 = weight.data.reshape(f, c * kh * kw)
    out_data = np.matmul(w2, cols)  # (N, F, OH*OW)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]
    out_data = out_data.reshape(n, f, oh, ow)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        g2 = g.reshape(n, f, oh * ow)
        if weight.requires_grad:
            dw = np.einsum("nfp,nkp->fk", g2, cols, optimize=True)
            weight.accumulate_grad(dw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(g2.sum(axis=(0, 2)))
        if x.requires_grad:
            dcols = np.matmul(w2.T, g2)  # (N, K, OH*OW)
            x.accumulate_grad(_col2im(dcols, x.shape, kh, kw, stride, padding, oh, ow))

    return Tensor.from_op(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    sn, sc, sh, sw = x.data.strides
    windows = as_strided(
        x.data,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    ).reshape(n, c, oh, ow, kernel * kernel)
    flat_arg = windows.argmax(axis=-1)
    out_data = np.take_along_axis(windows, flat_arg[..., None], axis=-1)[..., 0]

    def backward(g: np.ndarray) -> None:
        dx = np.zeros_like(x.data)
        ki, kj = np.unravel_index(flat_arg, (kernel, kernel))
        ni, ci, ohi, owi = np.indices(flat_arg.shape)
        np.add.at(dx, (ni, ci, ohi * stride + ki, owi * stride + kj), g)
        x.accumulate_grad(dx)

    return Tensor.from_op(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over square windows."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    sn, sc, sh, sw = x.data.strides
    windows = as_strided(
        x.data,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    out_data = windows.mean(axis=(-2, -1))
    scale = 1.0 / (kernel * kernel)

    def backward(g: np.ndarray) -> None:
        dx = np.zeros_like(x.data)
        for i in range(kernel):
            for j in range(kernel):
                dx[:, :, i : i + oh * stride : stride, j : j + ow * stride : stride] += g * scale
        x.accumulate_grad(dx)

    return Tensor.from_op(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average each channel's full spatial extent down to 1x1 then flatten to (N, C)."""
    return x.mean(axis=(2, 3))


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two spatial dimensions of an NCHW tensor."""
    if padding == 0:
        return x
    pads = ((0, 0), (0, 0), (padding, padding), (padding, padding))

    def backward(g: np.ndarray) -> None:
        x.accumulate_grad(g[:, :, padding:-padding, padding:-padding])

    return Tensor.from_op(np.pad(x.data, pads), (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    mask = x.data > 0

    def backward(g: np.ndarray) -> None:
        x.accumulate_grad(g * mask)

    return Tensor.from_op(x.data * mask, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU, the activation used by every network in the paper."""
    positive = x.data > 0
    scale = np.where(positive, 1.0, negative_slope)

    def backward(g: np.ndarray) -> None:
        x.accumulate_grad(g * scale)

    return Tensor.from_op(x.data * scale, (x,), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for 2-D input (N, in_features)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def flatten(x: Tensor) -> Tensor:
    """Collapse all non-batch dimensions: (N, ...) -> (N, prod(...))."""
    n = x.shape[0]
    return x.reshape(n, int(np.prod(x.shape[1:])))


def _log_softmax_data(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def log_softmax(x: Tensor) -> Tensor:
    """Row-wise log-softmax for 2-D logits (N, classes)."""
    out_data = _log_softmax_data(x.data)
    softmax_data = np.exp(out_data)

    def backward(g: np.ndarray) -> None:
        x.accumulate_grad(g - softmax_data * g.sum(axis=1, keepdims=True))

    return Tensor.from_op(out_data, (x,), backward)


def softmax(x: Tensor) -> Tensor:
    """Row-wise softmax for 2-D logits (N, classes)."""
    out_data = np.exp(_log_softmax_data(x.data))

    def backward(g: np.ndarray) -> None:
        inner = (g * out_data).sum(axis=1, keepdims=True)
        x.accumulate_grad(out_data * (g - inner))

    return Tensor.from_op(out_data, (x,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between row logits and integer class labels.

    This is the ``L_CE`` term of the paper's total loss
    ``L_total = L_CE + L_reg,k`` (Sec. 4.3).

    Args:
        logits: (N, classes) unnormalized scores.
        labels: (N,) integer array of target classes.
    """
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects 2-D logits, got shape {logits.shape}")
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ShapeError(f"labels shape {labels.shape} does not match batch size {n}")

    log_probs = _log_softmax_data(logits.data)
    picked = log_probs[np.arange(n), labels]
    loss = -picked.mean()
    probs = np.exp(log_probs)

    def backward(g: np.ndarray) -> None:
        dlogits = probs.copy()
        dlogits[np.arange(n), labels] -= 1.0
        logits.accumulate_grad(dlogits * (float(g) / n))

    return Tensor.from_op(np.asarray(loss), (logits,), backward)
