"""Step-scoped scratch-buffer arena for the training fast path.

The eager training step allocates every large intermediate fresh: im2col
column matrices, padded inputs, col2im gradients, activation outputs.  At
training batch sizes those arrays are megabytes each, so every allocation
is an mmap + page-fault walk that can cost several times the arithmetic
it feeds.  The arena replaces those allocations with reusable buffers:

* :class:`BufferArena` hands out scratch arrays keyed by *request order*
  within a pass.  Ops request buffers in a deterministic sequence each
  step (forward order, then backward order), so slot ``i`` always sees the
  same shape and the buffer allocated on step 1 is reused on every later
  step via ``out=``-style in-place numpy ops.
* :func:`use_arena` installs an arena as the *active* one for a block on
  the current thread and resets its request cursor (one block = one
  forward+backward pass).  Ops in :mod:`repro.nn.functional` pick it up
  via :func:`active_arena` and fall back to fresh allocations when none is
  installed — the eager path is untouched.

Safety rules (why this cannot change results):

* A slot is handed out exactly once per pass, so two live intermediates
  never alias; buffers written during the forward remain intact for the
  backward closures that captured them, and are recycled only at the next
  ``begin_pass`` — after the step's graph is dead.
* Gradients handed to :meth:`~repro.nn.tensor.Tensor.accumulate_grad` are
  defensively copied on first accumulation, so arena-owned gradient
  scratch never leaks into parameter state.
* Every in-place rewrite the fast path performs (``matmul(..., out=)``,
  windowed copies into preallocated columns, fused activation updates) is
  bitwise identical to its eager counterpart — asserted by the parity
  tests in ``tests/nn/test_arena.py`` and the 10-step training parity
  proof.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = ["BufferArena", "RegisterPlanner", "use_arena", "active_arena"]

_TLS = threading.local()


class BufferArena:
    """Reusable scratch buffers keyed by request order within a pass.

    Attributes:
        allocations / reuses: Fresh-allocation vs served-warm counters
            (the fast-path tests assert reuse actually happens).
    """

    def __init__(self) -> None:
        self._slots: dict[tuple, np.ndarray] = {}
        self._constants: dict[tuple, object] = {}
        self._cursor = 0
        self.allocations = 0
        self.reuses = 0

    def begin_pass(self) -> None:
        """Start a new forward+backward pass: recycle all slots.

        Callers must guarantee no arrays from previous passes are still
        live (in this repo: the previous step's graph has been released).
        """
        self._cursor = 0

    def take(self, shape: tuple, dtype=np.float64, zero: str = "no") -> np.ndarray:
        """The next scratch buffer of this pass.

        Args:
            shape / dtype: Requested buffer geometry.  The slot's buffer is
                reallocated if the geometry changed since the previous pass
                (e.g. a smaller final batch), so the shape key keeps both
                sizes warm across an epoch boundary.
            zero: ``"no"`` — contents are arbitrary, caller overwrites
                everything; ``"alloc"`` — zeroed only when freshly
                allocated (for buffers whose untouched region — e.g. a pad
                border — is written once and then only re-read);
                ``"always"`` — zeroed on every request (accumulation
                targets).

        Returns:
            A C-contiguous array owned by the arena until the next
            :meth:`begin_pass`.
        """
        key = (self._cursor, tuple(shape), np.dtype(dtype))
        self._cursor += 1
        buf = self._slots.get(key)
        if buf is None:
            buf = np.zeros(shape, dtype=dtype) if zero != "no" else np.empty(shape, dtype=dtype)
            self._slots[key] = buf
            self.allocations += 1
        else:
            self.reuses += 1
            if zero == "always":
                buf.fill(0.0)
        return buf

    def cached(self, key: tuple, builder):
        """A step-invariant constant, built once and kept across passes.

        For data-independent arrays that ops recompute identically every
        step (e.g. the ``np.indices`` grid a pooling backward scatters
        through).  Unlike :meth:`take` slots, cached values must never be
        written to after ``builder`` returns.
        """
        value = self._constants.get(key)
        if value is None:
            value = builder()
            self._constants[key] = value
        return value

    def __repr__(self) -> str:
        return (
            f"BufferArena(slots={len(self._slots)}, "
            f"allocations={self.allocations}, reuses={self.reuses})"
        )


class RegisterPlanner:
    """Liveness-driven register allocation over flat element counts.

    Where :class:`BufferArena` recycles buffers *between* passes (training:
    every intermediate lives for the whole step), the traced inference
    compiler knows each buffer's exact live interval and can reuse memory
    *within* one pass.  The planner is the allocation half of that: callers
    walk their program in order, ``alloc`` a register when a value is
    defined and ``free`` it after its last reader, and the planner hands
    back register ids backed by a best-fit free list.  Peak memory is then
    ``sum(sizes)`` — the high-water mark of simultaneously-live values —
    instead of the sum over all values.

    Planning is separate from storage on purpose: the traced program plans
    once (element counts only) and each execution context materializes the
    final ``sizes`` as flat arrays, carving typed views out of them at bind
    time.  A register freed and re-allocated for a larger value grows
    in-place (its final size is known before any array is created), which
    keeps the register count minimal without over-allocating.

    ``alloc_dedicated`` registers opt out of reuse entirely — used for
    buffers whose *untouched* contents must survive, e.g. a conv padding
    buffer whose zeroed border is written once and only re-read.
    """

    def __init__(self) -> None:
        self.sizes: list[int] = []  # register id -> element count
        self._free: list[int] = []
        self._dedicated: set[int] = set()

    def alloc(self, elems: int) -> int:
        """A register holding >= ``elems`` elements (best-fit reuse)."""
        best = None
        for rid in self._free:
            if self.sizes[rid] >= elems and (best is None or self.sizes[rid] < self.sizes[best]):
                best = rid
        if best is None and self._free:
            # Nothing big enough: grow the largest free register instead of
            # opening a new one (final sizes are materialized after planning).
            best = max(self._free, key=lambda rid: self.sizes[rid])
            self.sizes[best] = elems
        if best is not None:
            self._free.remove(best)
            return best
        self.sizes.append(elems)
        return len(self.sizes) - 1

    def alloc_dedicated(self, elems: int) -> int:
        """A register excluded from reuse (``free`` is a no-op on it)."""
        self.sizes.append(elems)
        rid = len(self.sizes) - 1
        self._dedicated.add(rid)
        return rid

    def free(self, rid: int) -> None:
        """Return ``rid`` to the free list (dedicated registers stay put)."""
        if rid not in self._dedicated and rid not in self._free:
            self._free.append(rid)

    def peak_elems(self) -> int:
        """Total elements across all registers — the plan's high-water mark."""
        return sum(self.sizes)


def active_arena() -> "BufferArena | None":
    """The arena installed by :func:`use_arena` on this thread, if any."""
    return getattr(_TLS, "arena", None)


@contextmanager
def use_arena(arena: "BufferArena | None") -> Iterator["BufferArena | None"]:
    """Install ``arena`` for one forward+backward pass on this thread.

    Entering resets the arena's request cursor (``begin_pass``), so every
    ``with use_arena(...)`` block replays the same slot sequence and gets
    warm buffers.  ``use_arena(None)`` is a no-op context so callers can
    pass an optional arena straight through.  Not reentrant with the same
    arena: a nested block would reset the cursor and alias live slots.
    """
    if arena is None:
        yield None
        return
    previous = getattr(_TLS, "arena", None)
    arena.begin_pass()
    _TLS.arena = arena
    try:
        yield arena
    finally:
        _TLS.arena = previous
