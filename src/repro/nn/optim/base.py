"""Optimizer base class."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor

__all__ = ["Optimizer"]


class Optimizer:
    """Base class holding the parameter list and learning rate.

    Subclasses implement :meth:`step` which reads ``param.grad`` and updates
    ``param.data`` in place.  In Algorithm 1 the parameters handed to the
    optimizer are the *full-precision master weights* plus biases,
    batch-norm affines, and FLightNN thresholds ``t``; gradients arrive on
    them via the STE/sigmoid relaxations in :mod:`repro.quant`.
    """

    def __init__(self, params: Sequence[Tensor], lr: float) -> None:
        params = list(params)
        if not params:
            raise ConfigurationError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        seen: set[int] = set()
        for p in params:
            if not isinstance(p, Tensor) or not p.requires_grad:
                raise ConfigurationError("optimizer parameters must be Tensors requiring grad")
            if id(p) in seen:
                raise ConfigurationError("duplicate parameter passed to optimizer")
            seen.add(id(p))
        self.params = params
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError

    # -- (de)serialization -----------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of all mutable optimizer state (arrays are copied).

        The contract mirrors ``torch.optim``: everything a resumed run needs
        to continue bitwise-identically — learning rate plus whatever moment
        buffers the subclass keeps, as lists parallel to :attr:`params`.
        """
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        Raises:
            ConfigurationError: On missing entries or buffer shape/count
                mismatches against the current parameter list.
        """
        if "lr" not in state:
            raise ConfigurationError("optimizer state dict is missing 'lr'")
        lr = float(state["lr"])
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def _load_buffers(self, name: str, targets: list, source) -> None:
        """Copy a per-parameter buffer list out of a state dict, strictly."""
        if source is None:
            raise ConfigurationError(f"optimizer state dict is missing {name!r}")
        source = list(source)
        if len(source) != len(targets):
            raise ConfigurationError(
                f"optimizer state {name!r} has {len(source)} buffers, "
                f"expected {len(targets)}"
            )
        for target, value in zip(targets, source):
            value = np.asarray(value)
            if target.shape != value.shape:
                raise ConfigurationError(
                    f"optimizer state {name!r} shape mismatch: "
                    f"have {target.shape}, got {value.shape}"
                )
            target[...] = value
