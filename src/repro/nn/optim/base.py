"""Optimizer base class."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor

__all__ = ["Optimizer"]


class Optimizer:
    """Base class holding the parameter list and learning rate.

    Subclasses implement :meth:`step` which reads ``param.grad`` and updates
    ``param.data`` in place.  In Algorithm 1 the parameters handed to the
    optimizer are the *full-precision master weights* plus biases,
    batch-norm affines, and FLightNN thresholds ``t``; gradients arrive on
    them via the STE/sigmoid relaxations in :mod:`repro.quant`.
    """

    def __init__(self, params: Sequence[Tensor], lr: float) -> None:
        params = list(params)
        if not params:
            raise ConfigurationError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        seen: set[int] = set()
        for p in params:
            if not isinstance(p, Tensor) or not p.requires_grad:
                raise ConfigurationError("optimizer parameters must be Tensors requiring grad")
            if id(p) in seen:
                raise ConfigurationError("duplicate parameter passed to optimizer")
            seen.add(id(p))
        self.params = params
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError
