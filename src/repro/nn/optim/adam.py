"""Adam optimizer (Kingma & Ba, 2015) — the optimizer used in the paper."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.optim.base import Optimizer
from repro.nn.tensor import Tensor

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates.

    Args:
        params: Parameters to update.
        lr: Step size.
        betas: Exponential decay rates for the moment estimates.
        eps: Denominator floor.
        weight_decay: L2 penalty added to the gradient.
    """

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["t"] = self._t
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        if "t" not in state:
            raise ConfigurationError("Adam state dict is missing 't'")
        self._t = int(state["t"])
        self._load_buffers("m", self._m, state.get("m"))
        self._load_buffers("v", self._v, state.get("v"))

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            p.bump_version()
