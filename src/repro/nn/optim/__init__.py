"""Optimizers and learning-rate schedules."""

from repro.nn.optim.base import Optimizer
from repro.nn.optim.sgd import SGD
from repro.nn.optim.adam import Adam
from repro.nn.optim.lr_scheduler import ConstantLR, CosineDecayLR, StepDecayLR

__all__ = ["Optimizer", "SGD", "Adam", "ConstantLR", "StepDecayLR", "CosineDecayLR"]
