"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.optim.base import Optimizer
from repro.nn.tensor import Tensor

__all__ = ["SGD"]


class SGD(Optimizer):
    """Classic SGD: ``v = mu*v + g``; ``w -= lr * v``.

    Args:
        params: Parameters to update.
        lr: Learning rate.
        momentum: Momentum coefficient ``mu`` (0 disables).
        weight_decay: L2 penalty added to the gradient.
    """

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ConfigurationError(f"weight_decay must be non-negative, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._load_buffers("velocity", self._velocity, state.get("velocity"))

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g
            p.bump_version()
