"""Learning-rate schedules.

Schedules mutate ``optimizer.lr`` once per epoch via :meth:`step`.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.nn.optim.base import Optimizer

__all__ = ["ConstantLR", "StepDecayLR", "CosineDecayLR"]


class _Scheduler:
    """Base scheduler tracking the epoch counter and initial LR."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        lr = self._lr_at(self.epoch)
        self.optimizer.lr = lr
        return lr

    def state_dict(self) -> dict:
        """Snapshot of the schedule position (epoch counter and base LR)."""
        return {"epoch": self.epoch, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        Only the schedule position is restored; the optimizer's current LR is
        part of the *optimizer* state and is not touched here.
        """
        if "epoch" not in state or "base_lr" not in state:
            raise ConfigurationError("scheduler state dict needs 'epoch' and 'base_lr'")
        self.epoch = int(state["epoch"])
        self.base_lr = float(state["base_lr"])

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(_Scheduler):
    """Keep the learning rate fixed (explicit no-op schedule)."""

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepDecayLR(_Scheduler):
    """Multiply LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ConfigurationError(f"step_size must be >= 1, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineDecayLR(_Scheduler):
    """Cosine-anneal LR from the base value to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_epochs < 1:
            raise ConfigurationError(f"total_epochs must be >= 1, got {total_epochs}")
        if min_lr < 0:
            raise ConfigurationError(f"min_lr must be non-negative, got {min_lr}")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def _lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * progress))
