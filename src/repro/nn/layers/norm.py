"""Batch normalisation.

The paper follows every convolution with batch-norm and Leaky ReLU
(Sec. 5.1); batch-norm is also what lets aggressively quantized weights keep
activations in a trainable range.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["BatchNorm2d"]


class BatchNorm2d(Module):
    """Batch normalisation over the channel axis of NCHW tensors.

    Args:
        num_features: Channel count ``C``.
        eps: Variance floor for numerical stability.
        momentum: Running-statistics update rate.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        if num_features < 1:
            raise ConfigurationError("BatchNorm2d num_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ConfigurationError(f"momentum must be in (0, 1], got {momentum}")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((num_features,)), name="bn.gamma")
        self.beta = Parameter(init.zeros((num_features,)), name="bn.beta")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm2d expects (N, {self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centred = x - mean
            var = (centred * centred).mean(axis=(0, 2, 3), keepdims=True)
            # Update running statistics outside the autograd graph.
            m = self.momentum
            self.running_mean[...] = (1 - m) * self.running_mean + m * mean.data.reshape(-1)
            n = x.size / self.num_features
            unbiased = var.data.reshape(-1) * (n / max(n - 1, 1))
            self.running_var[...] = (1 - m) * self.running_var + m * unbiased
            x_hat = centred / (var + self.eps).sqrt()
        else:
            mean = self.running_mean.reshape(1, -1, 1, 1)
            std = np.sqrt(self.running_var + self.eps).reshape(1, -1, 1, 1)
            x_hat = (x - mean) * (1.0 / std)
        gamma = self.gamma.reshape(1, self.num_features, 1, 1)
        beta = self.beta.reshape(1, self.num_features, 1, 1)
        return x_hat * gamma + beta

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features}, eps={self.eps}, momentum={self.momentum})"
