"""Batch normalisation.

The paper follows every convolution with batch-norm and Leaky ReLU
(Sec. 5.1); batch-norm is also what lets aggressively quantized weights keep
activations in a trainable range.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn import init
from repro.nn.arena import active_arena
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["BatchNorm2d"]


class BatchNorm2d(Module):
    """Batch normalisation over the channel axis of NCHW tensors.

    Args:
        num_features: Channel count ``C``.
        eps: Variance floor for numerical stability.
        momentum: Running-statistics update rate.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        if num_features < 1:
            raise ConfigurationError("BatchNorm2d num_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ConfigurationError(f"momentum must be in (0, 1], got {momentum}")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((num_features,)), name="bn.gamma")
        self.beta = Parameter(init.zeros((num_features,)), name="bn.beta")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm2d expects (N, {self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            arena = active_arena()
            # count == 1 (a single value per channel) degenerates the
            # backward's reductions to no-ops in the eager graph; the fused
            # path keeps its sums, which would normalize -0.0 gradients.
            # Vanishingly rare in practice — just take the reference path.
            if arena is not None and x.size > self.num_features:
                return self._fused_train_forward(x, arena)
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centred = x - mean
            var = (centred * centred).mean(axis=(0, 2, 3), keepdims=True)
            # Update running statistics outside the autograd graph.
            m = self.momentum
            self.running_mean[...] = (1 - m) * self.running_mean + m * mean.data.reshape(-1)
            n = x.size / self.num_features
            unbiased = var.data.reshape(-1) * (n / max(n - 1, 1))
            self.running_var[...] = (1 - m) * self.running_var + m * unbiased
            x_hat = centred / (var + self.eps).sqrt()
        else:
            mean = self.running_mean.reshape(1, -1, 1, 1)
            std = np.sqrt(self.running_var + self.eps).reshape(1, -1, 1, 1)
            x_hat = (x - mean) * (1.0 / std)
        gamma = self.gamma.reshape(1, self.num_features, 1, 1)
        beta = self.beta.reshape(1, self.num_features, 1, 1)
        return x_hat * gamma + beta

    def _fused_train_forward(self, x: Tensor, arena) -> Tensor:
        """Training forward with one hand-written backward closure.

        Replays the exact arithmetic of the eager Tensor-graph chain
        (``mean -> centred -> var -> x_hat -> gamma*x_hat + beta``) with
        arena scratch and in-place ufuncs, and replicates the eager
        backward's accumulation expressions *and order* term by term, so
        both directions are bitwise identical to the graph version (the
        fast-path parity tests assert this).  What it saves is the graph
        bookkeeping: ~10 Tensor nodes per layer, their defensive gradient
        copies, and every intermediate allocation.
        """
        xd = x.data
        shape = xd.shape
        count = shape[0] * shape[2] * shape[3]
        c = 1.0 / count
        reduced = (1, self.num_features, 1, 1)
        # The eager backward reduces via Tensor._unbroadcast, which sums
        # only the axes that actually broadcast (size > 1).  Summing a
        # size-1 axis is a value no-op but normalizes -0.0, so the fused
        # reductions must select the same axes to stay bitwise identical.
        raxes = tuple(i for i in (0, 2, 3) if shape[i] > 1)

        s1 = xd.sum(axis=(0, 2, 3), keepdims=True)
        mean = s1 * c
        centred = arena.take(shape, xd.dtype)
        np.subtract(xd, mean, out=centred)
        sq = arena.take(shape, xd.dtype)
        np.multiply(centred, centred, out=sq)
        var = sq.sum(axis=(0, 2, 3), keepdims=True) * c

        m = self.momentum
        self.running_mean[...] = (1 - m) * self.running_mean + m * mean.reshape(-1)
        n = xd.size / self.num_features
        unbiased = var.reshape(-1) * (n / max(n - 1, 1))
        self.running_var[...] = (1 - m) * self.running_var + m * unbiased

        std = np.sqrt(var + self.eps)
        x_hat = arena.take(shape, xd.dtype)
        np.divide(centred, std, out=x_hat)
        gamma_r = self.gamma.data.reshape(reduced)
        beta_r = self.beta.data.reshape(reduced)
        out_data = arena.take(shape, xd.dtype)
        np.multiply(x_hat, gamma_r, out=out_data)
        np.add(out_data, beta_r, out=out_data)

        gamma, beta = self.gamma, self.beta

        def backward(g: np.ndarray) -> None:
            if beta.requires_grad:
                beta.accumulate_grad(g.sum(axis=raxes, keepdims=True).reshape(-1))
            full = arena.take(shape, g.dtype)
            if gamma.requires_grad:
                np.multiply(g, x_hat, out=full)
                gamma.accumulate_grad(
                    full.sum(axis=raxes, keepdims=True).reshape(-1)
                )
            if not x.requires_grad:
                return
            gxh = arena.take(shape, g.dtype)
            np.multiply(g, gamma_r, out=gxh)
            # d std: eager computes (-gxh * centred) / std**2, then
            # unbroadcasts (sums) to the reduced shape.  Multiply/divide and
            # round-to-nearest are sign-symmetric, so negating the *sum* of
            # the un-negated product is bit-identical and saves a full pass.
            np.multiply(gxh, centred, out=full)
            np.divide(full, std**2, out=full)
            gsd = -(full.sum(axis=raxes, keepdims=True))
            # Through sqrt and the two scalar-multiply nodes down to the
            # squared-deviation gradient, broadcast back to full size.
            gs2 = (gsd * 0.5 / std) * c
            # d centred: first the divide path, then the square path twice
            # (eager visits centred twice as the two factors of
            # ``centred * centred``) — same order, same three terms.
            gct = arena.take(shape, g.dtype)
            np.divide(gxh, std, out=gct)
            np.multiply(gs2, centred, out=full)
            gct += full
            gct += full
            # d x: the subtract path passes gct straight through; the mean
            # path contributes -(sum(gct)) * c.  Negating the sum equals the
            # eager sum of negated values bit for bit (IEEE rounding is
            # sign-symmetric), saving a full-size negation pass.
            gs1 = -(gct.sum(axis=raxes, keepdims=True)) * c
            gct += gs1
            x.accumulate_grad(gct, own=True)

        return Tensor.from_op(out_data, (x, gamma, beta), backward)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features}, eps={self.eps}, momentum={self.momentum})"
