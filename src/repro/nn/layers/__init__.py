"""Layer catalogue used by the Table-1 network configurations."""

from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.activation import LeakyReLU, ReLU
from repro.nn.layers.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.layers.container import Flatten, Identity, Sequential
from repro.nn.layers.dropout import Dropout

__all__ = [
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "LeakyReLU",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Sequential",
    "Flatten",
    "Identity",
    "Dropout",
]
