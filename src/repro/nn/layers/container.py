"""Structural layers: Sequential, Flatten, Identity."""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor

__all__ = ["Sequential", "Flatten", "Identity"]


class Sequential(Module):
    """Run modules in order, feeding each output to the next."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.children_list = ModuleList(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.children_list:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self.children_list)

    def __len__(self) -> int:
        return len(self.children_list)

    def __getitem__(self, idx: int) -> Module:
        return self.children_list[idx]

    def append(self, module: Module) -> None:
        """Add a module at the end of the chain."""
        self.children_list.append(module)

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in self.children_list)
        return f"Sequential({inner})"


class Flatten(Module):
    """Collapse non-batch dimensions: (N, ...) -> (N, prod(...))."""

    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x)

    def __repr__(self) -> str:
        return "Flatten()"


class Identity(Module):
    """Pass-through module (used for ResNet shortcut branches)."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"
