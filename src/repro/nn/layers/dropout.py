"""Inverted dropout layer."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    Each element is zeroed with probability ``p`` and the survivors are
    scaled by ``1/(1-p)`` so the expected activation is unchanged; at
    evaluation time the layer is the identity.

    Args:
        p: Drop probability in [0, 1).
        rng: Seed or generator for the mask stream.
    """

    def __init__(self, p: float = 0.5, rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = as_generator(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep

        def backward(g: np.ndarray) -> None:
            x.accumulate_grad(g * mask)

        return Tensor.from_op(x.data * mask, (x,), backward)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
