"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["Linear"]


class Linear(Module):
    """Affine layer ``y = x W^T + b`` over (N, in_features) inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if min(in_features, out_features) < 1:
            raise ConfigurationError("Linear feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng=rng), name="linear.weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="linear.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"
