"""Pooling layers."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d"]


class MaxPool2d(Module):
    """Max pooling over square windows (stride defaults to the kernel)."""

    def __init__(self, kernel: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel < 1:
            raise ConfigurationError("pooling kernel must be positive")
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel={self.kernel}, stride={self.stride})"


class AvgPool2d(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel < 1:
            raise ConfigurationError("pooling kernel must be positive")
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(kernel={self.kernel}, stride={self.stride})"


class GlobalAvgPool2d(Module):
    """Collapse each channel's spatial extent to its mean, giving (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"
