"""Activation layers."""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["LeakyReLU", "ReLU"]


class LeakyReLU(Module):
    """Leaky ReLU — the activation used after every conv layer in the paper."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class ReLU(Module):
    """Standard rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"
